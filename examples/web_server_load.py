#!/usr/bin/env python3
"""A web server tracking its offered load (a real-rate application).

The paper's definition of a real-rate application is one "with specific
rate or throughput requirements in which the rate is driven by
real-world demands" — its canonical examples are web servers and
multimedia.  Here the offered request rate steps up and down over time;
the server's socket buffer is its symbiotic interface, so the
controller re-derives the server's CPU allocation as the load changes,
while two background hogs soak up whatever is left.

Run with::

    python examples/web_server_load.py
"""

from repro import build_real_rate_system
from repro.analysis.series import sparkline
from repro.sim.clock import seconds
from repro.workloads.cpu_hog import CpuHog
from repro.workloads.webserver import WebServer

#: Offered load (requests/second) as a step function of time.
LOAD_STEPS = (
    (0.0, 100.0),
    (5.0, 300.0),
    (10.0, 150.0),
    (15.0, 400.0),
)


def offered_load(now_us: int) -> float:
    """The request rate in force at virtual time ``now_us``."""
    now_s = now_us / 1_000_000
    rate = LOAD_STEPS[0][1]
    for start_s, step_rate in LOAD_STEPS:
        if now_s >= start_s:
            rate = step_rate
    return rate


def main() -> None:
    system = build_real_rate_system()
    server = WebServer.attach(
        system, requests_per_second=offered_load, service_cpu_us=1_500
    )
    hogs = [CpuHog.attach(system, name=f"batch{i}") for i in range(2)]

    tracer = system.kernel.tracer
    tracer.add_sampler(
        system.kernel.events, 250_000, "backlog",
        lambda now: server.backlog_requests(),
    )

    print("simulating 20 seconds of stepped load ...")
    system.run_for(seconds(20))

    alloc = tracer.series(f"alloc:{server.server.name}")
    backlog = tracer.series("backlog")

    print()
    print("offered load steps     :", ", ".join(
        f"{rate:.0f} req/s @ t={start:.0f}s" for start, rate in LOAD_STEPS))
    print(f"requests sent / served : {server.requests_sent} / "
          f"{server.requests_served}")
    print(f"final backlog          : {server.backlog_requests():.0f} requests")
    print(f"server allocation now  : "
          f"{system.allocator.current_allocation_ppt(server.server)} ppt "
          f"(needs ≈ {server.required_fraction(offered_load(system.now)) * 1000:.0f} "
          "ppt for the current load)")
    print(f"hog CPU shares         : "
          + ", ".join(f"{h.thread.accounting.total_us / system.now:.1%}" for h in hogs))
    print()
    print("server allocation over time (ppt):")
    print("  " + sparkline(alloc.values(), 72))
    print("request backlog over time:")
    print("  " + sparkline(backlog.values(), 72))
    print()
    print("Each load step shows up as a step in the server's allocation a "
          "fraction of a second later — the feedback loop is doing the "
          "capacity planning that a human would otherwise encode as a "
          "priority or a hand-tuned reservation.")


if __name__ == "__main__":
    main()
