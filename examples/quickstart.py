#!/usr/bin/env python3
"""Quickstart: a producer/consumer pipeline under feedback control.

Builds the smallest interesting real-rate system:

* a producer with a fixed real-time reservation (it models a device or
  network source whose rate the scheduler must not disturb),
* a consumer that declares nothing except its shared queue — the
  symbiotic interface — and whose CPU allocation is therefore chosen
  entirely by the feedback controller, and
* the controller itself, sampling the queue fill level at 100 Hz.

Run it and watch the controller discover the consumer's required
allocation without anyone ever specifying it::

    python examples/quickstart.py
"""

from repro import build_real_rate_system
from repro.analysis.series import sparkline
from repro.sim.clock import seconds
from repro.workloads.pulse import PulseParameters, PulsePipeline, PulseSchedule


def main() -> None:
    # A fully wired system: kernel + reservation scheduler + symbiotic
    # registry + adaptive controller (10 ms period, paper defaults).
    system = build_real_rate_system()

    # A constant-rate producer (no pulses) feeding a consumer through a
    # 3 KB bounded buffer.
    schedule = PulseSchedule([], default_rate=0.01)
    pipeline = PulsePipeline.attach(system, schedule=schedule,
                                    params=PulseParameters())

    # Sample the queue fill level for the report.
    tracer = system.kernel.tracer
    tracer.add_sampler(
        system.kernel.events, 100_000, "fill",
        lambda now: pipeline.queue.fill_level(),
    )

    print("simulating 5 seconds of virtual time ...")
    system.run_for(seconds(5))

    consumer_ppt = system.allocator.current_allocation_ppt(pipeline.consumer)
    expected = pipeline.expected_consumer_fraction(schedule.default_rate)
    fill = tracer.series("fill")
    alloc = tracer.series(f"alloc:{pipeline.consumer.name}")

    print()
    print("producer reservation : "
          f"{pipeline.params.producer_proportion_ppt} ppt "
          f"(period {pipeline.params.producer_period_us / 1000:.0f} ms, fixed)")
    print(f"consumer allocation  : {consumer_ppt} ppt "
          f"(controller-chosen; ideal ≈ {expected * 1000:.0f} ppt + "
          "quantisation overrun)")
    print(f"queue fill level     : {pipeline.fill_level():.2f} "
          "(set point is 0.50)")
    print(f"bytes produced       : {pipeline.queue.total_put_bytes}")
    print(f"bytes consumed       : {pipeline.queue.total_get_bytes}")
    print()
    print("consumer allocation over time (ppt):")
    print("  " + sparkline(alloc.values(), 72))
    print("queue fill level over time:")
    print("  " + sparkline(fill.values(), 72))
    print()
    print("The controller pushed the consumer's allocation up from the "
          "5 ppt floor until the queue settled at its half-full set point — "
          "no human supplied a proportion or a period for it.")


if __name__ == "__main__":
    main()
