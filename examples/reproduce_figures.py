#!/usr/bin/env python3
"""Regenerate every figure of the paper's evaluation section.

Resolves the experiment drivers through the declarative registry
(``repro.experiments.registry``), runs Figures 5–8 plus the taxonomy
and priority-inversion extension experiments, prints a
paper-vs-measured table for each, and renders the key time series as
ASCII sparklines.  This is the script behind EXPERIMENTS.md.

Run with::

    python examples/reproduce_figures.py

or reproduce an individual figure with the CLI::

    python -m repro run figure6 --json figure6.json
"""

import time

import repro.experiments  # noqa: F401 — importing populates the registry
from repro.analysis.series import sparkline
from repro.experiments.registry import REGISTRY

#: (experiment name, banner, series to sparkline) in presentation order.
FIGURES = (
    (
        "figure5",
        "Figure 5: controller overhead vs. number of controlled processes",
        ("modeled_overhead_vs_processes",),
    ),
    (
        "figure6",
        "Figure 6: controller responsiveness (idle system)",
        (
            "producer_rate_bytes_per_s",
            "consumer_rate_bytes_per_s",
            "queue_fill_level",
            "consumer_allocation_ppt",
        ),
    ),
    (
        "figure7",
        "Figure 7: controller response under load (pulse pipeline + CPU hog)",
        (
            "consumer_allocation_ppt",
            "hog_allocation_ppt",
            "queue_fill_level",
        ),
    ),
    (
        "figure8",
        "Figure 8: dispatch overhead vs. dispatcher frequency",
        ("available_cpu_normalised_vs_hz",),
    ),
    (
        "taxonomy",
        "Figure 2 (behavioural): the controller's four thread classes",
        (),
    ),
    (
        "inversion",
        "Extension: priority inversion (Mars Pathfinder scenario)",
        (),
    ),
)


def _show(result, series_to_plot=()) -> None:
    print(result.summary())
    for name in series_to_plot:
        if name in result.series:
            _, values = result.series[name]
            print(f"  {name}:")
            print("    " + sparkline(values, 68))
    print()


def main() -> None:
    start = time.time()

    for name, banner, series in FIGURES:
        print("=" * 78)
        print(banner)
        print("=" * 78)
        _show(REGISTRY.run(name), series)

    print(f"total wall-clock time: {time.time() - start:.1f} s")


if __name__ == "__main__":
    main()
