#!/usr/bin/env python3
"""Regenerate every figure of the paper's evaluation section.

Runs the four experiment drivers (Figures 5–8) plus the taxonomy and
priority-inversion extension experiments, prints a paper-vs-measured
table for each, and renders the key time series as ASCII sparklines.
This is the script behind EXPERIMENTS.md.

Run with::

    python examples/reproduce_figures.py
"""

import time

from repro.analysis.series import sparkline
from repro.experiments import (
    run_figure5,
    run_figure6,
    run_figure7,
    run_figure8,
    run_inversion_comparison,
    run_taxonomy,
)


def _show(result, series_to_plot=()) -> None:
    print(result.summary())
    for name in series_to_plot:
        if name in result.series:
            _, values = result.series[name]
            print(f"  {name}:")
            print("    " + sparkline(values, 68))
    print()


def main() -> None:
    start = time.time()

    print("=" * 78)
    print("Figure 5: controller overhead vs. number of controlled processes")
    print("=" * 78)
    _show(run_figure5(), ("modeled_overhead_vs_processes",))

    print("=" * 78)
    print("Figure 6: controller responsiveness (idle system)")
    print("=" * 78)
    _show(
        run_figure6(),
        (
            "producer_rate_bytes_per_s",
            "consumer_rate_bytes_per_s",
            "queue_fill_level",
            "consumer_allocation_ppt",
        ),
    )

    print("=" * 78)
    print("Figure 7: controller response under load (pulse pipeline + CPU hog)")
    print("=" * 78)
    _show(
        run_figure7(),
        (
            "consumer_allocation_ppt",
            "hog_allocation_ppt",
            "queue_fill_level",
        ),
    )

    print("=" * 78)
    print("Figure 8: dispatch overhead vs. dispatcher frequency")
    print("=" * 78)
    _show(run_figure8(), ("available_cpu_normalised_vs_hz",))

    print("=" * 78)
    print("Figure 2 (behavioural): the controller's four thread classes")
    print("=" * 78)
    _show(run_taxonomy())

    print("=" * 78)
    print("Extension: priority inversion (Mars Pathfinder scenario)")
    print("=" * 78)
    _show(run_inversion_comparison())

    print(f"total wall-clock time: {time.time() - start:.1f} s")


if __name__ == "__main__":
    main()
