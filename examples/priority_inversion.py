#!/usr/bin/env python3
"""The Mars Pathfinder scenario: priority inversion vs. real-rate scheduling.

Recreates the task set from Section 2 of the paper — a high-priority
periodic task sharing a mutex with a low-priority task, plus
medium-priority CPU-bound tasks — and runs it under three schedulers:

1. fixed priorities (the inversion is unbounded: the high task simply
   stops making its deadlines once the interleaving goes wrong),
2. fixed priorities with priority inheritance (the deployed fix), and
3. the feedback-driven proportion allocator, which needs no
   mutex-aware mechanism because it never starves the lock holder.

Run with::

    python examples/priority_inversion.py
"""

from repro.experiments.inversion import run_inversion_comparison


def main() -> None:
    print("running the three-scheduler comparison (10 simulated seconds each) ...")
    result = run_inversion_comparison()
    print()
    print(result.summary())
    print()
    deadline_ms = result.metric("deadline_s") * 1000
    rows = (
        ("fixed priorities", "fixed_priority"),
        ("priorities + inheritance", "priority_inheritance"),
        ("real-rate (this paper)", "real_rate"),
    )
    print(f"high task period/deadline: {deadline_ms:.0f} ms")
    print(f"{'scheduler':28s} {'iterations':>10s} {'worst latency':>14s} "
          f"{'missed deadlines':>17s}")
    for label, key in rows:
        worst_ms = result.metric(f"{key}_worst_latency_s") * 1000
        iterations = int(result.metric(f"{key}_iterations"))
        miss = result.metric(f"{key}_miss_rate")
        print(f"{label:28s} {iterations:10d} {worst_ms:11.1f} ms {miss:16.1%}")
    print()
    print("Under plain fixed priorities the high task completes one iteration "
          "and then blocks forever behind a starved lock holder.  The "
          "real-rate allocator keeps every thread progressing, so the lock is "
          "always released promptly and the deadlines are all met.")


if __name__ == "__main__":
    main()
