#!/usr/bin/env python3
"""A multimedia pipeline plus interactive work on a saturated machine.

Reproduces the scenario Section 4.4 of the paper describes: a video
pipeline whose decoder stage needs far more CPU than the other stages,
an interactive (editor-like) job, and a best-effort CPU hog all share
one processor.  Everything runs at the "same priority" — there are no
priorities at all — yet:

* the controller automatically discovers that the decode stage is the
  expensive one and gives it the largest allocation,
* the interactive job's keystroke latency stays small even though the
  hog would happily consume the whole machine, and
* the hog receives exactly the capacity nobody else needs.

Run with::

    python examples/multimedia_pipeline.py
"""

from repro import build_real_rate_system
from repro.sim.clock import seconds
from repro.workloads.cpu_hog import CpuHog
from repro.workloads.interactive import InteractiveJob
from repro.workloads.pipeline import MultimediaPipeline


def main() -> None:
    system = build_real_rate_system()

    pipeline = MultimediaPipeline.attach(system, frames_per_second=30)
    editor = InteractiveJob.attach(system, seed=7)
    hog = CpuHog.attach(system)

    print("simulating 10 seconds of a loaded desktop ...")
    system.run_for(seconds(10))

    elapsed_s = system.now / 1_000_000
    print()
    print("pipeline CPU shares (discovered by the controller):")
    shares = pipeline.cpu_shares()
    current = pipeline.allocations_ppt()
    for name, share in shares.items():
        marker = "  <- video decoder" if name == pipeline.decoder_thread().name else ""
        print(f"  {name:18s} {share:6.1%}  (currently {current[name]:3d} ppt){marker}")
    print()
    print(f"frames delivered       : {pipeline.frames_delivered} "
          f"({pipeline.frames_delivered / elapsed_s:.1f} frames/s of a "
          f"{pipeline.frames_per_second} frame/s source)")
    print(f"keystrokes handled     : {editor.keystrokes_handled}")
    print(f"mean keystroke latency : {editor.mean_response_latency_us() / 1000:.1f} ms")
    print(f"worst keystroke latency: {editor.worst_response_latency_us() / 1000:.1f} ms")
    print(f"hog CPU share          : {hog.thread.accounting.total_us / system.now:.1%}")
    print(f"quality exceptions     : {len(system.allocator.quality_exceptions)}")
    print()
    print("The decoder's allocation dwarfs the other stages' even though no "
          "application declared its requirements, and the interactive job "
          "stays responsive despite the CPU hog.")


if __name__ == "__main__":
    main()
