"""Macro performance benchmarks (``python -m repro bench``).

The paper's pitch is that proportion/period scheduling has *very low
overhead*; the simulator must therefore be fast enough that the
scheduling substrate — not Python bookkeeping — dominates what we can
simulate.  This module defines a small registry of macro scenarios
(webserver, SMP web farm, many-hog overload, pulse pipeline), times
each one with min-of-K repeats, and reports **simulated microseconds
per wall-clock second** — the throughput figure every performance PR
must move.

``run_bench`` writes a schema-versioned artifact (``BENCH_kernel.json``
by default) so the repository carries a perf trajectory: compare the
committed baseline against a fresh run to see whether the hot path got
faster or slower.  Wall-clock numbers are machine-dependent; the
artifact records the interpreter and platform next to the figures so
cross-machine comparisons are not made blindly.

Scenario builders must be deterministic: they configure fixed seeds and
fixed loads so that repeated runs execute the identical event sequence
and only the wall-clock measurement varies.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro._version import __version__
from repro.core.artifacts import append_durable

#: Version of the artifact layout written by :func:`bench_to_dict`.
#: v2: per-scenario migration counters (``migrations``/``migration_us``).
BENCH_SCHEMA_VERSION = 2

#: Default artifact filename (tracked in the repository root).
DEFAULT_ARTIFACT = "BENCH_kernel.json"

#: Default artifact filename for ``--quick`` runs: quick-mode numbers
#: must not silently clobber the tracked full-run baseline.
QUICK_ARTIFACT = "BENCH_kernel.quick.json"

#: Append-only log of full bench runs (one JSON line per run), so the
#: repository carries the perf trajectory alongside the code.
HISTORY_FILE = "BENCH_history.jsonl"

#: Default regression tolerance for ``bench --compare``: fail when a
#: scenario's throughput drops by more than this fraction.
DEFAULT_REGRESSION_THRESHOLD = 0.25


class BenchError(Exception):
    """A benchmark scenario failed to build or run."""


@dataclass(frozen=True)
class BenchScenario:
    """One registered macro benchmark.

    ``build`` returns a zero-argument *run* callable; everything
    expensive to set up happens inside ``build`` so the timed section
    measures only the simulation itself.  The run callable returns the
    kernel so the runner can report dispatch counts.
    """

    name: str
    description: str
    sim_us: int
    quick_sim_us: int
    build: Callable[[int], Callable[[], object]]
    tags: tuple[str, ...] = ()


#: Name -> scenario, in registration order.
BENCH_REGISTRY: dict[str, BenchScenario] = {}


def bench_scenario(
    name: str,
    *,
    description: str,
    sim_us: int,
    quick_sim_us: int,
    tags: tuple[str, ...] = (),
) -> Callable[[Callable[[int], Callable[[], object]]], Callable]:
    """Register the decorated builder as a bench scenario."""

    def decorate(build: Callable[[int], Callable[[], object]]) -> Callable:
        if name in BENCH_REGISTRY:
            raise BenchError(f"bench scenario {name!r} is already registered")
        BENCH_REGISTRY[name] = BenchScenario(
            name=name,
            description=description,
            sim_us=sim_us,
            quick_sim_us=quick_sim_us,
            build=build,
            tags=tags,
        )
        return build

    return decorate


# ----------------------------------------------------------------------
# scenarios
# ----------------------------------------------------------------------
@bench_scenario(
    name="webserver",
    description="Single web server + competing hog under the controller",
    sim_us=2_000_000,
    quick_sim_us=250_000,
    tags=("uniprocessor", "controller"),
)
def _build_webserver(sim_us: int) -> Callable[[], object]:
    from repro.system import build_real_rate_system
    from repro.workloads.cpu_hog import CpuHog
    from repro.workloads.webserver import WebServer

    system = build_real_rate_system()
    WebServer.attach(system, requests_per_second=300.0, service_cpu_us=1_200,
                     seed=1)
    CpuHog.attach(system, burst_us=4_000, seed=2)

    def run() -> object:
        system.run_for(sim_us)
        return system.kernel

    return run


@bench_scenario(
    name="webfarm",
    description="4-CPU web farm (8 servers) with SMP dispatch rounds",
    sim_us=1_000_000,
    quick_sim_us=200_000,
    tags=("smp", "controller"),
)
def _build_webfarm(sim_us: int) -> Callable[[], object]:
    from repro.system import build_real_rate_system
    from repro.workloads.webfarm import WebFarm

    system = build_real_rate_system(n_cpus=4)
    WebFarm.attach(system, n_servers=8, requests_per_second=200.0,
                   service_cpu_us=1_500, seed=3)

    def run() -> object:
        system.run_for(sim_us)
        return system.kernel

    return run


@bench_scenario(
    name="overload64",
    description="64 over-committed reservations on one CPU (dispatch hot path)",
    sim_us=1_000_000,
    quick_sim_us=100_000,
    tags=("uniprocessor", "overload", "scheduler"),
)
def _build_overload64(sim_us: int) -> Callable[[], object]:
    """The scheduler-substrate stress the tentpole optimises.

    64 always-runnable reservation threads whose proportions total well
    over one CPU, so every dispatch exercises rate-monotonic ordering,
    budget exhaustion, throttling and replenishment — with no adaptive
    controller in the loop, the wall clock measures the dispatcher
    itself.
    """
    from repro.sched.rbs import ReservationScheduler
    from repro.sim.kernel import Kernel
    from repro.sim.requests import Compute

    scheduler = ReservationScheduler()
    kernel = Kernel(scheduler)

    def spin(env):
        while True:
            yield Compute(3_000)

    for i in range(64):
        thread = kernel.spawn(f"hog{i}", spin)
        # Varied periods exercise the rate-monotonic order; 25 ppt each
        # totals 1600 ppt against a 1000 ppt CPU (permanent overload).
        scheduler.set_reservation(thread, 25, 10_000 + (i % 8) * 5_000)

    def run() -> object:
        kernel.run_for(sim_us)
        return kernel

    return run


@bench_scenario(
    name="overload64_controller",
    description="64 miscellaneous CPU hogs under the adaptive controller",
    sim_us=1_000_000,
    quick_sim_us=100_000,
    tags=("uniprocessor", "overload", "controller"),
)
def _build_overload64_controller(sim_us: int) -> Callable[[], object]:
    from repro.system import build_real_rate_system
    from repro.workloads.cpu_hog import CpuHog

    system = build_real_rate_system()
    for i in range(64):
        CpuHog.attach(system, name=f"hog{i}", burst_us=3_000, seed=100 + i)

    def run() -> object:
        system.run_for(sim_us)
        return system.kernel

    return run


@bench_scenario(
    name="pipeline",
    description="Figure 6 pulse pipeline (producer/consumer real-rate)",
    sim_us=2_000_000,
    quick_sim_us=250_000,
    tags=("uniprocessor", "real-rate"),
)
def _build_pipeline(sim_us: int) -> Callable[[], object]:
    from repro.system import build_real_rate_system
    from repro.workloads.pulse import PulseParameters, PulsePipeline, PulseSchedule

    system = build_real_rate_system()
    params = PulseParameters()
    schedule = PulseSchedule.paper_figure6(params.base_rate_bytes_per_cpu_us)
    PulsePipeline.attach(system, schedule=schedule, params=params)

    def run() -> object:
        system.run_for(sim_us)
        return system.kernel

    return run


@bench_scenario(
    name="churn1k",
    description="Open-system churn: ~1400 arriving/exiting job lifetimes",
    sim_us=2_000_000,
    quick_sim_us=200_000,
    tags=("uniprocessor", "churn", "scheduler"),
)
def _build_churn1k(sim_us: int) -> Callable[[], object]:
    """Arrival-driven thread churn through the dispatcher hot paths.

    Two open streams feed a bare reservation scheduler: Poisson
    best-effort jobs and deterministic reserved jobs, each a finite
    compute/sleep demand.  Every lifetime exercises mid-run spawn
    (scheduler add + epoch bump), finite-job exit (remove + reclaim)
    and the calendar's arrival events — the churn contract the horizon
    engine must keep proving.  The full run completes well over 1000
    thread lifetimes.
    """
    from repro.sched.rbs import ReservationScheduler
    from repro.sim.kernel import Kernel
    from repro.workloads.arrivals import DeterministicArrivals, PoissonArrivals
    from repro.workloads.engine import JobTemplate, WorkloadEngine

    scheduler = ReservationScheduler()
    kernel = Kernel(scheduler)
    churn = WorkloadEngine(kernel)
    churn.add_stream(
        "misc",
        PoissonArrivals(450.0, seed=41),
        JobTemplate("misc", total_cpu_us=1_200, burst_us=600, think_us=500),
    )
    churn.add_stream(
        "rt",
        DeterministicArrivals(4_000),
        JobTemplate(
            "rt", total_cpu_us=800, burst_us=400, think_us=300,
            reservation=(50, 10_000),
        ),
    )
    churn.start()

    def run() -> object:
        kernel.run_for(sim_us)
        return kernel

    return run


# ----------------------------------------------------------------------
# runner
# ----------------------------------------------------------------------
def _completed_lifetimes(kernel: object) -> int:
    """Threads of ``kernel`` that have fully exited (churn scenarios)."""
    from repro.sim.thread import ThreadState

    threads = getattr(kernel, "threads", None)
    if not threads:
        return 0
    exited = ThreadState.EXITED
    return sum(1 for thread in threads if thread.state is exited)


@dataclass
class BenchResult:
    """Timing of one scenario: min-of-``repeats`` wall seconds."""

    name: str
    description: str
    sim_us: int
    repeats: int
    wall_s: list[float] = field(default_factory=list)
    dispatches: int = 0
    n_threads: int = 0
    #: Kernel time-advancement engine the scenario ran under, so
    #: quantum-vs-horizon throughput stays distinguishable in the
    #: artifact and the perf trajectory.
    engine: str = ""
    #: Thread lifetimes that ran to completion (exited threads) — the
    #: churn scenarios' headline count.
    threads_completed: int = 0
    #: Cross-CPU thread moves observed (multiprocessor kernels) and the
    #: virtual microseconds of migration penalty charged for them (only
    #: non-zero on kernels built with a penalised CpuTopology).
    migrations: int = 0
    migration_us: int = 0

    @property
    def wall_s_min(self) -> float:
        return min(self.wall_s)

    @property
    def sim_us_per_wall_s(self) -> float:
        """Simulated microseconds advanced per wall-clock second."""
        best = self.wall_s_min
        if best <= 0:
            return float("inf")
        return self.sim_us / best

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "sim_us": self.sim_us,
            "repeats": self.repeats,
            "wall_s": [round(w, 6) for w in self.wall_s],
            "wall_s_min": round(self.wall_s_min, 6),
            "sim_us_per_wall_s": round(self.sim_us_per_wall_s, 1),
            "dispatches": self.dispatches,
            "n_threads": self.n_threads,
            "engine": self.engine,
            "threads_completed": self.threads_completed,
            "migrations": self.migrations,
            "migration_us": self.migration_us,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BenchResult":
        """Rebuild from the :meth:`to_dict` form.

        The derived ``wall_s_min`` / ``sim_us_per_wall_s`` keys are
        recomputed from ``wall_s``, not read back.
        """
        return cls(
            name=str(payload["name"]),
            description=str(payload.get("description", "")),
            sim_us=int(payload["sim_us"]),
            repeats=int(payload["repeats"]),
            wall_s=[float(w) for w in payload["wall_s"]],
            dispatches=int(payload.get("dispatches", 0)),
            n_threads=int(payload.get("n_threads", 0)),
            engine=str(payload.get("engine", "")),
            threads_completed=int(payload.get("threads_completed", 0)),
            migrations=int(payload.get("migrations", 0)),
            migration_us=int(payload.get("migration_us", 0)),
        )


def run_scenario(
    scenario: BenchScenario, *, quick: bool = False, repeats: int = 3
) -> BenchResult:
    """Time ``scenario``: fresh build per repeat, wall-clock the run."""
    if repeats < 1:
        raise BenchError(f"repeats must be >= 1, got {repeats}")
    sim_us = scenario.quick_sim_us if quick else scenario.sim_us
    result = BenchResult(
        name=scenario.name,
        description=scenario.description,
        sim_us=sim_us,
        repeats=repeats,
    )
    for _ in range(repeats):
        run = scenario.build(sim_us)
        # repro-lint: disable=determinism -- wall-clock timing IS the benchmark's measurement; it never feeds simulated state
        start = time.perf_counter()
        kernel = run()
        result.wall_s.append(time.perf_counter() - start)  # repro-lint: disable=determinism -- benchmark wall timing, as above
        result.dispatches = getattr(kernel, "dispatch_count", 0)
        result.n_threads = len(getattr(kernel, "threads", ()))
        result.engine = getattr(kernel, "engine", "")
        result.threads_completed = _completed_lifetimes(kernel)
        result.migrations = getattr(kernel, "migrations", 0)
        result.migration_us = getattr(kernel, "migration_us", 0)
    return result


def run_bench(
    names: Optional[list[str]] = None,
    *,
    quick: bool = False,
    repeats: int = 3,
) -> list[BenchResult]:
    """Run the named scenarios (default: all registered, in order)."""
    if names:
        unknown = [n for n in names if n not in BENCH_REGISTRY]
        if unknown:
            raise BenchError(
                f"unknown bench scenario(s) {unknown}; "
                f"known: {sorted(BENCH_REGISTRY)}"
            )
        scenarios = [BENCH_REGISTRY[n] for n in names]
    else:
        scenarios = list(BENCH_REGISTRY.values())
    return [run_scenario(s, quick=quick, repeats=repeats) for s in scenarios]


def run_bench_journaled(
    names: Optional[list[str]] = None,
    *,
    quick: bool = False,
    repeats: int = 3,
    journal_path: str,
    resume: bool = False,
    on_event: Optional[Callable[[str], None]] = None,
) -> tuple[list[BenchResult], int]:
    """:func:`run_bench` under the sweep journal contract.

    Each scenario's timing is durably journaled as it lands, so an
    interrupted bench (Ctrl-C mid-suite) resumes without re-timing the
    finished scenarios; returns ``(results, resumed count)``.  The
    journal fingerprint pins the scenario list, ``quick`` and
    ``repeats``, so a resume cannot silently merge timings from a
    different configuration.  Scenarios run in-process, exactly as in
    :func:`run_bench` — journaling must not add subprocess noise to
    the timings.
    """
    from repro.orchestration.runner import run_journaled_serial

    if names:
        unknown = [n for n in names if n not in BENCH_REGISTRY]
        if unknown:
            raise BenchError(
                f"unknown bench scenario(s) {unknown}; "
                f"known: {sorted(BENCH_REGISTRY)}"
            )
        keys = list(names)
    else:
        keys = list(BENCH_REGISTRY)

    def run_one(index: int, key: str) -> dict:
        return run_scenario(
            BENCH_REGISTRY[key], quick=quick, repeats=repeats
        ).to_dict()

    payloads, resumed = run_journaled_serial(
        keys,
        run_one,
        journal_path=journal_path,
        run_kind="bench",
        fingerprint={"scenarios": keys, "quick": quick, "repeats": repeats},
        resume=resume,
        on_event=on_event,
    )
    return [BenchResult.from_dict(payloads[key]) for key in keys], resumed


def bench_to_dict(
    results: list[BenchResult], *, quick: bool = False, repeats: int = 3
) -> dict:
    """The schema-versioned artifact structure for ``BENCH_kernel.json``."""
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": "bench",
        "repro_version": __version__,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "quick": quick,
        "repeats": repeats,
        "scenarios": [r.to_dict() for r in results],
    }


def bench_to_json(
    results: list[BenchResult], *, quick: bool = False, repeats: int = 3
) -> str:
    return json.dumps(
        bench_to_dict(results, quick=quick, repeats=repeats), indent=2
    )


def load_bench_artifact(path: str) -> dict:
    """Load a bench artifact written by :func:`bench_to_json`."""
    try:
        with open(path) as handle:
            artifact = json.load(handle)
    except OSError as error:
        raise BenchError(f"cannot read baseline {path!r}: {error}") from error
    except json.JSONDecodeError as error:
        raise BenchError(f"baseline {path!r} is not valid JSON: {error}") from error
    if artifact.get("kind") != "bench":
        raise BenchError(f"baseline {path!r} is not a bench artifact")
    if artifact.get("schema_version") != BENCH_SCHEMA_VERSION:
        raise BenchError(
            f"baseline {path!r} has schema version "
            f"{artifact.get('schema_version')!r}, expected {BENCH_SCHEMA_VERSION}"
        )
    return artifact


@dataclass(frozen=True)
class BenchComparison:
    """One scenario's fresh throughput against the baseline's.

    Either side can be absent: a fresh scenario with no baseline entry
    compares against ``None`` (informational), and a *baseline*
    scenario absent from the fresh run has ``fresh_sim_us_per_wall_s``
    of ``None`` — a :attr:`missing` row, which the compare gate treats
    as a failure (a scenario silently dropping out of the suite must
    not read as "no regressions").
    """

    name: str
    baseline_sim_us_per_wall_s: Optional[float]
    fresh_sim_us_per_wall_s: Optional[float]
    threshold: float

    @property
    def ratio(self) -> Optional[float]:
        """Fresh/baseline throughput, or ``None`` when a side is absent."""
        base = self.baseline_sim_us_per_wall_s
        if base is None or base <= 0 or self.fresh_sim_us_per_wall_s is None:
            return None
        return self.fresh_sim_us_per_wall_s / base

    @property
    def missing(self) -> bool:
        """A baseline scenario the fresh run did not produce."""
        return self.fresh_sim_us_per_wall_s is None

    @property
    def regressed(self) -> bool:
        """Whether throughput dropped by more than the threshold."""
        ratio = self.ratio
        return ratio is not None and ratio < 1.0 - self.threshold


def compare_to_baseline(
    results: list[BenchResult],
    baseline: dict,
    *,
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
    expected: Optional[Sequence[str]] = None,
) -> list[BenchComparison]:
    """Compare fresh results against a loaded baseline artifact.

    Scenarios are matched by name; fresh scenarios absent from the
    baseline compare against ``None`` (informational, never a
    regression).  A mismatch in simulated duration (e.g. a quick run
    against a full baseline) still compares meaningfully because the
    metric is throughput, not wall time — but the table shows both
    figures so the reader is not misled.

    Baseline scenarios the fresh run did *not* produce are appended as
    :attr:`~BenchComparison.missing` rows — historically they were
    silently dropped, so a scenario deleted (or renamed, or crashed
    out of) the suite made the comparison read "all ok".  ``expected``
    limits that check to an explicit scenario subset: pass the names
    the user asked to run (``bench overload64 --compare``) so an
    intentional partial run is not flagged; ``None`` means the fresh
    run claims to cover everything in the baseline.
    """
    if not 0 < threshold < 1:
        raise BenchError(
            f"regression threshold must be inside (0, 1), got {threshold}"
        )
    by_name = {
        scenario.get("name"): scenario
        for scenario in baseline.get("scenarios", [])
    }
    comparisons = []
    for result in results:
        base = by_name.get(result.name)
        comparisons.append(
            BenchComparison(
                name=result.name,
                baseline_sim_us_per_wall_s=(
                    base.get("sim_us_per_wall_s") if base else None
                ),
                fresh_sim_us_per_wall_s=result.sim_us_per_wall_s,
                threshold=threshold,
            )
        )
    fresh_names = {result.name for result in results}
    for name, scenario in by_name.items():
        if name in fresh_names:
            continue
        if expected is not None and name not in expected:
            continue
        comparisons.append(
            BenchComparison(
                name=name,
                baseline_sim_us_per_wall_s=scenario.get("sim_us_per_wall_s"),
                fresh_sim_us_per_wall_s=None,
                threshold=threshold,
            )
        )
    return comparisons


def format_compare_table(comparisons: list[BenchComparison]) -> str:
    """Human-readable comparison summary printed by the CLI."""
    width = max([len("scenario")] + [len(c.name) for c in comparisons])
    header = (
        f"{'scenario':<{width}} {'baseline':>14} {'fresh':>14} "
        f"{'ratio':>7}  verdict"
    )
    lines = [header, "-" * len(header)]
    for c in comparisons:
        base = (
            f"{c.baseline_sim_us_per_wall_s:,.0f}"
            if c.baseline_sim_us_per_wall_s is not None
            else "—"
        )
        fresh = (
            f"{c.fresh_sim_us_per_wall_s:,.0f}"
            if c.fresh_sim_us_per_wall_s is not None
            else "—"
        )
        ratio = f"{c.ratio:.2f}x" if c.ratio is not None else "—"
        if c.missing:
            verdict = "MISSING (in baseline, not in fresh run)"
        elif c.ratio is None:
            verdict = "no baseline"
        elif c.regressed:
            verdict = f"REGRESSED (>{c.threshold:.0%} drop)"
        else:
            verdict = "ok"
        lines.append(
            f"{c.name:<{width}} {base:>14} "
            f"{fresh:>14} {ratio:>7}  {verdict}"
        )
    return "\n".join(lines)


def git_sha() -> str:
    """The current commit's short SHA, or ``"unknown"`` outside git."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if completed.returncode != 0:
        return "unknown"
    return completed.stdout.strip() or "unknown"


def history_line(
    results: list[BenchResult], *, quick: bool = False, repeats: int = 3
) -> dict:
    """One append-only history record: commit + per-scenario throughput."""
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": "bench_history",
        "git_sha": git_sha(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "repro_version": __version__,
        "python": sys.version.split()[0],
        "quick": quick,
        "repeats": repeats,
        "scenarios": {
            result.name: round(result.sim_us_per_wall_s, 1)
            for result in results
        },
        # Which kernel time-advancement engine each scenario ran under:
        # without this the trajectory cannot tell a horizon-engine run
        # from the quantum oracle.
        "engines": {result.name: result.engine for result in results},
    }


def append_history(
    results: list[BenchResult],
    path: str = HISTORY_FILE,
    *,
    quick: bool = False,
    repeats: int = 3,
) -> dict:
    """Append one history line for this run; returns the record."""
    record = history_line(results, quick=quick, repeats=repeats)
    append_durable(path, json.dumps(record, sort_keys=True))
    return record


def format_bench_table(results: list[BenchResult]) -> str:
    """Human-readable summary printed by the CLI."""
    width = max([len("scenario")] + [len(r.name) for r in results])
    header = (
        f"{'scenario':<{width}} {'sim_us':>10} {'wall_s(min)':>12} "
        f"{'sim_us/wall_s':>14} {'dispatches':>11}"
    )
    lines = [header, "-" * len(header)]
    for r in results:
        lines.append(
            f"{r.name:<{width}} {r.sim_us:>10,} {r.wall_s_min:>12.4f} "
            f"{r.sim_us_per_wall_s:>14,.0f} {r.dispatches:>11,}"
        )
    return "\n".join(lines)


__all__ = [
    "BENCH_REGISTRY",
    "BENCH_SCHEMA_VERSION",
    "BenchComparison",
    "BenchError",
    "BenchResult",
    "BenchScenario",
    "DEFAULT_ARTIFACT",
    "DEFAULT_REGRESSION_THRESHOLD",
    "HISTORY_FILE",
    "QUICK_ARTIFACT",
    "append_history",
    "bench_scenario",
    "bench_to_dict",
    "bench_to_json",
    "compare_to_baseline",
    "format_bench_table",
    "format_compare_table",
    "git_sha",
    "history_line",
    "load_bench_artifact",
    "run_bench",
    "run_bench_journaled",
    "run_scenario",
]
