"""Seeded fault injection for the orchestration runner.

The crash-safety contract ("an interrupted sweep resumes to a
byte-identical artifact") is only as good as the failures it has been
proven against, so this module makes the failures *reproducible*: a
:class:`ChaosPlan` names, per grid-point index, exactly which fault to
inject, and the plan travels to the workers so the same spec string
replays the same fault sequence every run.

Worker-side modes (triggered on a point's first ``trigger_attempts``
attempts, so retries succeed and recovery is observable):

* ``kill``   — the worker SIGKILLs itself before running the point
  (exercises the :data:`~repro.orchestration.retry.CRASH` path);
* ``hang``   — the worker sleeps ``hang_s`` before running
  (exercises the per-point ``--timeout`` kill);
* ``raise``  — the point raises :class:`ChaosError` in the worker
  (the in-process crash flavour);
* ``corrupt``— the result payload is returned with its
  ``experiment_id`` stripped, so schema validation rejects it but the
  dispatch fingerprint still matches the clean retry
  (:data:`~repro.orchestration.retry.CORRUPTED_RESULT`, recoverable);
* ``nondet`` — like ``corrupt``, but the metrics are also perturbed,
  so the clean retry's fingerprint disagrees with the corrupted
  attempt's — the terminal
  :data:`~repro.orchestration.retry.FINGERPRINT_MISMATCH`.

Coordinator-side mode: ``abort=N`` stops the coordinator after ``N``
newly journaled points, simulating a mid-sweep crash of the
orchestrator itself (the run exits with the interrupted status and a
resume command, exactly like Ctrl-C).

Spec grammar (CLI ``--chaos``): comma-separated ``mode=index`` terms,
``":"`` separating multiple indices — ``"kill=1:3,hang=5,abort=4"``.

:func:`tear_journal_tail` is the disk-side fault: it truncates a
journal mid-last-line, simulating a crash between ``write`` and
``fsync``, for tests of the loader's torn-tail tolerance.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from typing import Mapping, Optional, Union

#: Worker-side injection modes.
WORKER_MODES = ("kill", "hang", "raise", "corrupt", "nondet")

_PathLike = Union[str, "os.PathLike[str]"]


class ChaosError(Exception):
    """Raised by the ``raise`` mode inside a worker, and for bad specs."""


@dataclass(frozen=True)
class ChaosPlan:
    """A deterministic fault schedule keyed by grid-point index."""

    modes: Mapping[int, str] = field(default_factory=dict)
    abort_after: Optional[int] = None
    trigger_attempts: int = 1
    hang_s: float = 30.0
    seed: int = 0

    @classmethod
    def parse(
        cls,
        spec: str,
        *,
        seed: int = 0,
        hang_s: float = 30.0,
        trigger_attempts: int = 1,
    ) -> "ChaosPlan":
        """Parse a ``--chaos`` spec string (see module docstring)."""
        modes: dict[int, str] = {}
        abort_after: Optional[int] = None
        for term in spec.split(","):
            term = term.strip()
            if not term:
                continue
            mode, sep, value = term.partition("=")
            if not sep:
                raise ChaosError(
                    f"chaos term {term!r} needs mode=index (e.g. kill=2)"
                )
            try:
                indices = [int(token) for token in value.split(":") if token]
            except ValueError:
                raise ChaosError(
                    f"chaos term {term!r}: indices must be integers"
                ) from None
            if mode == "abort":
                if len(indices) != 1:
                    raise ChaosError(f"chaos term {term!r}: abort takes one count")
                abort_after = indices[0]
            elif mode in WORKER_MODES:
                for index in indices:
                    modes[index] = mode
            else:
                raise ChaosError(
                    f"unknown chaos mode {mode!r}; "
                    f"known: {', '.join(WORKER_MODES + ('abort',))}"
                )
        return cls(
            modes=modes,
            abort_after=abort_after,
            trigger_attempts=trigger_attempts,
            hang_s=hang_s,
            seed=seed,
        )

    # ------------------------------------------------------------------
    def mode_for(self, index: int, attempt: int) -> Optional[str]:
        """The fault to inject for attempt number ``attempt`` (1-based)."""
        if attempt > self.trigger_attempts:
            return None
        return self.modes.get(index)

    def strike_pre(self, index: int, attempt: int) -> None:
        """Worker-side injection *before* the point runs."""
        mode = self.mode_for(index, attempt)
        if mode == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif mode == "hang":
            # Stall the worker; the coordinator's per-point timeout is
            # what ends this (time.sleep never touches simulated state).
            time.sleep(self.hang_s)
        elif mode == "raise":
            raise ChaosError(
                f"injected failure at point {index} (attempt {attempt})"
            )

    def corrupt_payload(
        self, index: int, attempt: int, payload: dict
    ) -> dict:
        """Worker-side injection *after* the point ran."""
        mode = self.mode_for(index, attempt)
        if mode in ("corrupt", "nondet"):
            payload = dict(payload)
            payload.pop("experiment_id", None)
        if mode == "nondet":
            metrics = dict(payload.get("metrics") or {})
            metrics["__chaos_nondet__"] = float(self.seed + attempt)
            payload["metrics"] = metrics
        return payload


def tear_journal_tail(path: _PathLike, *, keep_fraction: float = 0.5) -> int:
    """Truncate a journal mid-last-line; returns bytes removed.

    Simulates a crash between ``write(2)`` and the data reaching disk:
    the final line loses its newline and part of its body, which is
    exactly the damage :func:`~repro.orchestration.journal.load_journal`
    must shrug off.
    """
    target = os.fspath(path)
    if not os.path.exists(target):
        return 0
    with open(target, "rb") as handle:
        data = handle.read()
    body = data.rstrip(b"\n")
    if not body:
        return 0
    last_start = body.rfind(b"\n") + 1
    last_line = body[last_start:]
    keep = last_start + max(int(len(last_line) * keep_fraction), 1)
    os.truncate(target, keep)
    return len(data) - keep


__all__ = [
    "ChaosError",
    "ChaosPlan",
    "WORKER_MODES",
    "tear_journal_tail",
]
