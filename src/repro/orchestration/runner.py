"""The crash-safe sweep coordinator and its resilient worker pool.

:func:`orchestrate_sweep` is the journaled replacement for the ad-hoc
``ProcessPoolExecutor`` loop the CLI sweep used to run: every settled
grid point is durably appended to the journal *before* the coordinator
moves on, so a crash — of a worker, of the coordinator, of the machine
— loses at most the points still in flight, and ``--resume`` replays
none of the finished work.  The merged artifact is built by the same
:func:`~repro.experiments.sweep.build_sweep_artifact` the serial path
uses, from payloads that are either fresh worker results or journal
lines (both JSON-round-trip stable), so an interrupted-then-resumed
sweep is **byte-identical** to an uninterrupted serial run.

Pool design: one :class:`multiprocessing.Process` per worker with a
private duplex :class:`~multiprocessing.Pipe`, not a shared queue.
Timeout enforcement and chaos testing both require SIGKILLing an
individual worker, and a kill mid-``queue.put`` can corrupt a shared
queue for every sibling; a private pipe confines the damage to the one
worker, whose pipe simply reads EOF.  Unexpected worker deaths are
absorbed by respawning up to ``policy.max_worker_restarts`` times,
after which the pool gracefully degrades to fewer workers (never below
one) instead of thrashing on a poisoned host.

Wall-clock time appears in this module only to pace retries and detect
timeouts of the *harness*; it never feeds simulated state, charged
costs, or artifact content.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Mapping, Optional, Sequence

from repro.analysis.results import ExperimentResult
from repro.experiments.registry import REGISTRY, _jsonable, point_key
from repro.experiments.sweep import build_sweep_artifact, expand_grid
from repro.orchestration.chaos import ChaosPlan
from repro.orchestration.journal import (
    Journal,
    JournalEntry,
    JournalError,
    result_fingerprint,
)
from repro.orchestration.retry import (
    CORRUPTED_RESULT,
    CRASH,
    FINGERPRINT_MISMATCH,
    TIMEOUT,
    RetryPolicy,
)
from repro.orchestration.worker import worker_main

#: Ceiling on one blocking wait, so the loop re-checks deadlines and
#: stays responsive even if an event source misbehaves.
_MAX_WAIT_S = 1.0

#: Grace period for workers to exit after a ``stop`` message.
_STOP_GRACE_S = 2.0


class OrchestrationError(Exception):
    """The run could not be orchestrated (setup/configuration errors)."""


class OrchestrationInterrupted(Exception):
    """The run stopped early (SIGINT or injected abort); journal kept.

    Carries what the CLI needs to print the resume command: the
    journal path and how much of the grid had settled.
    """

    def __init__(self, journal_path: str, completed: int, total: int) -> None:
        self.journal_path = journal_path
        self.completed = completed
        self.total = total
        super().__init__(
            f"interrupted with {completed}/{total} point(s) settled in "
            f"{journal_path}"
        )


class _AbortInjected(Exception):
    """Internal: the chaos plan's ``abort=N`` tripped."""


def _now_s() -> float:
    # repro-lint: disable=determinism -- harness scheduling only (retry pacing, timeout deadlines); never feeds simulated state or artifacts
    return time.monotonic()


@dataclass
class PointOutcome:
    """How one grid point settled."""

    index: int
    key: str
    params: dict[str, Any]
    status: str  # "ok" | "failed"
    attempts: int
    payload: Optional[dict[str, Any]] = None
    error: Optional[dict[str, Any]] = None
    resumed: bool = False


@dataclass
class SweepReport:
    """Everything :func:`orchestrate_sweep` knows at the end of a run."""

    experiment: str
    quick: bool
    artifact: dict[str, Any]
    outcomes: list[PointOutcome]
    journal_path: str
    resumed: int
    executed: int

    @property
    def failed(self) -> list[PointOutcome]:
        return [o for o in self.outcomes if o.status == "failed"]


@dataclass
class _Task:
    index: int
    key: str
    params: dict[str, Any]
    attempt: int
    not_before: float = 0.0
    deadline: Optional[float] = None


class _Worker:
    """One pool process plus its private pipe."""

    def __init__(self, ctx: Any, chaos: Optional[ChaosPlan]) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.conn = parent_conn
        self.process = ctx.Process(
            target=worker_main, args=(child_conn, chaos), daemon=True
        )
        self.process.start()
        child_conn.close()
        self.task: Optional[_Task] = None

    @property
    def busy(self) -> bool:
        return self.task is not None

    def send_task(self, task: _Task, name: str, quick: bool) -> None:
        self.conn.send(
            ("task", task.index, task.attempt, name, task.params, quick)
        )
        self.task = task

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.kill()
        self.process.join()
        self.conn.close()

    def stop(self) -> None:
        try:
            self.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=_STOP_GRACE_S)
        self.kill()


@dataclass
class _PoolRunner:
    """The coordinator loop for one batch of pending tasks."""

    name: str
    quick: bool
    tasks: list[_Task]
    jobs: int
    policy: RetryPolicy
    chaos: Optional[ChaosPlan]
    journal: Journal
    already_done: int
    total: int
    on_event: Callable[[str], None]

    outcomes: dict[int, PointOutcome] = field(default_factory=dict)
    failures: dict[str, int] = field(default_factory=dict)
    fingerprints: dict[str, str] = field(default_factory=dict)
    workers: list[_Worker] = field(default_factory=list)
    deaths: int = 0

    def run(self) -> dict[int, PointOutcome]:
        self.ready = sorted(self.tasks, key=lambda t: t.index)
        ctx = multiprocessing.get_context()
        n_workers = max(1, min(self.jobs, len(self.tasks)))
        self.workers = [_Worker(ctx, self.chaos) for _ in range(n_workers)]
        try:
            self._loop()
        except (KeyboardInterrupt, _AbortInjected):
            self._shutdown(graceful=False)
            raise OrchestrationInterrupted(
                self.journal.path,
                self.already_done + len(self.outcomes),
                self.total,
            ) from None
        except BaseException:
            self._shutdown(graceful=False)
            raise
        self._shutdown(graceful=True)
        return self.outcomes

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while self.ready or any(w.busy for w in self.workers):
            now = _now_s()
            self._dispatch(now)
            timeout = self._wait_timeout(now)
            busy = [w for w in self.workers if w.busy]
            if busy:
                by_conn = {w.conn: w for w in busy}
                for conn in mp_connection.wait(list(by_conn), timeout):
                    self._drain(by_conn[conn])
            elif timeout > 0:
                time.sleep(timeout)
            self._reap_timeouts(_now_s())

    def _dispatch(self, now: float) -> None:
        for worker in list(self.workers):
            if worker.busy or not self.ready:
                continue
            if not worker.process.is_alive():
                self._worker_died(worker)
                continue
            if self.ready[0].not_before > now:
                break  # earliest retry still backing off
            task = self.ready.pop(0)
            if self.policy.timeout_s is not None:
                task.deadline = now + self.policy.timeout_s
            try:
                worker.send_task(task, self.name, self.quick)
            except (BrokenPipeError, OSError):
                task.deadline = None
                self.ready.insert(0, task)
                self._worker_died(worker)

    def _wait_timeout(self, now: float) -> float:
        candidates = [_MAX_WAIT_S]
        for worker in self.workers:
            if worker.task is not None and worker.task.deadline is not None:
                candidates.append(worker.task.deadline - now)
        if self.ready:
            idle = any(not w.busy for w in self.workers)
            if idle or not any(w.busy for w in self.workers):
                candidates.append(self.ready[0].not_before - now)
        return max(min(candidates), 0.0)

    # ------------------------------------------------------------------
    def _drain(self, worker: _Worker) -> None:
        try:
            message = worker.conn.recv()
        except (EOFError, OSError):
            self._worker_died(worker)
            return
        task = worker.task
        worker.task = None
        if task is None:  # pragma: no cover — protocol violation
            return
        tag = message[0]
        if tag == "ok":
            self._handle_ok(task, message[3])
        else:
            detail = message[3]
            self._fail(
                task, CRASH, f"{detail.get('type')}: {detail.get('detail')}"
            )

    def _handle_ok(self, task: _Task, payload: dict[str, Any]) -> None:
        try:
            ExperimentResult.from_dict(payload)
            invalid: Optional[str] = None
        except Exception as error:  # noqa: BLE001 — any parse failure is corruption
            invalid = f"result failed schema validation: {error!r}"
        fingerprint = result_fingerprint(payload)
        if invalid is not None:
            # Remember what this attempt *claimed* so a clean retry can
            # be cross-checked against it.
            self.fingerprints.setdefault(task.key, fingerprint)
            self._fail(task, CORRUPTED_RESULT, invalid)
            return
        prior = self.fingerprints.get(task.key)
        if prior is not None and prior != fingerprint:
            self._fail(
                task,
                FINGERPRINT_MISMATCH,
                f"retry fingerprint {fingerprint[:12]} != earlier attempt's "
                f"{prior[:12]}: the point is not deterministic",
            )
            return
        self.outcomes[task.index] = PointOutcome(
            index=task.index,
            key=task.key,
            params=task.params,
            status="ok",
            attempts=task.attempt,
            payload=payload,
        )
        self.journal.record(
            JournalEntry(
                status="ok",
                key=task.key,
                attempt=task.attempt,
                fingerprint=fingerprint,
                payload=payload,
            )
        )
        self._after_record()

    def _fail(self, task: _Task, kind: str, detail: str) -> None:
        self.failures[task.key] = self.failures.get(task.key, 0) + 1
        n = self.failures[task.key]
        if self.policy.should_retry(kind, n):
            delay = self.policy.backoff_s(task.key, n)
            self.on_event(
                f"point {task.index} {kind} on attempt {task.attempt}; "
                f"retry {n}/{self.policy.max_retries} in {delay:.2f}s"
            )
            retry = _Task(
                index=task.index,
                key=task.key,
                params=task.params,
                attempt=n + 1,
                not_before=_now_s() + delay,
            )
            self.ready.append(retry)
            self.ready.sort(key=lambda t: (t.not_before, t.index))
            return
        error = {"kind": kind, "detail": detail, "attempts": n}
        self.outcomes[task.index] = PointOutcome(
            index=task.index,
            key=task.key,
            params=task.params,
            status="failed",
            attempts=n,
            error=error,
        )
        self.journal.record(
            JournalEntry(
                status="failed", key=task.key, attempt=n, error=error
            )
        )
        self.on_event(
            f"point {task.index} FAILED ({kind}) after {n} attempt(s): {detail}"
        )
        self._after_record()

    def _after_record(self) -> None:
        if (
            self.chaos is not None
            and self.chaos.abort_after is not None
            and self.journal.recorded >= self.chaos.abort_after
        ):
            raise _AbortInjected()

    # ------------------------------------------------------------------
    def _reap_timeouts(self, now: float) -> None:
        for worker in list(self.workers):
            task = worker.task
            if task is None or task.deadline is None or now < task.deadline:
                continue
            worker.task = None
            worker.kill()
            self._replace(worker, deliberate=True)
            self._fail(
                task,
                TIMEOUT,
                f"no result within {self.policy.timeout_s}s; worker killed",
            )

    def _worker_died(self, worker: _Worker) -> None:
        task = worker.task
        worker.task = None
        worker.kill()
        self.deaths += 1
        self._replace(worker, deliberate=False)
        if task is not None:
            code = worker.process.exitcode
            self._fail(task, CRASH, f"worker process died (exit code {code})")

    def _replace(self, worker: _Worker, *, deliberate: bool) -> None:
        """Respawn (or, past the restart budget, shrink) the pool.

        A deliberate kill (timeout enforcement) always respawns —
        the host is healthy, the *point* misbehaved.  Unexpected
        deaths respawn only within ``max_worker_restarts``; beyond
        that the pool degrades, but never below one worker (the
        dead worker's task is about to be re-queued and someone must
        still run it — per-point retry limits bound the damage).
        """
        if worker in self.workers:
            self.workers.remove(worker)
        within_budget = deliberate or self.deaths <= self.policy.max_worker_restarts
        if within_budget or not self.workers:
            ctx = multiprocessing.get_context()
            self.workers.append(_Worker(ctx, self.chaos))
        else:
            self.on_event(
                f"worker died unexpectedly {self.deaths} times "
                f"(> max_worker_restarts={self.policy.max_worker_restarts}); "
                f"degrading pool to {len(self.workers)} worker(s)"
            )

    def _shutdown(self, *, graceful: bool) -> None:
        for worker in self.workers:
            if graceful and not worker.busy:
                worker.stop()
            else:
                worker.kill()
        self.workers = []


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------
def orchestrate_sweep(
    name: Optional[str] = None,
    grid: Optional[Mapping[str, Any]] = None,
    *,
    journal_path: str,
    jobs: int = 1,
    quick: bool = False,
    resume: bool = False,
    retry_failed: bool = False,
    policy: Optional[RetryPolicy] = None,
    chaos: Optional[ChaosPlan] = None,
    on_event: Optional[Callable[[str], None]] = None,
) -> SweepReport:
    """Run (or resume) a journaled sweep; returns the merged report.

    Fresh runs need ``name`` and ``grid`` and refuse to overwrite an
    existing journal.  With ``resume=True`` the experiment, grid and
    quick flag are taken from the journal header — resume may change
    *how* the remaining points run (jobs, timeouts, retry budget), but
    never *what* runs.  ``retry_failed`` re-runs points recorded as
    FAILED; everything else in the journal is skipped.

    Raises :class:`OrchestrationInterrupted` on SIGINT or an injected
    abort, with the journal intact and flushed.
    """
    policy = policy or RetryPolicy()
    notify = on_event or (lambda message: None)
    done: dict[str, JournalEntry] = {}
    journal: Optional[Journal] = None
    if resume:
        journal, done = Journal.resume(journal_path, run_kind="sweep")
        header_fp = journal.header.get("fingerprint") or {}
        try:
            name = header_fp["experiment"]
            quick = bool(header_fp["quick"])
            grid = header_fp["grid"]
        except KeyError as error:
            journal.close()
            raise JournalError(
                f"journal {journal_path!r} header lacks {error}; cannot resume"
            ) from error
    if name is None or grid is None:
        raise OrchestrationError("a fresh sweep needs an experiment and a grid")

    spec = REGISTRY.get(name)
    axes, points = expand_grid(spec, grid)
    if journal is None:
        fingerprint = {
            "experiment": name,
            "quick": quick,
            "grid": {
                axis: [_jsonable(value) for value in values]
                for axis, values in axes.items()
            },
        }
        journal = Journal.create(
            journal_path, run_kind="sweep", fingerprint=fingerprint
        )

    keys = [point_key(point) for point in points]
    outcomes: dict[int, PointOutcome] = {}
    pending: list[_Task] = []
    for index, (key, params) in enumerate(zip(keys, points)):
        entry = done.get(key)
        if entry is not None and (entry.status == "ok" or not retry_failed):
            outcomes[index] = PointOutcome(
                index=index,
                key=key,
                params=dict(params),
                status=entry.status,
                attempts=entry.attempt,
                payload=entry.payload,
                error=entry.error,
                resumed=True,
            )
        else:
            pending.append(
                _Task(index=index, key=key, params=dict(params), attempt=1)
            )
    resumed = len(outcomes)
    if resumed:
        notify(f"resuming: {resumed}/{len(points)} point(s) already journaled")

    if pending:
        runner = _PoolRunner(
            name=name,
            quick=quick,
            tasks=pending,
            jobs=jobs,
            policy=policy,
            chaos=chaos,
            journal=journal,
            already_done=resumed,
            total=len(points),
            on_event=notify,
        )
        try:
            outcomes.update(runner.run())
        except BaseException:
            journal.close()
            raise
    journal.close()

    results = [outcomes[index].payload for index in range(len(points))]
    errors = {
        index: outcome.error
        for index, outcome in outcomes.items()
        if outcome.status == "failed" and outcome.error is not None
    }
    artifact = build_sweep_artifact(
        name, axes, points, results, quick=quick, errors=errors or None
    )
    return SweepReport(
        experiment=name,
        quick=quick,
        artifact=artifact,
        outcomes=[outcomes[index] for index in range(len(points))],
        journal_path=journal.path,
        resumed=resumed,
        executed=len(pending),
    )


def run_journaled_serial(
    keys: Sequence[str],
    run_one: Callable[[int, str], dict[str, Any]],
    *,
    journal_path: str,
    run_kind: str,
    fingerprint: Mapping[str, Any],
    resume: bool = False,
    on_event: Optional[Callable[[str], None]] = None,
) -> tuple[dict[str, dict[str, Any]], int]:
    """Journal a serial run of named units (used by ``bench``).

    Runs ``run_one(index, key)`` for every key not already settled in
    the journal, durably recording each payload as it lands; returns
    ``(key -> payload, resumed count)``.  A :class:`KeyboardInterrupt`
    flushes and closes the journal, then surfaces as
    :class:`OrchestrationInterrupted` so the CLI can print the resume
    command.  Unlike sweeps, units run in-process (bench timings must
    not pay subprocess noise), so per-unit timeouts do not apply.
    """
    notify = on_event or (lambda message: None)
    if resume:
        journal, done = Journal.resume(
            journal_path, run_kind=run_kind, fingerprint=fingerprint
        )
    else:
        journal = Journal.create(
            journal_path, run_kind=run_kind, fingerprint=fingerprint
        )
        done = {}
    payloads: dict[str, dict[str, Any]] = {}
    resumed = 0
    try:
        for index, key in enumerate(keys):
            entry = done.get(key)
            if entry is not None and entry.status == "ok" and entry.payload is not None:
                payloads[key] = entry.payload
                resumed += 1
                continue
            payload = run_one(index, key)
            journal.record(
                JournalEntry(
                    status="ok",
                    key=key,
                    attempt=1,
                    fingerprint=result_fingerprint(payload),
                    payload=payload,
                )
            )
            payloads[key] = payload
    except KeyboardInterrupt:
        journal.close()
        raise OrchestrationInterrupted(
            journal.path, len(payloads), len(keys)
        ) from None
    except BaseException:
        journal.close()
        raise
    journal.close()
    if resumed:
        notify(f"resumed {resumed}/{len(keys)} unit(s) from {journal.path}")
    return payloads, resumed


__all__ = [
    "OrchestrationError",
    "OrchestrationInterrupted",
    "PointOutcome",
    "SweepReport",
    "orchestrate_sweep",
    "run_journaled_serial",
]
