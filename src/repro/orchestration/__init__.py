"""Crash-safe experiment orchestration.

The harness-side counterpart of PR 8's simulated fault tolerance: the
machinery that produces artifacts must itself survive killed workers,
hangs, torn writes, and Ctrl-C without losing completed work or
emitting a subtly different artifact on the second try.

* :mod:`~repro.orchestration.journal` — the append-only, fsync'd
  ``*.partial.jsonl`` run journal and its torn-tail-tolerant loader;
* :mod:`~repro.orchestration.retry` — the failure taxonomy (crash,
  timeout, corrupted-result, fingerprint-mismatch-on-retry) and the
  capped, deterministically jittered backoff policy;
* :mod:`~repro.orchestration.worker` — the subprocess task loop;
* :mod:`~repro.orchestration.runner` — the coordinator:
  :func:`~repro.orchestration.runner.orchestrate_sweep` (journaled,
  resumable, byte-identical sweeps) and
  :func:`~repro.orchestration.runner.run_journaled_serial` (the same
  journal contract for ``bench``);
* :mod:`~repro.orchestration.chaos` — seeded fault injection that
  proves all of the above end-to-end.
"""

from repro.orchestration.chaos import ChaosError, ChaosPlan, tear_journal_tail
from repro.orchestration.journal import (
    JOURNAL_KIND,
    JOURNAL_SCHEMA_VERSION,
    Journal,
    JournalEntry,
    JournalError,
    load_journal,
    result_fingerprint,
)
from repro.orchestration.retry import (
    CORRUPTED_RESULT,
    CRASH,
    FAILURE_KINDS,
    FINGERPRINT_MISMATCH,
    RetryPolicy,
    TERMINAL_KINDS,
    TIMEOUT,
)
from repro.orchestration.runner import (
    OrchestrationError,
    OrchestrationInterrupted,
    PointOutcome,
    SweepReport,
    orchestrate_sweep,
    run_journaled_serial,
)

__all__ = [
    "CORRUPTED_RESULT",
    "CRASH",
    "ChaosError",
    "ChaosPlan",
    "FAILURE_KINDS",
    "FINGERPRINT_MISMATCH",
    "JOURNAL_KIND",
    "JOURNAL_SCHEMA_VERSION",
    "Journal",
    "JournalEntry",
    "JournalError",
    "OrchestrationError",
    "OrchestrationInterrupted",
    "PointOutcome",
    "RetryPolicy",
    "SweepReport",
    "TERMINAL_KINDS",
    "TIMEOUT",
    "load_journal",
    "orchestrate_sweep",
    "result_fingerprint",
    "run_journaled_serial",
    "tear_journal_tail",
]
