"""Failure taxonomy and the deterministic retry/backoff policy.

Every way a grid point can fail is named, because the remedies differ:

* :data:`CRASH` — the worker process died (SIGKILL, OOM, segfault) or
  the point raised an exception in the worker.  Transient by default;
  retried up to the policy's budget.
* :data:`TIMEOUT` — the point exceeded the per-point deadline and the
  coordinator killed its worker.  Also retried: a hang can be a stuck
  import lock or an unlucky scheduler preemption, not a property of
  the point.
* :data:`CORRUPTED_RESULT` — the worker returned a payload that fails
  :meth:`~repro.analysis.results.ExperimentResult.from_dict`
  validation (torn pickle, chaos-injected mutation).  Retried; the
  corrupt payload's fingerprint is remembered for the next attempt.
* :data:`FINGERPRINT_MISMATCH` — a retry produced a *valid* result
  whose dispatch fingerprint disagrees with an earlier attempt of the
  same point.  Terminal: the experiment is nondeterministic, and no
  number of retries can tell which answer is right.  The point is
  recorded as a FAILED row instead.

Backoff between retries is capped exponential with **seeded,
per-(point, attempt) deterministic jitter**: the delay is a pure
function of ``(policy.seed, point key, attempt)``, so two runs of the
same failing sweep retry on the same schedule, yet different points do
not thundering-herd a shared resource on the same tick.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

#: Worker process death or in-worker exception.
CRASH = "crash"

#: Per-point deadline exceeded; the coordinator killed the worker.
TIMEOUT = "timeout"

#: The returned payload failed result-schema validation.
CORRUPTED_RESULT = "corrupted-result"

#: A retry's valid result disagrees with an earlier attempt.
FINGERPRINT_MISMATCH = "fingerprint-mismatch-on-retry"

#: Every failure kind, in taxonomy order.
FAILURE_KINDS = (CRASH, TIMEOUT, CORRUPTED_RESULT, FINGERPRINT_MISMATCH)

#: Kinds that must never be retried: more attempts cannot resolve them.
TERMINAL_KINDS = frozenset({FINGERPRINT_MISMATCH})


@dataclass(frozen=True)
class RetryPolicy:
    """How the runner reacts to failing points and dying workers.

    ``max_retries`` counts attempts *beyond* the first, so the default
    of 2 allows three attempts total.  ``timeout_s`` of ``None``
    disables the per-point deadline.  ``max_worker_restarts`` bounds
    how many unexpected worker deaths the pool absorbs by respawning
    before it degrades to fewer workers instead.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.1
    backoff_cap_s: float = 5.0
    jitter: float = 0.25
    seed: int = 0
    timeout_s: Optional[float] = None
    max_worker_restarts: int = 3

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries cannot be negative, got {self.max_retries}")
        if self.backoff_base_s < 0:
            raise ValueError(
                f"backoff_base_s cannot be negative, got {self.backoff_base_s}"
            )
        if self.backoff_cap_s < self.backoff_base_s:
            raise ValueError(
                f"backoff_cap_s ({self.backoff_cap_s}) cannot be below "
                f"backoff_base_s ({self.backoff_base_s})"
            )
        if not 0 <= self.jitter < 1:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.max_worker_restarts < 0:
            raise ValueError(
                f"max_worker_restarts cannot be negative, got "
                f"{self.max_worker_restarts}"
            )

    # ------------------------------------------------------------------
    def should_retry(self, kind: str, failures: int) -> bool:
        """May a point with ``failures`` failed attempts try again?

        ``failures`` counts attempts already failed, so after the first
        failure ``should_retry(kind, 1)`` gates the first retry.
        """
        if kind in TERMINAL_KINDS:
            return False
        return failures <= self.max_retries

    def backoff_s(self, key: str, failures: int) -> float:
        """Delay before the retry that follows failure number ``failures``.

        Pure function of ``(seed, key, failures)``: the exponential
        base ``backoff_base_s * 2**(failures - 1)`` is capped at
        ``backoff_cap_s``, then jittered by a factor drawn from a
        string-seeded :class:`random.Random` — string seeding hashes
        via SHA-512 internally, so the draw is identical across
        processes and interpreter launches regardless of
        ``PYTHONHASHSEED``.
        """
        if failures < 1:
            return 0.0
        base = min(
            self.backoff_base_s * (2.0 ** (failures - 1)), self.backoff_cap_s
        )
        if self.jitter <= 0 or base <= 0:
            return base
        draw = random.Random(f"{self.seed}|{key}|{failures}").random()
        factor = 1.0 + self.jitter * (2.0 * draw - 1.0)
        return min(base * factor, self.backoff_cap_s)


__all__ = [
    "CORRUPTED_RESULT",
    "CRASH",
    "FAILURE_KINDS",
    "FINGERPRINT_MISMATCH",
    "RetryPolicy",
    "TERMINAL_KINDS",
    "TIMEOUT",
]
