"""The append-only, fsync'd run journal behind ``sweep --resume``.

A journal is a JSONL file: one schema-versioned header line naming the
run it belongs to (its *run fingerprint*: experiment, grid, quick
flag), then one line per settled grid point — ``ok`` lines carry the
full result payload plus its dispatch fingerprint, ``failed`` lines
carry the failure taxonomy record.  Lines are appended through
:class:`repro.core.artifacts.DurableAppender`, so every line is on
stable storage before the runner moves on; a crash can tear at most
the line being written.

The loader is exactly as tolerant as that guarantee requires: a
**final** line without its trailing newline (or that fails to parse)
is a torn tail and is dropped — :meth:`Journal.resume` truncates it
away before appending, so the file never accumulates garbage — while
a corrupt line in the *middle* of the file means something other than
a crash happened and raises :class:`JournalError` rather than
silently resuming from a lie.

Resume identity is two-level: the header fingerprint must match the
run being resumed (same experiment, same grid, same quick flag), and
individual points match by :func:`repro.experiments.registry.point_key`.
Within a journal, a later line for the same key supersedes an earlier
one — that is how ``--retry-failed`` records a success over an old
FAILED row without rewriting history.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Union

from repro._version import __version__
from repro.core.artifacts import DurableAppender

#: Version of the journal line format.
JOURNAL_SCHEMA_VERSION = 1

#: The ``kind`` stamp in a journal header line.
JOURNAL_KIND = "orchestration_journal"

_PathLike = Union[str, "os.PathLike[str]"]


class JournalError(Exception):
    """A journal could not be created, parsed, or matched to its run."""


def result_fingerprint(payload: Mapping[str, Any]) -> str:
    """Digest of the parts of a result that determinism fixes.

    Hashes the ``metrics`` and ``metadata`` sections (canonical JSON),
    which ``(experiment, params, seed)`` fully determine — envelope
    fields like ``repro_version`` stay out so a version bump does not
    read as nondeterminism.  Payloads without either section (e.g.
    bench records) hash whole.  Computable even for payloads that fail
    schema validation, which is what lets a retry be compared against
    a corrupted earlier attempt.
    """
    if "metrics" in payload or "metadata" in payload:
        core: Any = {
            "metrics": payload.get("metrics"),
            "metadata": payload.get("metadata"),
        }
    else:
        core = dict(payload)
    text = json.dumps(core, sort_keys=True, separators=(",", ":"), default=repr)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class JournalEntry:
    """One settled point: an ``ok`` payload or a ``failed`` record."""

    status: str  # "ok" | "failed"
    key: str
    attempt: int
    fingerprint: str = ""
    payload: Optional[dict[str, Any]] = None
    error: Optional[dict[str, Any]] = None

    def as_record(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "status": self.status,
            "key": self.key,
            "attempt": self.attempt,
            "fingerprint": self.fingerprint,
        }
        if self.payload is not None:
            record["payload"] = self.payload
        if self.error is not None:
            record["error"] = self.error
        return record

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "JournalEntry":
        try:
            status = record["status"]
            key = record["key"]
            attempt = int(record["attempt"])
        except (KeyError, TypeError, ValueError) as error:
            raise JournalError(f"malformed journal entry: {error!r}") from error
        if status not in ("ok", "failed"):
            raise JournalError(f"unknown journal entry status {status!r}")
        return cls(
            status=status,
            key=key,
            attempt=attempt,
            fingerprint=str(record.get("fingerprint", "")),
            payload=record.get("payload"),
            error=record.get("error"),
        )


def load_journal(
    path: _PathLike,
) -> tuple[dict[str, Any], dict[str, JournalEntry], int]:
    """Read a journal: (header, latest entry per key, valid byte count).

    The valid byte count is the offset just past the last complete
    (newline-terminated, parseable) line; anything beyond it is a torn
    tail from a crash mid-append and should be truncated before the
    journal is appended to again.
    """
    try:
        with open(os.fspath(path), "rb") as handle:
            data = handle.read()
    except OSError as error:
        raise JournalError(f"cannot read journal {path!r}: {error}") from error
    header: Optional[dict[str, Any]] = None
    entries: dict[str, JournalEntry] = {}
    offset = 0
    while True:
        newline = data.find(b"\n", offset)
        if newline < 0:
            break  # no terminator: torn tail (or clean EOF when empty)
        line = data[offset:newline]
        if line.strip():
            try:
                record = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                if data.find(b"\n", newline + 1) < 0 and not data[newline + 1:].strip():
                    # A terminated-but-corrupt FINAL line: still a torn
                    # tail (the newline may survive a partial write of
                    # a longer buffer); drop it.
                    break
                raise JournalError(
                    f"journal {path!r} is corrupt mid-file at byte {offset}: "
                    f"{error}"
                ) from error
            if header is None:
                header = _validate_header(record, path)
            else:
                entry = JournalEntry.from_record(record)
                entries[entry.key] = entry
        offset = newline + 1
    if header is None:
        raise JournalError(f"journal {path!r} has no header line")
    return header, entries, offset


def _validate_header(record: Mapping[str, Any], path: _PathLike) -> dict[str, Any]:
    if record.get("kind") != JOURNAL_KIND:
        raise JournalError(
            f"{path!r} is not an orchestration journal "
            f"(kind={record.get('kind')!r})"
        )
    schema = record.get("schema_version")
    if schema != JOURNAL_SCHEMA_VERSION:
        raise JournalError(
            f"journal {path!r} has schema version {schema!r}; this build "
            f"reads version {JOURNAL_SCHEMA_VERSION}"
        )
    return dict(record)


def _canonical(value: Any) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


class Journal:
    """An open journal being appended to by a run."""

    def __init__(
        self,
        path: _PathLike,
        header: dict[str, Any],
        appender: DurableAppender,
    ) -> None:
        self.path = os.fspath(path)
        self.header = header
        self._appender = appender
        self.recorded = 0

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: _PathLike,
        *,
        run_kind: str,
        fingerprint: Mapping[str, Any],
    ) -> "Journal":
        """Start a fresh journal; refuses to clobber an existing one.

        A leftover journal means an earlier run was interrupted and its
        completed points are recoverable — silently overwriting it
        would destroy exactly the state this machinery exists to keep.
        """
        target = os.fspath(path)
        if os.path.exists(target):
            raise JournalError(
                f"journal {target!r} already exists; resume it with "
                f"--resume {target}, or delete it to start over"
            )
        header = {
            "kind": JOURNAL_KIND,
            "schema_version": JOURNAL_SCHEMA_VERSION,
            "repro_version": __version__,
            "run_kind": run_kind,
            "fingerprint": dict(fingerprint),
        }
        appender = DurableAppender(target)
        journal = cls(target, header, appender)
        appender.append_line(json.dumps(header, sort_keys=True))
        return journal

    @classmethod
    def resume(
        cls,
        path: _PathLike,
        *,
        run_kind: str,
        fingerprint: Optional[Mapping[str, Any]] = None,
    ) -> tuple["Journal", dict[str, JournalEntry]]:
        """Reopen an interrupted journal and return its settled entries.

        Validates the header against ``run_kind`` (and, when given,
        the expected run ``fingerprint`` — pass ``None`` to derive the
        run from the journal instead), truncates any torn tail, and
        reopens for appending.
        """
        header, entries, valid_bytes = load_journal(path)
        if header.get("run_kind") != run_kind:
            raise JournalError(
                f"journal {os.fspath(path)!r} belongs to a "
                f"{header.get('run_kind')!r} run, not {run_kind!r}"
            )
        if fingerprint is not None and _canonical(
            header.get("fingerprint")
        ) != _canonical(dict(fingerprint)):
            raise JournalError(
                f"journal {os.fspath(path)!r} was written by a different "
                f"run configuration (fingerprint mismatch); resume must "
                f"not change the experiment, grid, or quick flag"
            )
        target = os.fspath(path)
        if valid_bytes < os.path.getsize(target):
            os.truncate(target, valid_bytes)  # drop the torn tail
        journal = cls(target, header, DurableAppender(target))
        return journal, entries

    # ------------------------------------------------------------------
    def record(self, entry: JournalEntry) -> None:
        """Durably append one settled point."""
        self._appender.append_line(json.dumps(entry.as_record(), sort_keys=True))
        self.recorded += 1

    @property
    def closed(self) -> bool:
        return self._appender.closed

    def close(self) -> None:
        self._appender.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = [
    "JOURNAL_KIND",
    "JOURNAL_SCHEMA_VERSION",
    "Journal",
    "JournalEntry",
    "JournalError",
    "load_journal",
    "result_fingerprint",
]
