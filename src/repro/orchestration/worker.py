"""The subprocess side of the resilient worker pool.

One :func:`worker_main` loop runs per pool process, reading task
messages off its private pipe and answering with either a result
payload or a structured error.  The protocol is deliberately tiny:

* coordinator → worker: ``("task", index, attempt, name, params,
  quick)`` or ``("stop",)``
* worker → coordinator: ``("ok", index, attempt, payload)`` or
  ``("error", index, attempt, detail_dict)``

Design points that matter for crash-safety:

* **SIGINT is ignored** in the worker.  A terminal Ctrl-C delivers
  SIGINT to the whole foreground process group; only the coordinator
  may decide what an interrupt means (flush the journal, print the
  resume command), so workers must not race it to an exit.
* **Experiment modules import lazily**, inside the loop's first task,
  so the function body is picklable and works under both the ``fork``
  and ``spawn`` multiprocessing start methods.
* **Exceptions never kill the loop**: a raising point is reported as
  an ``error`` message and the worker stays warm for the next task.
  Only pipe loss (coordinator death) or a ``stop`` message ends it.
* The optional :class:`~repro.orchestration.chaos.ChaosPlan` strikes
  here — before the point runs (kill/hang/raise) or on its payload
  (corrupt/nondet) — because the whole purpose of the harness is to
  fail in the places real workers fail.
"""

from __future__ import annotations

import signal
from typing import Any, Optional

from repro.orchestration.chaos import ChaosPlan


def run_point(name: str, params: dict[str, Any], quick: bool) -> dict[str, Any]:
    """Run one grid point and return its result's wire form."""
    import repro.experiments  # noqa: F401 — populate the registry
    from repro.experiments.registry import REGISTRY

    return REGISTRY.run(name, params, quick=quick).to_dict()


def worker_main(conn: Any, chaos: Optional[ChaosPlan] = None) -> None:
    """Serve task messages on ``conn`` until ``stop`` or pipe loss."""
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover — non-main thread
        pass
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if not message or message[0] == "stop":
            break
        _, index, attempt, name, params, quick = message
        try:
            if chaos is not None:
                chaos.strike_pre(index, attempt)
            payload = run_point(name, params, quick)
            if chaos is not None:
                payload = chaos.corrupt_payload(index, attempt, payload)
        except Exception as error:  # noqa: BLE001 — reported, not swallowed
            detail = {"type": type(error).__name__, "detail": str(error)}
            try:
                conn.send(("error", index, attempt, detail))
            except (BrokenPipeError, OSError):
                break
            continue
        try:
            conn.send(("ok", index, attempt, payload))
        except (BrokenPipeError, OSError):
            break
    conn.close()


__all__ = ["run_point", "worker_main"]
