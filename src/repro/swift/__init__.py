"""SWiFT-style software feedback toolkit.

The paper's controller "is implemented using the SWiFT software
feedback toolkit [6]", in which a controller is a *circuit* of small
feedback components computing a function of its inputs.  This package
is a reimplementation of the parts of that toolkit the allocator
needs:

* stateless and stateful signal-processing blocks
  (:mod:`repro.swift.components`): gain, summing junction, integrator
  with anti-windup, differentiator, first-order low-pass filter,
  clamp and dead-band;
* a :class:`~repro.swift.pid.PIDController` assembled from those blocks
  (the G function of Figure 3);
* a :class:`~repro.swift.circuit.Circuit` container for composing and
  stepping a whole dataflow graph at the controller's sampling rate;
* an :class:`~repro.swift.slo.SLOController` — a second-level feedback
  loop that drives a job class's reservation from its observed tail
  latency (windowed exact-rank p99 vs an SLO target) instead of
  progress pressure.
"""

from repro.swift.circuit import Circuit, Wire
from repro.swift.components import (
    Clamp,
    Component,
    DeadBand,
    Differentiator,
    Gain,
    Integrator,
    LowPassFilter,
    MovingAverage,
    SummingJunction,
)
from repro.swift.pid import PIDController, PIDGains
from repro.swift.slo import SLOController, SLOPolicy

__all__ = [
    "Circuit",
    "Clamp",
    "Component",
    "DeadBand",
    "Differentiator",
    "Gain",
    "Integrator",
    "LowPassFilter",
    "MovingAverage",
    "PIDController",
    "PIDGains",
    "SLOController",
    "SLOPolicy",
    "SummingJunction",
    "Wire",
]
