"""Feedback circuits.

SWiFT models a controller as a dataflow circuit: named components wired
together, stepped once per sampling interval.  The proportion allocator
only needs linear chains (sum → PID → gain → clamp), but the circuit
abstraction is exposed publicly so users can build richer controllers
(e.g. cascaded filters for noisy progress metrics) without modifying
the allocator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.swift.components import Component


@dataclass
class Wire:
    """A directed connection between two named components."""

    source: str
    sink: str


class Circuit:
    """A linear-or-branching dataflow graph of :class:`Component` blocks.

    Components are registered by name; wires connect a source
    component's output to a sink component's input.  A component with no
    incoming wire is an input of the circuit and is fed from the
    ``inputs`` mapping given to :meth:`step`; a component with no
    outgoing wire is an output and its value appears in the result
    mapping.

    The graph must be acyclic (feedback loops close *outside* the
    circuit, through the plant — here, the scheduler and the
    application's queues).
    """

    def __init__(self) -> None:
        self._components: dict[str, Component] = {}
        self._wires: list[Wire] = []
        self._order: Optional[list[str]] = None

    def add(self, name: str, component: Component) -> "Circuit":
        """Register ``component`` under ``name`` (chainable)."""
        if name in self._components:
            raise ValueError(f"component {name!r} already exists in circuit")
        self._components[name] = component
        self._order = None
        return self

    def connect(self, source: str, sink: str) -> "Circuit":
        """Wire ``source``'s output to ``sink``'s input (chainable)."""
        for name in (source, sink):
            if name not in self._components:
                raise ValueError(f"unknown component {name!r}")
        if any(w.sink == sink for w in self._wires):
            raise ValueError(
                f"component {sink!r} already has an incoming wire; "
                "components take a single input"
            )
        self._wires.append(Wire(source, sink))
        self._order = None
        return self

    def chain(self, *names: str) -> "Circuit":
        """Connect ``names`` in sequence: a → b → c …"""
        for source, sink in zip(names, names[1:]):
            self.connect(source, sink)
        return self

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def inputs(self) -> list[str]:
        """Names of components with no incoming wire."""
        sinks = {w.sink for w in self._wires}
        return [name for name in self._components if name not in sinks]

    def outputs(self) -> list[str]:
        """Names of components with no outgoing wire."""
        sources = {w.source for w in self._wires}
        return [name for name in self._components if name not in sources]

    def _topological_order(self) -> list[str]:
        if self._order is not None:
            return self._order
        incoming: dict[str, int] = {name: 0 for name in self._components}
        for wire in self._wires:
            incoming[wire.sink] += 1
        frontier = [name for name, count in incoming.items() if count == 0]
        order: list[str] = []
        while frontier:
            name = frontier.pop(0)
            order.append(name)
            for wire in self._wires:
                if wire.source == name:
                    incoming[wire.sink] -= 1
                    if incoming[wire.sink] == 0:
                        frontier.append(wire.sink)
        if len(order) != len(self._components):
            raise ValueError("circuit contains a cycle; feedback must close "
                             "outside the circuit")
        self._order = order
        return order

    def step(self, inputs: dict[str, float], dt: float) -> dict[str, float]:
        """Advance the whole circuit one sampling interval.

        ``inputs`` maps input-component names to their sample values;
        the return value maps output-component names to their outputs.
        """
        order = self._topological_order()
        values: dict[str, float] = {}
        input_names = set(self.inputs())
        for name in order:
            component = self._components[name]
            if name in input_names:
                if name not in inputs:
                    raise ValueError(f"missing input for circuit component {name!r}")
                incoming_value = inputs[name]
            else:
                source = next(w.source for w in self._wires if w.sink == name)
                incoming_value = values[source]
            values[name] = component.step(incoming_value, dt)
        return {name: values[name] for name in self.outputs()}

    def reset(self) -> None:
        """Reset every component's internal state."""
        for component in self._components.values():
            component.reset()

    def __contains__(self, name: str) -> bool:
        return name in self._components

    def __len__(self) -> int:
        return len(self._components)


__all__ = ["Circuit", "Wire"]
