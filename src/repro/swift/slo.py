"""SLO-driven second-level reservation control.

The paper's feedback loop converts *progress pressure* into
proportions: a thread that falls behind its symbiotic queue gets more
CPU.  Production systems are judged on a different error signal — the
tail of the sojourn-time distribution against a latency objective.
:class:`SLOController` closes that outer loop: it periodically
measures an exact-rank percentile (p99 by default) over a sliding
window of the most recent completed jobs of a
:class:`~repro.workloads.engine.JobStream`, compares it with the
objective, and actuates the *job class's* reservation by mutating the
shared :class:`~repro.core.taxonomy.ThreadSpec` the stream's template
registers every arrival with.

One mutation moves the whole class: the allocator re-reads the spec on
its next tick (live jobs are re-actuated to the new proportion) and
admission-on-arrival prices future jobs at the new size.  The control
law is deliberately asymmetric, like TCP's: **additive increase** of
the per-job reservation while the objective is violated (latency must
come down promptly), **multiplicative decrease** once the observed
tail sits comfortably below the objective (reclaim capacity slowly so
the tail does not bounce).  Raising the per-job reservation also
tightens admission — under overload the SLO is defended by shedding
arrivals rather than degrading admitted jobs, exactly the paper's
admission philosophy transplanted to a latency objective.

Determinism: the controller runs as a periodic entry in the kernel's
unified event calendar and computes only from virtual-time observables
(completion records), so a fixed seed yields a bit-identical dispatch
log on both kernel engines — the same contract every other churn
transition obeys.
"""

# float-order: exact — window percentile and AIMD math must stay
# bit-identical across engines and releases.

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.analysis.sojourn import exact_rank_percentile

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.taxonomy import ThreadSpec
    from repro.sim.kernel import Kernel
    from repro.workloads.engine import JobStream


@dataclass(frozen=True)
class SLOPolicy:
    """The latency objective and the gains used to chase it.

    ``target_us`` is the objective on the ``percentile``-th sojourn
    percentile.  While the observed percentile exceeds the target the
    per-job reservation grows by ``step_up_ppt`` per controller period
    (additive increase, clamped to ``max_ppt``); once it drops below
    ``headroom * target_us`` the reservation decays by ``decay``
    (multiplicative decrease, clamped to ``min_ppt``).  Between the
    two thresholds the controller holds — the dead band keeps a
    near-target tail from oscillating the allocation.  ``window`` is
    how many of the most recent completions the percentile is taken
    over.
    """

    target_us: float
    percentile: float = 99.0
    window: int = 64
    min_ppt: int = 10
    max_ppt: int = 400
    step_up_ppt: int = 10
    decay: float = 0.9
    headroom: float = 0.6

    def __post_init__(self) -> None:
        if self.target_us <= 0:
            raise ValueError(f"target_us must be positive, got {self.target_us}")
        if not 0 < self.percentile <= 100:
            raise ValueError(
                f"percentile must be in (0, 100], got {self.percentile}"
            )
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if not 0 < self.min_ppt <= self.max_ppt:
            raise ValueError(
                f"need 0 < min_ppt <= max_ppt, got {self.min_ppt}, {self.max_ppt}"
            )
        if self.step_up_ppt < 1:
            raise ValueError(f"step_up_ppt must be >= 1, got {self.step_up_ppt}")
        if not 0 < self.decay <= 1:
            raise ValueError(f"decay must be in (0, 1], got {self.decay}")
        if not 0 < self.headroom <= 1:
            raise ValueError(f"headroom must be in (0, 1], got {self.headroom}")


class SLOController:
    """Adjusts a job class's reservation from its observed tail latency.

    Parameters
    ----------
    kernel:
        The simulation kernel; the controller ticks as a periodic
        calendar event every ``period_us`` (default 50 ms — five of
        the paper controller's 10 ms periods, because a percentile
        over a completion window moves far slower than a queue fill
        level).
    stream:
        The :class:`~repro.workloads.engine.JobStream` whose completion
        records are the sensor.
    spec:
        The shared :class:`~repro.core.taxonomy.ThreadSpec` to actuate
        (normally ``template.spec``); it must specify a proportion.
    policy:
        The :class:`SLOPolicy` objective and gains.
    """

    def __init__(
        self,
        kernel: "Kernel",
        stream: "JobStream",
        spec: "ThreadSpec",
        policy: SLOPolicy,
        *,
        period_us: int = 50_000,
        start_us: int = 0,
        trace: bool = True,
    ) -> None:
        if spec.proportion_ppt is None:
            raise ValueError(
                "SLOController needs a spec with a proportion to actuate"
            )
        if period_us < 1:
            raise ValueError(f"period_us must be >= 1, got {period_us}")
        self.kernel = kernel
        self.stream = stream
        self.spec = spec
        self.policy = policy
        self.invocations = 0
        self.violations = 0
        #: (virtual time, observed percentile us, actuated ppt) per
        #: tick that changed the allocation.
        self.adjustments: list[tuple[int, float, int]] = []
        self._trace = trace
        self._ppt_series = kernel.tracer.series("slo:ppt") if trace else None
        self._tail_series = (
            kernel.tracer.series("slo:tail_us") if trace else None
        )
        self._periodic = kernel.add_periodic(
            period_us, self._tick, start_us=start_us, label="slo"
        )

    def stop(self) -> None:
        """Stop ticking (the last actuated reservation persists)."""
        self._periodic.stop()

    def observed_tail_us(self) -> Optional[float]:
        """The windowed percentile the next tick would act on.

        ``None`` until the stream has at least one completion.
        """
        window: list[int] = []
        needed = self.policy.window
        for record in reversed(self.stream.records):
            if record.outcome != "completed":
                continue
            window.append(record.sojourn_us)
            if len(window) >= needed:
                break
        if not window:
            return None
        window.sort()
        return float(exact_rank_percentile(window, self.policy.percentile))

    def _tick(self, now: int) -> None:
        self.invocations += 1
        observed = self.observed_tail_us()
        if observed is None:
            return
        policy = self.policy
        current = self.spec.proportion_ppt
        if observed > policy.target_us:
            self.violations += 1
            new_ppt = min(policy.max_ppt, current + policy.step_up_ppt)
        elif observed < policy.headroom * policy.target_us:
            new_ppt = max(policy.min_ppt, int(current * policy.decay))
        else:
            new_ppt = current
        if new_ppt != current:
            # The one actuation: every live job registered with this
            # spec is re-granted by the allocator's next tick, and
            # every future arrival is admitted (or rejected) at the
            # new price.
            self.spec.proportion_ppt = new_ppt
            self.adjustments.append((now, observed, new_ppt))
        if self._trace:
            self._ppt_series.append(now, float(new_ppt))
            self._tail_series.append(now, observed)


__all__ = ["SLOController", "SLOPolicy"]
