"""Feedback-circuit components.

Each component transforms one (or several) input samples into one
output sample per controller step.  Stateful components take the step
interval ``dt`` (seconds) so their behaviour is independent of the
controller's sampling rate — important because the paper varies the
controller frequency when discussing responsiveness and overhead.
"""

# float-order: exact — circuit outputs feed the golden-verified PID
# path; existing sum() folds are grandfathered in the lint baseline
# (python's sum is a defined left fold), but new reductions must keep
# the explicit order.

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from typing import Iterable, Optional


class Component(ABC):
    """A single feedback-circuit block."""

    @abstractmethod
    def step(self, value: float, dt: float) -> float:
        """Consume one input sample and produce one output sample."""

    def reset(self) -> None:
        """Clear any internal state (default: stateless, nothing to do)."""


class Gain(Component):
    """Multiply the input by a constant factor."""

    def __init__(self, k: float) -> None:
        self.k = float(k)

    def step(self, value: float, dt: float) -> float:
        return self.k * value


class SummingJunction:
    """Sum an arbitrary number of inputs (optionally with signs).

    Not a :class:`Component` because it takes multiple inputs; used at
    the head of the pressure circuit to combine per-queue pressures.
    """

    def __init__(self, signs: Optional[Iterable[float]] = None) -> None:
        self.signs = list(signs) if signs is not None else None

    def combine(self, values: Iterable[float]) -> float:
        """Return the (signed) sum of ``values``."""
        values = list(values)
        if self.signs is None:
            return float(sum(values))
        if len(values) != len(self.signs):
            raise ValueError(
                f"summing junction configured with {len(self.signs)} signs "
                f"but received {len(values)} inputs"
            )
        return float(sum(s * v for s, v in zip(self.signs, values)))


class Integrator(Component):
    """Discrete-time integrator with optional anti-windup clamping.

    Anti-windup matters here because the allocator's output saturates:
    a proportion cannot exceed the whole CPU, so during overload the
    integral would otherwise grow without bound and the controller
    would respond sluggishly when the overload clears.
    """

    def __init__(
        self,
        initial: float = 0.0,
        limit_low: Optional[float] = None,
        limit_high: Optional[float] = None,
    ) -> None:
        self._initial = float(initial)
        self.value = float(initial)
        self.limit_low = limit_low
        self.limit_high = limit_high

    def step(self, value: float, dt: float) -> float:
        self.value += value * dt
        if self.limit_high is not None and self.value > self.limit_high:
            self.value = self.limit_high
        if self.limit_low is not None and self.value < self.limit_low:
            self.value = self.limit_low
        return self.value

    def reset(self) -> None:
        self.value = self._initial


class Differentiator(Component):
    """First difference divided by the step interval."""

    def __init__(self) -> None:
        self._previous: Optional[float] = None

    def step(self, value: float, dt: float) -> float:
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        if self._previous is None:
            self._previous = value
            return 0.0
        derivative = (value - self._previous) / dt
        self._previous = value
        return derivative

    def reset(self) -> None:
        self._previous = None


class LowPassFilter(Component):
    """Single-pole IIR low-pass filter.

    The paper's discussion of sampling ("Using a suitable low-pass
    filter, we can schedule jobs with reasonable responsiveness and low
    overhead while keeping the sampling rate reasonably high") motivates
    smoothing noisy progress signals before they reach the control law.

    ``time_constant_s`` is the filter's RC constant; the per-step
    smoothing factor is derived from ``dt`` so changing the controller
    period does not change the filter's bandwidth.
    """

    def __init__(self, time_constant_s: float, initial: float = 0.0) -> None:
        if time_constant_s <= 0:
            raise ValueError(
                f"time constant must be positive, got {time_constant_s}"
            )
        self.time_constant_s = float(time_constant_s)
        self._initial = float(initial)
        self.value = float(initial)
        self._primed = False

    def step(self, value: float, dt: float) -> float:
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        if not self._primed:
            self.value = value
            self._primed = True
            return self.value
        alpha = dt / (self.time_constant_s + dt)
        self.value += alpha * (value - self.value)
        return self.value

    def reset(self) -> None:
        self.value = self._initial
        self._primed = False


class MovingAverage(Component):
    """Simple moving average over the last ``window`` samples.

    Used by the period-estimation heuristic, which averages fill-level
    oscillation "over the course of a period, averaged over several
    periods".
    """

    def __init__(self, window: int) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = int(window)
        self._samples: deque[float] = deque(maxlen=self.window)

    def step(self, value: float, dt: float) -> float:
        self._samples.append(value)
        return sum(self._samples) / len(self._samples)

    def reset(self) -> None:
        self._samples.clear()

    def __len__(self) -> int:
        return len(self._samples)


class Clamp(Component):
    """Limit the input to ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if low > high:
            raise ValueError(f"clamp range is empty: [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def step(self, value: float, dt: float) -> float:
        return min(self.high, max(self.low, value))


class DeadBand(Component):
    """Zero out inputs whose magnitude is below ``threshold``.

    Useful to stop the allocator from chasing tiny fill-level noise and
    re-actuating reservations every period for no benefit.
    """

    def __init__(self, threshold: float) -> None:
        if threshold < 0:
            raise ValueError(f"threshold cannot be negative, got {threshold}")
        self.threshold = float(threshold)

    def step(self, value: float, dt: float) -> float:
        return 0.0 if abs(value) < self.threshold else value


__all__ = [
    "Clamp",
    "Component",
    "DeadBand",
    "Differentiator",
    "Gain",
    "Integrator",
    "LowPassFilter",
    "MovingAverage",
    "SummingJunction",
]
