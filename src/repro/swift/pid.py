"""PID control.

"The individual progress pressures are then summed and passed to a
proportional-integral-derivative (PID) control to calculate a
cumulative pressure, Qt."  This module provides that G function of
Figure 3: given the summed instantaneous pressure, it produces the
cumulative pressure combining the proportional, integral and derivative
terms.

The integral term is what lets the allocation *persist* after the error
returns to zero: when the consumer has caught up and the queue sits at
its half-full set point, the proportional term vanishes but the
integrated history keeps the proportion at the level that matched the
producer's rate.
"""

# float-order: exact — the PID step is verified bit-for-bit against
# goldens; see docs/ARCHITECTURE.md on the float-order boundary.

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.swift.components import Differentiator, Integrator, LowPassFilter


@dataclass(frozen=True)
class PIDGains:
    """Gains for the three PID terms.

    The defaults are the ones used by the experiment reproductions;
    they were tuned (see ``benchmarks/test_bench_ablation_pid.py``) so
    that the pulse workload of Figure 6 settles in roughly a third of a
    second, matching the paper's reported response time, while staying
    well damped.
    """

    kp: float = 0.25
    ki: float = 0.8
    kd: float = 0.005

    def __post_init__(self) -> None:
        if self.kp < 0 or self.ki < 0 or self.kd < 0:
            raise ValueError(
                f"PID gains must be non-negative, got kp={self.kp}, "
                f"ki={self.ki}, kd={self.kd}"
            )


class PIDController:
    """Discrete PID controller with anti-windup and derivative filtering.

    Parameters
    ----------
    gains:
        The :class:`PIDGains` to apply.
    output_low, output_high:
        Saturation limits on the controller output.  The integral term
        is clamped so that the integral alone cannot exceed the output
        range (anti-windup).
    derivative_filter_s:
        Time constant of the low-pass filter applied to the derivative
        term; ``None`` disables filtering.
    """

    def __init__(
        self,
        gains: Optional[PIDGains] = None,
        *,
        output_low: Optional[float] = None,
        output_high: Optional[float] = None,
        derivative_filter_s: Optional[float] = 0.05,
    ) -> None:
        self.gains = gains if gains is not None else PIDGains()
        self.output_low = output_low
        self.output_high = output_high
        integral_low = None
        integral_high = None
        if self.gains.ki > 0:
            if output_low is not None:
                integral_low = output_low / self.gains.ki
            if output_high is not None:
                integral_high = output_high / self.gains.ki
        self._integrator = Integrator(
            limit_low=integral_low, limit_high=integral_high
        )
        self._differentiator = Differentiator()
        self._derivative_filter = (
            LowPassFilter(derivative_filter_s)
            if derivative_filter_s is not None
            else None
        )
        self.last_output = 0.0
        self.last_error = 0.0
        self.steps = 0

    def step(self, error: float, dt: float) -> float:
        """Advance one controller period with the given error sample.

        The three component updates are inlined (same arithmetic, same
        order as their ``step`` methods): one estimator steps its PID
        once per controlled thread per controller tick, so the call
        overhead of the component objects is measurable.  The objects
        themselves remain the state holders, keeping ``reset`` and
        ``preload_integral`` untouched.
        """
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        gains = self.gains
        proportional = gains.kp * error

        # Integrator.step: accumulate, then anti-windup clamp.
        integrator = self._integrator
        value = integrator.value + error * dt
        limit_high = integrator.limit_high
        if limit_high is not None and value > limit_high:
            value = limit_high
        limit_low = integrator.limit_low
        if limit_low is not None and value < limit_low:
            value = limit_low
        integrator.value = value
        integral = gains.ki * value

        # Differentiator.step: first difference over dt.
        differentiator = self._differentiator
        previous = differentiator._previous
        if previous is None:
            derivative_raw = 0.0
        else:
            derivative_raw = (error - previous) / dt
        differentiator._previous = error

        # LowPassFilter.step: single-pole IIR smoothing.
        lpf = self._derivative_filter
        if lpf is not None:
            if not lpf._primed:
                lpf.value = derivative_raw
                lpf._primed = True
            else:
                alpha = dt / (lpf.time_constant_s + dt)
                lpf.value += alpha * (derivative_raw - lpf.value)
            derivative_raw = lpf.value
        derivative = gains.kd * derivative_raw

        output = proportional + integral + derivative
        if self.output_high is not None and output > self.output_high:
            output = self.output_high
        if self.output_low is not None and output < self.output_low:
            output = self.output_low

        self.last_output = output
        self.last_error = error
        self.steps += 1
        return output

    @property
    def integral_value(self) -> float:
        """Current value of the (unscaled) integral accumulator."""
        return self._integrator.value

    def preload_integral(self, value: float) -> None:
        """Set the integral accumulator directly.

        Used when actuation is overridden externally (e.g. squishing
        during overload) so the controller's internal state tracks what
        was actually applied, avoiding a transient when the override
        ends.
        """
        self._integrator.value = value

    def reset(self) -> None:
        """Clear all internal state."""
        self._integrator.reset()
        self._differentiator.reset()
        if self._derivative_filter is not None:
            self._derivative_filter.reset()
        self.last_output = 0.0
        self.last_error = 0.0
        self.steps = 0


__all__ = ["PIDController", "PIDGains"]
