"""Golden-trace conformance corpus.

A *golden trace* pins the exact dispatch behaviour of a small but
churn-heavy scenario — arrivals, finite jobs, kills, re-pins, a rate
change — for **every scheduler policy x both kernel engines x 1 and 4
CPUs**.  The committed corpus (``tests/golden/churn_smoke.json``)
holds one fingerprint per combination; ``tests/test_golden.py`` re-runs
each combination and diffs the fresh fingerprint against the corpus,
so any change that moves a single dispatch-log entry anywhere in the
matrix fails loudly and reviewably.

Refreshing the corpus after an *intentional* behaviour change::

    python -m repro golden --regen     # rewrite the corpus
    python -m repro golden             # verify (CI does this too)

The scenario only uses integer virtual time and seeded ``random``
streams, so fingerprints are machine-independent for a given CPython
family; if a platform's libm ever rounds an exponential draw
differently, regenerate and commit.
"""

from __future__ import annotations

import json
from typing import Callable, Iterator, Optional

from repro._version import __version__
from repro.sched.base import Scheduler
from repro.sched.goodness import LinuxGoodnessScheduler
from repro.sched.lottery import LotteryScheduler
from repro.sched.priority import FixedPriorityScheduler
from repro.sched.rbs import ReservationScheduler
from repro.sched.round_robin import RoundRobinScheduler
from repro.sim.kernel import Kernel
from repro.workloads.arrivals import DeterministicArrivals, PoissonArrivals
from repro.workloads.engine import (
    JobTemplate,
    PhaseScript,
    WorkloadEngine,
    dispatch_fingerprint,
)

#: Version of the corpus file layout.
GOLDEN_SCHEMA_VERSION = 1

#: The scenario identifier stored in the corpus.
GOLDEN_SCENARIO = "churn_smoke"

#: Virtual duration of one golden run.
GOLDEN_DURATION_US = 150_000

#: Default corpus location (relative to the repository root).
DEFAULT_CORPUS_PATH = "tests/golden/churn_smoke.json"

#: The five dispatch policies covered by the corpus.
GOLDEN_SCHEDULERS: dict[str, Callable[[], Scheduler]] = {
    "rbs": ReservationScheduler,
    "round_robin": RoundRobinScheduler,
    "priority": FixedPriorityScheduler,
    "lottery": lambda: LotteryScheduler(seed=7),
    "goodness": LinuxGoodnessScheduler,
}

#: Kernel engines and CPU counts in the matrix.
GOLDEN_ENGINES = ("quantum", "horizon")
GOLDEN_CPU_COUNTS = (1, 4)


def build_golden(
    scheduler: str, engine: str, n_cpus: int
) -> tuple[Kernel, WorkloadEngine]:
    """Assemble (but do not run) one golden-scenario kernel.

    The scenario is deliberately churn-dense for its 150 ms: a Poisson
    stream of short think-y jobs, a deterministic stream of I/O-staged
    jobs with per-index pins and (under the reservation scheduler) a
    hard reservation, and a phase script that re-rates the Poisson
    stream, kills jobs mid-run, re-pins the I/O stream and retimes the
    short jobs' demand.  Thread parameters (priority, nice, tickets)
    are varied so every baseline policy has something to order by.
    """
    factory = GOLDEN_SCHEDULERS.get(scheduler)
    if factory is None:
        raise ValueError(
            f"unknown golden scheduler {scheduler!r}; "
            f"known: {sorted(GOLDEN_SCHEDULERS)}"
        )
    kernel = Kernel(factory(), n_cpus=n_cpus, record_dispatches=True,
                    engine=engine)
    churn = WorkloadEngine(kernel)
    short = JobTemplate(
        "short", total_cpu_us=3_000, burst_us=900, think_us=1_500,
        priority=2, nice=0, tickets=150,
    )
    staged = JobTemplate(
        "staged", total_cpu_us=4_000, burst_us=700, io_latency_us=2_000,
        priority=1, nice=5, tickets=60,
        reservation=(150, 10_000),
        pin=lambda index: index % n_cpus,
    )
    hogs = JobTemplate(
        # Long-lived on every CPU count, so the scripted kill below
        # always finds a live victim (pinning the kill path in every
        # corpus cell).
        "hog", total_cpu_us=60_000, burst_us=2_500,
        priority=1, nice=-3, tickets=40,
    )
    s_short = churn.add_stream("short", PoissonArrivals(180.0, seed=5), short)
    s_staged = churn.add_stream("staged", DeterministicArrivals(13_000), staged)
    s_hogs = churn.add_stream(
        "hog", DeterministicArrivals(27_000), hogs, max_arrivals=4
    )
    script = PhaseScript()
    script.set_rate(40_000, s_short.arrivals, 60.0)
    script.kill(60_000, s_short, count=2)
    script.repin(80_000, s_staged, n_cpus - 1)
    script.retime(100_000, short, total_cpu_us=1_500)
    script.kill(120_000, s_hogs, count=1)
    churn.start(script)
    return kernel, churn


def entry_key(scheduler: str, engine: str, n_cpus: int) -> str:
    """Corpus key for one matrix cell."""
    return f"{scheduler}/{engine}/cpu{n_cpus}"


def iter_matrix() -> Iterator[tuple[str, str, int]]:
    """All (scheduler, engine, n_cpus) combinations in corpus order."""
    for scheduler in GOLDEN_SCHEDULERS:
        for engine in GOLDEN_ENGINES:
            for n_cpus in GOLDEN_CPU_COUNTS:
                yield scheduler, engine, n_cpus


def run_golden(scheduler: str, engine: str, n_cpus: int) -> dict:
    """Run one matrix cell; returns its corpus entry."""
    kernel, churn = build_golden(scheduler, engine, n_cpus)
    kernel.run_for(GOLDEN_DURATION_US)
    return {
        "dispatch_sha256": dispatch_fingerprint(kernel),
        "dispatches": kernel.dispatch_count,
        "spawned": churn.spawned_total(),
        "completed": churn.completed_total(),
        "killed": churn.killed_total(),
    }


def compute_corpus() -> dict:
    """Run the full matrix and return the corpus structure."""
    return {
        "schema_version": GOLDEN_SCHEMA_VERSION,
        "kind": "golden_corpus",
        "scenario": GOLDEN_SCENARIO,
        "duration_us": GOLDEN_DURATION_US,
        "repro_version": __version__,
        "entries": {
            entry_key(*cell): run_golden(*cell) for cell in iter_matrix()
        },
    }


def load_corpus(path: str) -> dict:
    """Load and structurally validate a committed corpus file."""
    with open(path) as handle:
        corpus = json.load(handle)
    if corpus.get("kind") != "golden_corpus":
        raise ValueError(f"{path!r} is not a golden corpus")
    if corpus.get("schema_version") != GOLDEN_SCHEMA_VERSION:
        raise ValueError(
            f"{path!r} has schema version {corpus.get('schema_version')!r}, "
            f"expected {GOLDEN_SCHEMA_VERSION}"
        )
    return corpus


def write_corpus(path: str) -> dict:
    """Regenerate the corpus and write it to ``path``."""
    corpus = compute_corpus()
    with open(path, "w") as handle:
        json.dump(corpus, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return corpus


def verify_cell(
    corpus: dict, scheduler: str, engine: str, n_cpus: int
) -> Optional[str]:
    """Diff one fresh cell against the corpus; ``None`` when it conforms."""
    key = entry_key(scheduler, engine, n_cpus)
    expected = corpus.get("entries", {}).get(key)
    if expected is None:
        return f"{key}: missing from corpus (run `python -m repro golden --regen`)"
    fresh = run_golden(scheduler, engine, n_cpus)
    if fresh != expected:
        detail = ", ".join(
            f"{field}: {expected.get(field)!r} -> {fresh.get(field)!r}"
            for field in sorted(set(expected) | set(fresh))
            if expected.get(field) != fresh.get(field)
        )
        return f"{key}: diverged ({detail})"
    return None


def verify_corpus(corpus: dict) -> list[str]:
    """Re-run the whole matrix; returns mismatch messages (empty = ok)."""
    mismatches = []
    for cell in iter_matrix():
        message = verify_cell(corpus, *cell)
        if message is not None:
            mismatches.append(message)
    known = {entry_key(*cell) for cell in iter_matrix()}
    for key in sorted(set(corpus.get("entries", {})) - known):
        mismatches.append(f"{key}: corpus entry has no matching matrix cell")
    return mismatches


__all__ = [
    "DEFAULT_CORPUS_PATH",
    "GOLDEN_CPU_COUNTS",
    "GOLDEN_DURATION_US",
    "GOLDEN_ENGINES",
    "GOLDEN_SCENARIO",
    "GOLDEN_SCHEDULERS",
    "GOLDEN_SCHEMA_VERSION",
    "build_golden",
    "compute_corpus",
    "entry_key",
    "iter_matrix",
    "load_corpus",
    "run_golden",
    "verify_cell",
    "verify_corpus",
    "write_corpus",
]
