"""Golden-trace conformance corpus.

A *golden trace* pins the exact dispatch behaviour of a small but
eventful scenario for **every scheduler policy x both kernel engines x
1 and 4 CPUs**.  Each committed corpus file holds one fingerprint per
combination; ``tests/test_golden.py`` re-runs each combination and
diffs the fresh fingerprint against the corpus, so any change that
moves a single dispatch-log entry anywhere in the matrix fails loudly
and reviewably.

Two scenarios are pinned:

* ``churn_smoke`` (``tests/golden/churn_smoke.json``) — the open-system
  churn scenario: arrivals, finite jobs, kills, re-pins, a rate change.
* ``fault_smoke`` (``tests/golden/fault_smoke.json``) — a fault-dense
  scenario layered on the same churn machinery: a scheduled runaway
  hijack (quarantined by the watchdog under the reservation scheduler),
  a stall window, and — on the multi-CPU cells — a mid-run CPU failure
  with recovery, exercising drain/re-place and the graceful-degradation
  chain.

Refreshing the corpora after an *intentional* behaviour change::

    python -m repro golden --regen     # rewrite every corpus
    python -m repro golden             # verify all (CI does this too)

The scenarios only use integer virtual time and seeded ``random``
streams, so fingerprints are machine-independent for a given CPython
family; if a platform's libm ever rounds an exponential draw
differently, regenerate and commit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro._version import __version__
from repro.core.artifacts import write_atomic
from repro.faults import (
    CPU_FAIL,
    RUNAWAY_START,
    STALL_START,
    DegradationManager,
    FaultEvent,
    FaultInjector,
    FaultPlan,
)
from repro.monitor.watchdog import Watchdog
from repro.sched.base import Scheduler
from repro.sched.goodness import LinuxGoodnessScheduler
from repro.sched.placement import CacheWarmPlacement
from repro.sched.lottery import LotteryScheduler
from repro.sched.priority import FixedPriorityScheduler
from repro.sched.rbs import ReservationScheduler
from repro.sched.round_robin import RoundRobinScheduler
from repro.sim.kernel import Kernel
from repro.sim.topology import CpuTopology
from repro.workloads.arrivals import DeterministicArrivals, PoissonArrivals
from repro.workloads.engine import (
    JobTemplate,
    PhaseScript,
    WorkloadEngine,
    dispatch_fingerprint,
)

#: Version of the corpus file layout.
GOLDEN_SCHEMA_VERSION = 1

#: The default scenario identifier (the original single-scenario corpus).
GOLDEN_SCENARIO = "churn_smoke"

#: Virtual duration of one golden churn run.
GOLDEN_DURATION_US = 150_000

#: Virtual duration of one golden fault run.
GOLDEN_FAULT_DURATION_US = 150_000

#: Default corpus location (relative to the repository root).
DEFAULT_CORPUS_PATH = "tests/golden/churn_smoke.json"

#: Corpus location of the fault-dense scenario.
FAULT_CORPUS_PATH = "tests/golden/fault_smoke.json"

#: Corpus location of the topology-placement scenario.
TOPOLOGY_CORPUS_PATH = "tests/golden/topology_placement.json"

#: The five dispatch policies covered by the corpus.
GOLDEN_SCHEDULERS: dict[str, Callable[[], Scheduler]] = {
    "rbs": ReservationScheduler,
    "round_robin": RoundRobinScheduler,
    "priority": FixedPriorityScheduler,
    "lottery": lambda: LotteryScheduler(seed=7),
    "goodness": LinuxGoodnessScheduler,
}

#: Kernel engines and CPU counts in the matrix.
GOLDEN_ENGINES = ("quantum", "horizon")
GOLDEN_CPU_COUNTS = (1, 4)


def _scheduler_factory(scheduler: str) -> Callable[[], Scheduler]:
    factory = GOLDEN_SCHEDULERS.get(scheduler)
    if factory is None:
        raise ValueError(
            f"unknown golden scheduler {scheduler!r}; "
            f"known: {sorted(GOLDEN_SCHEDULERS)}"
        )
    return factory


def _attach_churn_recipe(kernel: Kernel, n_cpus: int) -> WorkloadEngine:
    """Attach the shared churn-smoke recipe to an assembled kernel.

    Used verbatim by ``churn_smoke`` and, on a topology-enabled kernel,
    by ``topology_placement`` — one recipe, so the two scenarios differ
    only in the kernel (and placement policy) under test.
    """
    churn = WorkloadEngine(kernel)
    short = JobTemplate(
        "short", total_cpu_us=3_000, burst_us=900, think_us=1_500,
        priority=2, nice=0, tickets=150,
    )
    staged = JobTemplate(
        "staged", total_cpu_us=4_000, burst_us=700, io_latency_us=2_000,
        priority=1, nice=5, tickets=60,
        reservation=(150, 10_000),
        pin=lambda index: index % n_cpus,
    )
    hogs = JobTemplate(
        # Long-lived on every CPU count, so the scripted kill below
        # always finds a live victim (pinning the kill path in every
        # corpus cell).
        "hog", total_cpu_us=60_000, burst_us=2_500,
        priority=1, nice=-3, tickets=40,
    )
    s_short = churn.add_stream("short", PoissonArrivals(180.0, seed=5), short)
    s_staged = churn.add_stream("staged", DeterministicArrivals(13_000), staged)
    s_hogs = churn.add_stream(
        "hog", DeterministicArrivals(27_000), hogs, max_arrivals=4
    )
    script = PhaseScript()
    script.set_rate(40_000, s_short.arrivals, 60.0)
    script.kill(60_000, s_short, count=2)
    script.repin(80_000, s_staged, n_cpus - 1)
    script.retime(100_000, short, total_cpu_us=1_500)
    script.kill(120_000, s_hogs, count=1)
    churn.start(script)
    return churn


def build_golden(
    scheduler: str, engine: str, n_cpus: int
) -> tuple[Kernel, WorkloadEngine]:
    """Assemble (but do not run) one golden churn-scenario kernel.

    The scenario is deliberately churn-dense for its 150 ms: a Poisson
    stream of short think-y jobs, a deterministic stream of I/O-staged
    jobs with per-index pins and (under the reservation scheduler) a
    hard reservation, and a phase script that re-rates the Poisson
    stream, kills jobs mid-run, re-pins the I/O stream and retimes the
    short jobs' demand.  Thread parameters (priority, nice, tickets)
    are varied so every baseline policy has something to order by.
    """
    factory = _scheduler_factory(scheduler)
    kernel = Kernel(factory(), n_cpus=n_cpus, record_dispatches=True,
                    engine=engine)
    return kernel, _attach_churn_recipe(kernel, n_cpus)


def build_topology_golden(
    scheduler: str, engine: str, n_cpus: int
) -> tuple[Kernel, WorkloadEngine]:
    """Assemble one golden cell of the topology-placement scenario.

    The identical churn recipe as ``churn_smoke``, but on a kernel
    built with a penalised :class:`CpuTopology` (``2x1x2`` — two
    sockets of one two-way-SMT core — on the 4-CPU cells, trivial
    ``1x1x1`` on the 1-CPU cells) and the cache-warm placement policy,
    pinning migration-penalty charging and topology-aware placement
    across every scheduler x engine x CPU-count combination.
    """
    factory = _scheduler_factory(scheduler)
    if n_cpus == 1:
        topology = CpuTopology.from_spec("1x1x1")
    else:
        topology = CpuTopology(
            sockets=2,
            cores_per_socket=n_cpus // 4 or 1,
            threads_per_core=2,
            smt_migration_us=25,
            core_migration_us=80,
            socket_migration_us=200,
        )
    sched_obj = factory()
    sched_obj.placement = CacheWarmPlacement(topology)
    kernel = Kernel(sched_obj, n_cpus=n_cpus, topology=topology,
                    record_dispatches=True, engine=engine)
    return kernel, _attach_churn_recipe(kernel, n_cpus)


def build_fault_golden(
    scheduler: str, engine: str, n_cpus: int
) -> tuple[Kernel, WorkloadEngine]:
    """Assemble (but do not run) one golden fault-scenario kernel.

    Open-system churn plus a scheduled :class:`FaultPlan`: a runaway
    hijack on a long-lived reserved job at 30 ms (restored at 70 ms), a
    stall window on a second reserved job at 85 ms, and — multi-CPU
    cells only, since the last CPU cannot fail — a CPU failure at 50 ms
    with recovery at 100 ms.  Under the reservation scheduler the
    4-CPU cells oversubscribe the post-failure capacity so the
    degradation chain (squish, then restore on recovery) actuates, and
    a fast watchdog quarantines and later re-promotes the runaway.  The
    baseline schedulers run the identical fault plan without the
    reservation-side machinery.
    """
    factory = _scheduler_factory(scheduler)
    kernel = Kernel(factory(), n_cpus=n_cpus, record_dispatches=True,
                    engine=engine)
    churn = WorkloadEngine(kernel)
    # Reservations sized so the 4-CPU cells exceed the 3-CPU budget
    # after the failure (4 x 900 + 150 = 3750 > 3000) while the 1-CPU
    # cells stay admissible (2 x 220 + 150 = 590 <= 1000).
    rt_ppt = 220 if n_cpus == 1 else 900
    rt_count = 2 if n_cpus == 1 else 4
    rt = JobTemplate(
        "rt", total_cpu_us=400_000, burst_us=800, think_us=1_200,
        priority=3, nice=-2, tickets=120,
        reservation=(rt_ppt, 10_000),
    )
    victim = JobTemplate(
        # Long-lived so the runaway hijack and the post-restore tail
        # both land on a live thread in every cell.
        "victim", total_cpu_us=400_000, burst_us=900, think_us=1_500,
        priority=2, nice=0, tickets=90,
        reservation=(150, 10_000),
    )
    filler = JobTemplate(
        # Top priority/nice so the strict-priority baselines still
        # complete fillers around the saturating long-lived jobs (the
        # fillers think between short bursts, so they never starve the
        # reserved threads either).
        "filler", total_cpu_us=2_500, burst_us=600, think_us=1_000,
        priority=4, nice=-4, tickets=50,
    )
    churn.add_stream(
        "rt", DeterministicArrivals(4_000), rt, max_arrivals=rt_count
    )
    churn.add_stream(
        "victim", DeterministicArrivals(6_000), victim, max_arrivals=1
    )
    churn.add_stream("filler", PoissonArrivals(120.0, seed=11), filler)
    churn.start()
    events = [
        FaultEvent(30_000, RUNAWAY_START, thread="victim.0",
                   duration_us=40_000),
        FaultEvent(85_000, STALL_START, thread="rt.0", duration_us=25_000),
    ]
    if n_cpus > 1:
        events.append(FaultEvent(50_000, CPU_FAIL, cpu=1, duration_us=50_000))
    injector = FaultInjector(kernel, FaultPlan(events=tuple(events), seed=97))
    injector.install()
    sched_obj = kernel.scheduler
    if isinstance(sched_obj, ReservationScheduler):
        DegradationManager(kernel, sched_obj)
        Watchdog(kernel, sched_obj, period_us=10_000, miss_windows=2,
                 stall_windows=3)
    return kernel, churn


@dataclass(frozen=True)
class GoldenScenario:
    """One pinned scenario: its builder, duration and corpus home."""

    name: str
    builder: Callable[[str, str, int], tuple[Kernel, WorkloadEngine]]
    duration_us: int
    corpus_path: str
    description: str


#: Every pinned scenario, in corpus order.
GOLDEN_SCENARIOS: dict[str, GoldenScenario] = {
    "churn_smoke": GoldenScenario(
        name="churn_smoke",
        builder=build_golden,
        duration_us=GOLDEN_DURATION_US,
        corpus_path=DEFAULT_CORPUS_PATH,
        description="open-system churn: arrivals, kills, re-pins, re-rates",
    ),
    "fault_smoke": GoldenScenario(
        name="fault_smoke",
        builder=build_fault_golden,
        duration_us=GOLDEN_FAULT_DURATION_US,
        corpus_path=FAULT_CORPUS_PATH,
        description=(
            "fault-dense churn: runaway quarantine, stall window, "
            "mid-run CPU failure and recovery"
        ),
    ),
    "topology_placement": GoldenScenario(
        name="topology_placement",
        builder=build_topology_golden,
        duration_us=GOLDEN_DURATION_US,
        corpus_path=TOPOLOGY_CORPUS_PATH,
        description=(
            "churn on a sockets/SMT topology kernel: migration "
            "penalties charged, cache-warm placement"
        ),
    ),
}


def scenario_spec(scenario: str) -> GoldenScenario:
    """Resolve a scenario name, raising ``ValueError`` when unknown."""
    spec = GOLDEN_SCENARIOS.get(scenario)
    if spec is None:
        raise ValueError(
            f"unknown golden scenario {scenario!r}; "
            f"known: {sorted(GOLDEN_SCENARIOS)}"
        )
    return spec


def entry_key(scheduler: str, engine: str, n_cpus: int) -> str:
    """Corpus key for one matrix cell."""
    return f"{scheduler}/{engine}/cpu{n_cpus}"


def iter_matrix() -> Iterator[tuple[str, str, int]]:
    """All (scheduler, engine, n_cpus) combinations in corpus order."""
    for scheduler in GOLDEN_SCHEDULERS:
        for engine in GOLDEN_ENGINES:
            for n_cpus in GOLDEN_CPU_COUNTS:
                yield scheduler, engine, n_cpus


def run_golden(
    scheduler: str, engine: str, n_cpus: int,
    scenario: str = GOLDEN_SCENARIO,
) -> dict:
    """Run one matrix cell of ``scenario``; returns its corpus entry."""
    spec = scenario_spec(scenario)
    kernel, churn = spec.builder(scheduler, engine, n_cpus)
    kernel.run_for(spec.duration_us)
    return {
        "dispatch_sha256": dispatch_fingerprint(kernel),
        "dispatches": kernel.dispatch_count,
        "spawned": churn.spawned_total(),
        "completed": churn.completed_total(),
        "killed": churn.killed_total(),
    }


def compute_corpus(scenario: str = GOLDEN_SCENARIO) -> dict:
    """Run the full matrix of ``scenario``; returns the corpus structure."""
    spec = scenario_spec(scenario)
    return {
        "schema_version": GOLDEN_SCHEMA_VERSION,
        "kind": "golden_corpus",
        "scenario": spec.name,
        "duration_us": spec.duration_us,
        "repro_version": __version__,
        "entries": {
            entry_key(*cell): run_golden(*cell, scenario=spec.name)
            for cell in iter_matrix()
        },
    }


def load_corpus(path: str) -> dict:
    """Load and structurally validate a committed corpus file."""
    with open(path) as handle:
        corpus = json.load(handle)
    if corpus.get("kind") != "golden_corpus":
        raise ValueError(f"{path!r} is not a golden corpus")
    if corpus.get("schema_version") != GOLDEN_SCHEMA_VERSION:
        raise ValueError(
            f"{path!r} has schema version {corpus.get('schema_version')!r}, "
            f"expected {GOLDEN_SCHEMA_VERSION}"
        )
    return corpus


def write_corpus(path: str, scenario: str = GOLDEN_SCENARIO) -> dict:
    """Regenerate the corpus of ``scenario`` and write it to ``path``."""
    corpus = compute_corpus(scenario)
    write_atomic(path, json.dumps(corpus, indent=2, sort_keys=True) + "\n")
    return corpus


def verify_cell(
    corpus: dict, scheduler: str, engine: str, n_cpus: int
) -> Optional[str]:
    """Diff one fresh cell against the corpus; ``None`` when it conforms."""
    scenario = corpus.get("scenario", GOLDEN_SCENARIO)
    key = entry_key(scheduler, engine, n_cpus)
    expected = corpus.get("entries", {}).get(key)
    if expected is None:
        return f"{key}: missing from corpus (run `python -m repro golden --regen`)"
    fresh = run_golden(scheduler, engine, n_cpus, scenario)
    if fresh != expected:
        detail = ", ".join(
            f"{field}: {expected.get(field)!r} -> {fresh.get(field)!r}"
            for field in sorted(set(expected) | set(fresh))
            if expected.get(field) != fresh.get(field)
        )
        return f"{key}: diverged ({detail})"
    return None


def verify_corpus(corpus: dict) -> list[str]:
    """Re-run the whole matrix; returns mismatch messages (empty = ok)."""
    scenario = corpus.get("scenario", GOLDEN_SCENARIO)
    if scenario not in GOLDEN_SCENARIOS:
        return [
            f"{scenario}: unknown golden scenario "
            f"(known: {sorted(GOLDEN_SCENARIOS)})"
        ]
    mismatches = []
    for cell in iter_matrix():
        message = verify_cell(corpus, *cell)
        if message is not None:
            mismatches.append(message)
    known = {entry_key(*cell) for cell in iter_matrix()}
    for key in sorted(set(corpus.get("entries", {})) - known):
        mismatches.append(f"{key}: corpus entry has no matching matrix cell")
    return mismatches


__all__ = [
    "DEFAULT_CORPUS_PATH",
    "FAULT_CORPUS_PATH",
    "GOLDEN_CPU_COUNTS",
    "GOLDEN_DURATION_US",
    "GOLDEN_ENGINES",
    "GOLDEN_FAULT_DURATION_US",
    "GOLDEN_SCENARIO",
    "GOLDEN_SCENARIOS",
    "GOLDEN_SCHEDULERS",
    "GOLDEN_SCHEMA_VERSION",
    "GoldenScenario",
    "TOPOLOGY_CORPUS_PATH",
    "build_fault_golden",
    "build_golden",
    "build_topology_golden",
    "compute_corpus",
    "entry_key",
    "iter_matrix",
    "load_corpus",
    "run_golden",
    "scenario_spec",
    "verify_cell",
    "verify_corpus",
    "write_corpus",
]
