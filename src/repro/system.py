"""Convenience assembly of a complete real-rate system.

Most experiments and examples need the same five objects wired together
the same way: a reservation scheduler, a kernel around it, a symbiotic
registry, a proportion allocator and a controller driver.
:func:`build_real_rate_system` performs that assembly and returns a
:class:`RealRateSystem` facade with helpers for registering threads and
channels, mirroring how a process on the paper's prototype would
register itself with the RBS scheduler and open shared queues.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.allocator import ProportionAllocator
from repro.core.config import ControllerConfig
from repro.core.driver import ControllerDriver, ControllerOverheadModel
from repro.core.overload import SquishPolicy
from repro.core.taxonomy import ThreadSpec
from repro.ipc.bounded_buffer import BoundedBuffer, Channel
from repro.ipc.registry import SymbioticRegistry
from repro.ipc.roles import Role
from repro.sched.rbs import ReservationScheduler
from repro.sim.cpu import CPUModel
from repro.sim.kernel import Kernel
from repro.sim.thread import SimThread, ThreadBody


@dataclass
class RealRateSystem:
    """A fully wired simulated system running the adaptive controller."""

    kernel: Kernel
    scheduler: ReservationScheduler
    registry: SymbioticRegistry
    allocator: ProportionAllocator
    driver: ControllerDriver

    # ------------------------------------------------------------------
    # application-facing helpers
    # ------------------------------------------------------------------
    def spawn_controlled(
        self,
        name: str,
        body: ThreadBody,
        spec: Optional[ThreadSpec] = None,
        **thread_kwargs,
    ) -> SimThread:
        """Create a thread, add it to the kernel and register it with
        the controller in one step."""
        thread = self.kernel.spawn(name, body, **thread_kwargs)
        self.allocator.register(thread, spec)
        return thread

    def open_queue(
        self,
        name: str,
        producer: SimThread,
        consumer: SimThread,
        capacity_bytes: int = 64 * 1024,
    ) -> BoundedBuffer:
        """Create a bounded buffer and register both endpoints' roles.

        This is the paper's shared-queue library: opening the queue
        performs the meta-interface linkage automatically.
        """
        queue = BoundedBuffer(name, capacity_bytes)
        self.registry.register_pair(producer, consumer, queue)
        return queue

    def link(self, thread: SimThread, channel: Channel, role: Role) -> None:
        """Register an existing channel endpoint (pipes, sockets, ttys)."""
        self.registry.register(thread, channel, role)

    def run_for(self, duration_us: int) -> None:
        """Advance the simulation by ``duration_us`` microseconds."""
        self.kernel.run_for(duration_us)

    @property
    def now(self) -> int:
        """Current virtual time in microseconds."""
        return self.kernel.now


def build_real_rate_system(
    config: Optional[ControllerConfig] = None,
    *,
    n_cpus: int = 1,
    cpu: Optional[CPUModel] = None,
    dispatch_interval_us: int = 1_000,
    charge_dispatch_overhead: bool = True,
    charge_controller_overhead: bool = True,
    overhead_model: Optional[ControllerOverheadModel] = None,
    squish_policy: Optional[SquishPolicy] = None,
    enforce_within_slice: bool = False,
    controller_start_us: int = 0,
    record_dispatches: bool = False,
    engine: str = "horizon",
) -> RealRateSystem:
    """Assemble a kernel + RBS scheduler + registry + controller.

    Parameters mirror the knobs the experiments vary; everything
    defaults to the paper's prototype configuration (1 ms dispatch
    interval, 10 ms controller period, overheads charged, one CPU).
    ``n_cpus`` builds the SMP variant: the kernel dispatches one thread
    per CPU per round and the controller budgets proportions against
    ``n_cpus * PROPORTION_SCALE`` of total capacity.  ``engine``
    selects the kernel's time-advancement engine (``"horizon"`` or the
    ``"quantum"`` differential-testing oracle).
    """
    config = config if config is not None else ControllerConfig()
    scheduler = ReservationScheduler(enforce_within_slice=enforce_within_slice)
    kernel = Kernel(
        scheduler,
        n_cpus=n_cpus,
        cpu=cpu,
        dispatch_interval_us=dispatch_interval_us,
        charge_dispatch_overhead=charge_dispatch_overhead,
        record_dispatches=record_dispatches,
        engine=engine,
    )
    registry = SymbioticRegistry()
    allocator = ProportionAllocator(
        scheduler, registry, config, squish_policy=squish_policy
    )
    driver = ControllerDriver(
        kernel,
        allocator,
        period_us=config.controller_period_us,
        overhead_model=overhead_model,
        charge_overhead=charge_controller_overhead,
        start_us=controller_start_us,
    )
    return RealRateSystem(
        kernel=kernel,
        scheduler=scheduler,
        registry=registry,
        allocator=allocator,
        driver=driver,
    )


__all__ = ["RealRateSystem", "build_real_rate_system"]
