"""Overload handling: admission control and squishing.

"When the sum of the desired [allocations] is greater than the amount
of available CPU, the controller must somehow reduce the allocations to
the threads."  Two mechanisms, as in the paper:

* **Admission control** for real-time reservations: a new request is
  rejected if it would push the real-time total over the admission
  threshold (:func:`check_admission`).
* **Squishing** for real-rate and miscellaneous threads: their proposed
  allocations are scaled down so that, together with the protected
  real-time reservations, the total fits under the overload threshold.
  :class:`FairShareSquish` scales each proposal proportionally to its
  size, which "results in equal allocation of the CPU to all competing
  jobs over time"; :class:`WeightedFairShareSquish` additionally weights
  each proposal by the thread's importance — a more important job gets
  a larger share of the shortfall absorbed by others, but (unlike a
  priority) it can never starve a less important job because every job
  keeps at least the minimum proportion.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.config import ControllerConfig
from repro.core.errors import AdmissionError


@dataclass
class SquishRequest:
    """One squishable thread's proposal entering the squish step."""

    key: int
    desired_ppt: int
    importance: float = 1.0

    def __post_init__(self) -> None:
        if self.desired_ppt < 0:
            raise ValueError(
                f"desired proportion cannot be negative, got {self.desired_ppt}"
            )
        if self.importance <= 0:
            raise ValueError(f"importance must be positive, got {self.importance}")


class SquishPolicy(ABC):
    """Strategy for distributing a limited budget over proposals."""

    def __init__(self, min_proportion_ppt: int = 1) -> None:
        if min_proportion_ppt < 0:
            raise ValueError(
                f"minimum proportion cannot be negative, got {min_proportion_ppt}"
            )
        self.min_proportion_ppt = min_proportion_ppt

    @abstractmethod
    def weights(self, requests: list[SquishRequest]) -> list[float]:
        """Relative weights used to share the available budget."""

    def squish(
        self, requests: list[SquishRequest], available_ppt: int
    ) -> dict[int, int]:
        """Scale the proposals down into ``available_ppt``.

        Returns a mapping from request key to granted proportion.  If
        the proposals already fit, they are returned unchanged.  Each
        grant is capped at its proposal (squishing never gives a thread
        more than it asked for) and floored at the minimum proportion
        (starvation freedom), even if the floor technically exceeds the
        budget — the overload threshold's reserve capacity absorbs that.
        """
        if not requests:
            return {}
        total_desired = sum(r.desired_ppt for r in requests)
        if total_desired <= available_ppt:
            return {r.key: r.desired_ppt for r in requests}

        available = max(0, available_ppt)
        grants: dict[int, int] = {}
        remaining = list(requests)
        # Iterative water-filling: grant proportionally to weight, cap at
        # the proposal, and redistribute leftover budget from capped
        # requests to the rest.
        while remaining and available > 0:
            weights = self.weights(remaining)
            total_weight = sum(weights)
            if total_weight <= 0:
                break
            capped: list[SquishRequest] = []
            next_round: list[SquishRequest] = []
            used = 0
            for request, weight in zip(remaining, weights):
                share = int(available * weight / total_weight)
                if share >= request.desired_ppt:
                    grants[request.key] = request.desired_ppt
                    used += request.desired_ppt
                    capped.append(request)
                else:
                    next_round.append(request)
            if not capped:
                # Nobody capped: hand out the proportional shares directly.
                for request, weight in zip(remaining, weights):
                    grants[request.key] = int(available * weight / total_weight)
                remaining = []
                available = 0
                break
            available -= used
            remaining = next_round
        for request in remaining:
            grants.setdefault(request.key, 0)
        # Starvation freedom: every thread keeps at least the minimum.
        for request in requests:
            floor = min(self.min_proportion_ppt, request.desired_ppt)
            if grants.get(request.key, 0) < floor:
                grants[request.key] = floor
        return grants


class FairShareSquish(SquishPolicy):
    """Scale every proposal by the same factor (plain fair share)."""

    def weights(self, requests: list[SquishRequest]) -> list[float]:
        return [float(r.desired_ppt) for r in requests]


class WeightedFairShareSquish(SquishPolicy):
    """Scale proposals by importance-weighted size (weighted fair share)."""

    def weights(self, requests: list[SquishRequest]) -> list[float]:
        return [float(r.desired_ppt) * r.importance for r in requests]


def check_admission(
    config: ControllerConfig,
    existing_real_time_ppt: int,
    requested_ppt: int,
    thread_name: str,
) -> None:
    """Admission control for a new real-time reservation (one CPU).

    Raises :class:`AdmissionError` if accepting the request would push
    the total of real-time reservations above the admission threshold.
    """
    available = config.admission_threshold_ppt - existing_real_time_ppt
    if requested_ppt > available:
        raise AdmissionError(
            requested_ppt=requested_ppt,
            available_ppt=max(0, available),
            thread_name=thread_name,
        )


def check_admission_smp(
    config: ControllerConfig,
    existing: Iterable[tuple[int, Optional[int]]],
    requested_ppt: int,
    requested_affinity: Optional[int],
    thread_name: str,
    *,
    n_cpus: int = 1,
) -> None:
    """Partitioned admission control for a multiprocessor.

    A sum test against ``n_cpus * threshold`` is not sufficient on an
    SMP: five unpinned 640 ppt reservations total 3200 ppt on four CPUs
    yet cannot be packed without some CPU exceeding its 1000 ppt
    capacity.  Admission therefore replays the placement policy's own
    greedy packing (heaviest first, pinned reservations on their CPU,
    unpinned on the least-loaded CPU) over the ``existing``
    reservations — ``(proportion_ppt, affinity-or-None)`` pairs — and
    admits the request only if it still fits under the per-CPU
    admission threshold on some (or, when pinned, its) CPU.  This is a
    sufficient test: the schedule it certifies is the one the
    least-loaded placement actually produces.  With ``n_cpus=1`` it
    reduces exactly to :func:`check_admission`.
    """
    bins = [0] * n_cpus
    items = sorted(existing, key=lambda item: -item[0])
    for ppt, affinity in items:
        if affinity is not None:
            cpu = min(affinity, n_cpus - 1)
        else:
            cpu = min(range(n_cpus), key=lambda c: (bins[c], c))
        bins[cpu] += ppt
    threshold = config.admission_threshold_ppt
    if requested_affinity is not None:
        available = threshold - bins[min(requested_affinity, n_cpus - 1)]
    else:
        available = threshold - min(bins)
    if requested_ppt > available:
        raise AdmissionError(
            requested_ppt=requested_ppt,
            available_ppt=max(0, available),
            thread_name=thread_name,
        )


__all__ = [
    "FairShareSquish",
    "SquishPolicy",
    "SquishRequest",
    "WeightedFairShareSquish",
    "check_admission",
    "check_admission_smp",
]
