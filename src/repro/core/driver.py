"""Driving the controller inside a simulated system.

The paper's controller is a user-level process scheduled alongside the
jobs it controls; Figure 5 measures its CPU overhead as a function of
the number of controlled processes and finds it linear
(``y = .00066 x + .00057`` at a 10 ms controller period).

:class:`ControllerDriver` attaches a :class:`ProportionAllocator` to a
:class:`~repro.sim.kernel.Kernel` as a periodic activity.  Each firing

1. runs one allocator update (and measures its real wall-clock cost so
   the linearity claim can also be checked against the actual Python
   implementation),
2. charges the modelled controller cost to the simulation as stolen CPU
   time (so experiments see the overhead the paper's users would see),
   and
3. records per-thread allocation traces in the kernel's tracer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.core.allocator import AllocationDecision, ProportionAllocator
from repro.sim.events import PeriodicEvent
from repro.sim.kernel import Kernel

#: Calibration of the modelled controller cost.  With a 10 ms controller
#: period these values reproduce the paper's measured overhead line:
#: 6.6 us per controlled process -> slope 0.00066, 5.7 us fixed ->
#: intercept 0.00057.
PAPER_PER_THREAD_COST_US = 6.6
PAPER_FIXED_COST_US = 5.7


@dataclass
class ControllerOverheadModel:
    """Linear model of the controller's per-invocation CPU cost.

    ``cost = fixed_us + per_thread_us * controlled_threads`` — linear in
    the number of controlled threads because each invocation must "read
    the progress metrics from the kernel, calculate new allocations,
    and send the new values to the in-kernel RBS" for every thread.
    """

    fixed_us: float = PAPER_FIXED_COST_US
    per_thread_us: float = PAPER_PER_THREAD_COST_US

    def __post_init__(self) -> None:
        if self.fixed_us < 0 or self.per_thread_us < 0:
            raise ValueError(
                "controller overhead costs cannot be negative, got "
                f"fixed={self.fixed_us}, per_thread={self.per_thread_us}"
            )

    def cost_us(self, controlled_threads: int) -> float:
        """Modelled CPU cost of one controller invocation."""
        if controlled_threads < 0:
            raise ValueError(
                f"thread count cannot be negative, got {controlled_threads}"
            )
        return self.fixed_us + self.per_thread_us * controlled_threads

    def overhead_fraction(self, controlled_threads: int, period_us: int) -> float:
        """Fraction of the CPU the controller consumes at a given period."""
        if period_us <= 0:
            raise ValueError(f"period must be positive, got {period_us}")
        return self.cost_us(controlled_threads) / period_us


class ControllerDriver:
    """Runs a :class:`ProportionAllocator` periodically inside a kernel."""

    def __init__(
        self,
        kernel: Kernel,
        allocator: ProportionAllocator,
        *,
        period_us: Optional[int] = None,
        overhead_model: Optional[ControllerOverheadModel] = None,
        charge_overhead: bool = True,
        trace_allocations: bool = True,
        start_us: int = 0,
    ) -> None:
        self.kernel = kernel
        self.allocator = allocator
        self.period_us = (
            period_us
            if period_us is not None
            else allocator.config.controller_period_us
        )
        self.overhead_model = (
            overhead_model if overhead_model is not None else ControllerOverheadModel()
        )
        self.charge_overhead = charge_overhead
        self.trace_allocations = trace_allocations

        self.invocations = 0
        self.modeled_cost_us_total = 0.0
        self.measured_wall_ns_total = 0
        self.last_decisions: list[AllocationDecision] = []
        self._overhead_remainder = 0.0
        #: tid -> [alloc series, pressure series or None, pressure
        #: label]; resolves the label f-strings and the tracer's name
        #: lookup once per thread instead of twice per tick.
        self._trace_series: dict[int, list] = {}
        #: Cached "alloc:total" series, created on first use so a
        #: driver that never ticks leaves no empty series behind.
        self._total_series = None
        # The tick is a periodic entry in the kernel's unified event
        # calendar, so the run-to-horizon engine sees the next sample
        # as an ordinary transition instead of being polled for it.
        self._periodic: PeriodicEvent = kernel.add_periodic(
            self.period_us, self._tick, start_us=start_us, label="controller"
        )

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Stop running the controller (existing reservations persist)."""
        self._periodic.stop()

    def _tick(self, now: int) -> None:
        # repro-lint: disable=determinism -- diagnostic wall timing only; charged cost comes from the deterministic overhead_model
        wall_start = time.perf_counter_ns()
        decisions = self.allocator.update(now)
        wall_elapsed = time.perf_counter_ns() - wall_start  # repro-lint: disable=determinism -- same diagnostic-only measurement as above

        self.invocations += 1
        self.measured_wall_ns_total += wall_elapsed
        self.last_decisions = decisions

        cost = self.overhead_model.cost_us(len(decisions))
        self.modeled_cost_us_total += cost
        if self.charge_overhead:
            self._overhead_remainder += cost
            whole = int(self._overhead_remainder)
            if whole > 0:
                self._overhead_remainder -= whole
                self.kernel.steal_cpu(whole, reason="controller")

        if self.trace_allocations:
            tracer = self.kernel.tracer
            cache = self._trace_series
            total_granted = 0
            for decision in decisions:
                thread = decision.thread
                entry = cache.get(thread.tid)
                if entry is None:
                    # The pressure series stays uncreated until the
                    # first real sample, exactly as when it was created
                    # through Tracer.record — threads that never report
                    # a pressure must not leave an empty series behind.
                    entry = cache[thread.tid] = [
                        tracer.series(f"alloc:{thread.name}"),
                        None,
                        f"pressure:{thread.name}",
                    ]
                granted = decision.granted_ppt
                total_granted += granted
                entry[0].append(now, granted)
                if decision.cumulative_pressure is not None:
                    pressure_series = entry[1]
                    if pressure_series is None:
                        pressure_series = entry[1] = tracer.series(entry[2])
                    pressure_series.append(now, decision.cumulative_pressure)
            # Aggregate grant, for eyeballing total load against the
            # kernel's capacity of n_cpus * PROPORTION_SCALE.
            total_series = self._total_series
            if total_series is None:
                total_series = self._total_series = tracer.series("alloc:total")
            total_series.append(now, total_granted)

    # ------------------------------------------------------------------
    # overhead reporting (Figure 5)
    # ------------------------------------------------------------------
    def modeled_overhead_fraction(self) -> float:
        """Modelled controller CPU as a fraction of elapsed virtual time."""
        if self.kernel.now <= 0:
            return 0.0
        return self.modeled_cost_us_total / self.kernel.now

    def measured_wall_us_per_invocation(self) -> float:
        """Mean measured wall-clock cost of one allocator update (us)."""
        if self.invocations == 0:
            return 0.0
        return self.measured_wall_ns_total / self.invocations / 1_000.0


__all__ = [
    "ControllerDriver",
    "ControllerOverheadModel",
    "PAPER_FIXED_COST_US",
    "PAPER_PER_THREAD_COST_US",
]
