"""The feedback-driven proportion allocator (the paper's contribution).

This package implements the adaptive controller of Section 3.3:

* :class:`~repro.core.taxonomy.ThreadClass` /
  :class:`~repro.core.taxonomy.ThreadSpec` — the four-way taxonomy of
  Figure 2 (real-time, aperiodic real-time, real-rate, miscellaneous)
  and what an application declares about each thread;
* :class:`~repro.core.estimator.ProportionEstimator` — the proportion
  estimation law of Figure 4 (PID over progress pressure, plus the
  unused-allocation reclaim rule);
* :class:`~repro.core.period.PeriodEstimator` — the period-adaptation
  heuristic (disabled in the paper's experiments, available here for
  the ablation study);
* :mod:`~repro.core.overload` — admission control for real-time
  reservations and the proportional / weighted-fair-share squishing
  applied to real-rate and miscellaneous threads under overload;
* :class:`~repro.core.allocator.ProportionAllocator` — the controller
  that ties monitors, estimators and the reservation scheduler
  together;
* :class:`~repro.core.driver.ControllerDriver` — runs the allocator
  periodically inside a simulation, models its CPU overhead (Figure 5)
  and records allocation traces.
"""

from repro.core.allocator import AllocationDecision, ProportionAllocator
from repro.core.artifacts import DurableAppender, append_durable, write_atomic
from repro.core.config import ControllerConfig
from repro.core.driver import ControllerDriver, ControllerOverheadModel
from repro.core.errors import AdmissionError, ControllerError, QualityException
from repro.core.estimator import EstimateResult, ProportionEstimator
from repro.core.overload import (
    FairShareSquish,
    SquishPolicy,
    SquishRequest,
    WeightedFairShareSquish,
)
from repro.core.period import PeriodEstimator
from repro.core.taxonomy import ThreadClass, ThreadSpec, classify

__all__ = [
    "AdmissionError",
    "AllocationDecision",
    "ControllerConfig",
    "ControllerDriver",
    "ControllerError",
    "ControllerOverheadModel",
    "DurableAppender",
    "EstimateResult",
    "FairShareSquish",
    "PeriodEstimator",
    "ProportionAllocator",
    "ProportionEstimator",
    "QualityException",
    "SquishPolicy",
    "SquishRequest",
    "ThreadClass",
    "ThreadSpec",
    "WeightedFairShareSquish",
    "append_durable",
    "classify",
    "write_atomic",
]
