"""Period estimation heuristic.

For real-rate threads with no specified period, "the controller must
also determine the period.  Currently, we use a simple heuristic which
increases the period to reduce quantization error when the proportion
is small, since the dispatcher can only allocate multiples of the
dispatch interval.  The controller decreases the period to reduce
jitter, which we detect via large oscillations relative to the buffer
size."

The paper *disables* this heuristic in all reported experiments, and so
do our figure reproductions; the ablation benchmark
``benchmarks/test_bench_ablation_period.py`` exercises it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import ControllerConfig
from repro.swift.components import MovingAverage


@dataclass(frozen=True)
class PeriodDecision:
    """Outcome of one period-estimation step."""

    period_us: int
    grew_for_quantization: bool
    shrank_for_jitter: bool


class PeriodEstimator:
    """Per-thread period adaptation.

    Parameters
    ----------
    config:
        Controller configuration (bounds, factors, thresholds).
    dispatch_interval_us:
        The dispatcher's quantum, needed to judge quantisation error.
    initial_period_us:
        Starting period (the controller default unless specified).
    """

    def __init__(
        self,
        config: ControllerConfig,
        dispatch_interval_us: int,
        initial_period_us: Optional[int] = None,
    ) -> None:
        self.config = config
        self.dispatch_interval_us = dispatch_interval_us
        self.period_us = initial_period_us or config.default_period_us
        self._last_fill: Optional[float] = None
        self._oscillation = MovingAverage(config.oscillation_window)
        self.adjustments = 0

    def observe_fill(self, fill_level: float) -> float:
        """Record a fill-level sample; returns the smoothed swing estimate.

        The heuristic "determines the magnitude of oscillation by
        monitoring the amount of change in fill-level over the course
        of a period, averaged over several periods"; we approximate the
        per-period change with the change between controller samples.
        """
        if self._last_fill is None:
            self._last_fill = fill_level
            return 0.0
        swing = abs(fill_level - self._last_fill)
        self._last_fill = fill_level
        return self._oscillation.step(swing, 0.0)

    def update(self, proportion_ppt: int, fill_level: Optional[float]) -> PeriodDecision:
        """Adapt the period given the current proportion and fill level."""
        config = self.config
        swing = self.observe_fill(fill_level) if fill_level is not None else 0.0

        allocation_us = self.period_us * proportion_ppt // 1000
        quantization_limited = (
            allocation_us < config.quantization_quanta * self.dispatch_interval_us
        )
        jitter_limited = swing > config.oscillation_threshold

        grew = False
        shrank = False
        if jitter_limited and self.period_us > config.period_min_us:
            # Jitter wins over quantisation: a shorter period bounds how
            # far the queue can drift between allocations.
            self.period_us = max(
                config.period_min_us,
                int(self.period_us * config.period_shrink_factor),
            )
            shrank = True
            self.adjustments += 1
        elif quantization_limited and self.period_us < config.period_max_us:
            self.period_us = min(
                config.period_max_us,
                int(self.period_us * config.period_grow_factor),
            )
            grew = True
            self.adjustments += 1
        return PeriodDecision(
            period_us=self.period_us,
            grew_for_quantization=grew,
            shrank_for_jitter=shrank,
        )


__all__ = ["PeriodDecision", "PeriodEstimator"]
