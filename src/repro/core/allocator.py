"""The adaptive controller (Figure 1's "Controller" box).

:class:`ProportionAllocator` closes the feedback loop:

1. **Monitor progress** — for every controlled thread it samples the
   symbiotic registry (queue fill levels and roles) or falls back to
   the miscellaneous constant-pressure heuristic.
2. **Estimate** — the per-thread :class:`ProportionEstimator` turns the
   pressure and last-interval CPU usage into a desired proportion
   (Figure 4); real-time and aperiodic real-time threads skip this and
   use their specified proportion.
3. **Resolve overload** — desired allocations are summed; if they
   exceed the overload threshold, real-rate and miscellaneous proposals
   are squished (fair share or weighted fair share), and quality
   exceptions are raised for threads whose queues have saturated.
4. **Actuate** — the resulting (proportion, period) pairs are written
   into the reservation scheduler.

The allocator is deliberately independent of the simulation kernel: it
only needs a scheduler that accepts reservations, a registry to read
fill levels from, and a clock value passed into :meth:`update`.  The
:class:`~repro.core.driver.ControllerDriver` wires it to a simulated
system and models its own CPU cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.core.config import PROPORTION_SCALE, ControllerConfig
from repro.core.errors import AdmissionError, ControllerError, QualityException
from repro.core.estimator import ProportionEstimator
from repro.core.overload import (
    SquishPolicy,
    SquishRequest,
    WeightedFairShareSquish,
    check_admission_smp,
)
from repro.core.period import PeriodEstimator
from repro.core.taxonomy import ThreadClass, ThreadSpec, classify
from repro.ipc.registry import SymbioticRegistry
from repro.monitor.progress import ConstantPressureSource, ProgressSampler
from repro.monitor.usage import UsageMonitor
from repro.sched.rbs import ReservationScheduler
from repro.sim.thread import SimThread, ThreadState


@dataclass
class AllocationDecision:
    """What the controller decided for one thread in one period."""

    thread: SimThread
    thread_class: ThreadClass
    pressure_raw: Optional[float]
    cumulative_pressure: Optional[float]
    desired_ppt: int
    granted_ppt: int
    period_us: int
    squished: bool = False
    reclaimed: bool = False
    #: Saturation direction noted during the decision ("full"/"empty"),
    #: consumed by the quality-exception check during overload.
    _saturation: Optional[str] = field(default=None, repr=False, compare=False)

    @property
    def granted_fraction(self) -> float:
        """Granted proportion as a fraction of the CPU."""
        return self.granted_ppt / PROPORTION_SCALE


@dataclass
class _ControlledThread:
    """Internal per-thread controller state."""

    thread: SimThread
    spec: ThreadSpec
    estimator: ProportionEstimator
    sampler: ProgressSampler
    period_estimator: Optional[PeriodEstimator] = None
    current_ppt: int = 0
    current_period_us: int = 0
    last_class: Optional[ThreadClass] = None


class ProportionAllocator:
    """Feedback-driven assignment of proportion and period.

    Parameters
    ----------
    scheduler:
        The reservation scheduler to actuate.
    registry:
        The symbiotic-interface registry to read progress from.
    config:
        Controller tunables.
    squish_policy:
        Overload policy; defaults to weighted fair share (which equals
        plain fair share when all importances are 1, the paper's base
        policy).
    """

    def __init__(
        self,
        scheduler: ReservationScheduler,
        registry: SymbioticRegistry,
        config: Optional[ControllerConfig] = None,
        squish_policy: Optional[SquishPolicy] = None,
    ) -> None:
        self.scheduler = scheduler
        self.registry = registry
        self.config = config if config is not None else ControllerConfig()
        self.squish_policy = (
            squish_policy
            if squish_policy is not None
            else WeightedFairShareSquish(self.config.min_proportion_ppt)
        )
        self.usage_monitor = UsageMonitor()
        self.misc_pressure_source = ConstantPressureSource(self.config.misc_pressure)
        self.quality_exceptions: list[QualityException] = []
        self.updates = 0
        self._controlled: dict[int, _ControlledThread] = {}

    @property
    def capacity_cpus(self) -> int:
        """CPU count the controller budgets against (scheduler's kernel)."""
        return self.scheduler.n_cpus

    # ------------------------------------------------------------------
    # registration (what the paper's jobs do explicitly)
    # ------------------------------------------------------------------
    def register(self, thread: SimThread, spec: Optional[ThreadSpec] = None) -> None:
        """Place ``thread`` under control of the allocator.

        Real-time specs (proportion and period both given) go through
        admission control and are actuated immediately, because a
        reservation must hold from the moment it is accepted, not from
        the next controller tick.  On a multiprocessor admission is a
        partitioned-schedulability test (:func:`check_admission_smp`):
        the placement policy's greedy packing of all live real-time
        reservations — pinned ones on their CPU — must still fit the
        request under some CPU's admission threshold.
        """
        if thread.tid in self._controlled:
            raise ControllerError(f"thread {thread.name!r} is already controlled")
        spec = spec if spec is not None else ThreadSpec()
        if spec.specifies_proportion:
            check_admission_smp(
                self.config,
                self._real_time_reservations(),
                spec.proportion_ppt,
                thread.affinity,
                thread.name,
                n_cpus=self.capacity_cpus,
            )
        state = _ControlledThread(
            thread=thread,
            spec=spec,
            estimator=ProportionEstimator(self.config),
            sampler=ProgressSampler(
                thread, self.registry, setpoint=self.config.setpoint_fill
            ),
        )
        if self.config.adapt_period:
            state.period_estimator = PeriodEstimator(
                self.config,
                self.scheduler.dispatch_interval_us,
                initial_period_us=spec.period_us,
            )
        self._controlled[thread.tid] = state
        if spec.specifies_proportion:
            period = spec.period_us or self.config.default_period_us
            self._actuate(state, spec.proportion_ppt, period)

    def unregister(self, thread: SimThread) -> None:
        """Remove ``thread`` from control (its reservation is cleared)."""
        state = self._controlled.pop(thread.tid, None)
        if state is None:
            return
        self.usage_monitor.forget(thread)
        if thread.state.is_live:
            self.scheduler.clear_reservation(thread)

    def controlled_threads(self) -> list[SimThread]:
        """All threads currently under control."""
        return [state.thread for state in self._controlled.values()]

    def decision_count(self) -> int:
        """Number of threads the next update will decide for."""
        return len(self._controlled)

    def spec_for(self, thread: SimThread) -> ThreadSpec:
        """The spec a thread registered with."""
        state = self._controlled.get(thread.tid)
        if state is None:
            raise ControllerError(f"thread {thread.name!r} is not controlled")
        return state.spec

    def _real_time_reservations(self) -> list[tuple[int, Optional[int]]]:
        """Live real-time reservations as (proportion, affinity) pairs."""
        return [
            (state.spec.proportion_ppt, state.thread.affinity)
            for state in self._controlled.values()
            if state.spec.specifies_proportion and state.thread.state.is_live
        ]

    # ------------------------------------------------------------------
    # the controller period
    # ------------------------------------------------------------------
    def update(self, now: int) -> list[AllocationDecision]:
        """Run one controller period at virtual time ``now``.

        Returns the decisions made, in registration order, after
        actuating them on the scheduler.
        """
        dt = self.config.controller_period_s
        self.updates += 1
        self._drop_exited()

        decisions = [
            self._decide(state, now, dt) for state in self._controlled.values()
        ]

        self._resolve_overload(decisions, now)

        for decision in decisions:
            state = self._controlled[decision.thread.tid]
            self._actuate(state, decision.granted_ppt, decision.period_us, now=now)
        return decisions

    # ------------------------------------------------------------------
    # per-thread decision
    # ------------------------------------------------------------------
    def _decide(
        self, state: _ControlledThread, now: int, dt: float
    ) -> AllocationDecision:
        spec = state.spec
        thread = state.thread
        has_metric = self.registry.has_progress_metric(thread)
        thread_class = classify(spec, has_metric)
        state.last_class = thread_class

        if thread_class is ThreadClass.REAL_TIME:
            # Keep the reservation exactly as specified; usage is still
            # sampled so the monitor's bookkeeping stays continuous.
            self.usage_monitor.sample(thread, now, state.current_ppt)
            return AllocationDecision(
                thread=thread,
                thread_class=thread_class,
                pressure_raw=None,
                cumulative_pressure=None,
                desired_ppt=spec.proportion_ppt,
                granted_ppt=spec.proportion_ppt,
                period_us=spec.period_us,
            )

        if thread_class is ThreadClass.APERIODIC_REAL_TIME:
            self.usage_monitor.sample(thread, now, state.current_ppt)
            period = self._period_for(state, thread_class, fill_level=None)
            return AllocationDecision(
                thread=thread,
                thread_class=thread_class,
                pressure_raw=None,
                cumulative_pressure=None,
                desired_ppt=spec.proportion_ppt,
                granted_ppt=spec.proportion_ppt,
                period_us=period,
            )

        # Real-rate and miscellaneous threads go through the estimator.
        if thread_class is ThreadClass.REAL_RATE:
            sample = state.sampler.sample()
            pressure_raw = sample.raw if sample is not None else 0.0
            fill_level = self._representative_fill(state)
        else:
            sample = self.misc_pressure_source.sample()
            pressure_raw = sample.raw
            fill_level = None

        current_ppt = state.current_ppt
        usage = self.usage_monitor.sample(thread, now, current_ppt)
        estimate = state.estimator.estimate(pressure_raw, usage, current_ppt, dt)
        period = self._period_for(state, thread_class, fill_level)
        desired_ppt = estimate.desired_ppt
        if spec.interactive:
            # Interactive jobs: "assigning them a small period and
            # estimating their proportion by measuring the amount of
            # time they typically run before blocking".  Their input
            # queues are empty almost all the time, so the fill-level
            # feedback alone would park them at the floor; the
            # run-before-block heuristic reserves enough to serve one
            # typical burst within each (small) period.
            burst_us = self.usage_monitor.run_before_block_us(thread)
            if burst_us > 0:
                heuristic_ppt = int(
                    round(1.5 * burst_us * PROPORTION_SCALE / period)
                )
                heuristic_ppt = min(self.config.max_proportion_ppt, heuristic_ppt)
                desired_ppt = max(desired_ppt, heuristic_ppt)
        decision = AllocationDecision(
            thread=thread,
            thread_class=thread_class,
            pressure_raw=pressure_raw,
            cumulative_pressure=estimate.cumulative_pressure,
            desired_ppt=desired_ppt,
            granted_ppt=desired_ppt,
            period_us=period,
            reclaimed=estimate.reclaimed,
        )
        # A quality exception is only warranted when a queue saturated in
        # the direction that means this thread is falling behind (signed
        # pressure at its maximum): a consumer's queue completely full,
        # or a producer's queue completely empty.
        if sample is not None and sample.per_channel:
            behind = max(sample.per_channel.values())
            if behind >= 0.45 and (sample.saturated_full or sample.saturated_empty):
                saturation = "full" if sample.saturated_full else "empty"
                decision._saturation = saturation
        return decision

    def _representative_fill(self, state: _ControlledThread) -> Optional[float]:
        linkages = state.sampler.linkages()
        if not linkages:
            return None
        # Average across the thread's queues; a single-queue thread (the
        # common case) just reports that queue's fill level.
        return sum(l.channel.fill_level() for l in linkages) / len(linkages)

    def _period_for(
        self,
        state: _ControlledThread,
        thread_class: ThreadClass,
        fill_level: Optional[float],
    ) -> int:
        spec = state.spec
        if spec.interactive:
            return self.config.interactive_period_us
        if spec.specifies_period:
            return spec.period_us
        if state.period_estimator is not None and thread_class is ThreadClass.REAL_RATE:
            proportion = state.current_ppt or self.config.min_proportion_ppt
            return state.period_estimator.update(proportion, fill_level).period_us
        return self.config.default_period_us

    # ------------------------------------------------------------------
    # overload resolution
    # ------------------------------------------------------------------
    def _resolve_overload(
        self, decisions: list[AllocationDecision], now: int
    ) -> None:
        """Fit the proposed allocations under the overload threshold.

        Real-time (and aperiodic real-time) reservations are protected.
        The remaining capacity is handed out in two tiers, which is what
        produces the Figure 7 behaviour where the CPU hog "effectively
        loses allocation to the consumer":

        1. real-rate threads — whose desired allocation reflects a
           *measured* need — are satisfied first, squished
           proportionally among themselves only if they alone exceed
           the available capacity;
        2. miscellaneous threads — whose constant pseudo-pressure just
           says "give me whatever is spare" — share the residual via
           the (weighted) fair-share squish policy, never dropping
           below the minimum proportion (starvation freedom).
        """
        total_desired = sum(d.desired_ppt for d in decisions)
        threshold = self.config.overload_threshold_total_ppt(self.capacity_cpus)
        if total_desired <= threshold:
            return

        # Single pass over the decisions (this runs on every tick while
        # the system is overloaded).  Squishable == real-rate or
        # miscellaneous, so the three buckets partition the classes.
        protected = 0
        real_rate: list[AllocationDecision] = []
        misc: list[AllocationDecision] = []
        real_rate_total = 0
        for d in decisions:
            thread_class = d.thread_class
            if thread_class is ThreadClass.REAL_RATE:
                real_rate.append(d)
                real_rate_total += d.desired_ppt
            elif thread_class is ThreadClass.MISCELLANEOUS:
                misc.append(d)
            else:
                protected += d.desired_ppt
        available = max(0, threshold - protected)
        if real_rate_total > available:
            self._apply_squish(real_rate, available, now)
            misc_available = 0
        else:
            misc_available = available - real_rate_total
        self._apply_squish(misc, misc_available, now)

    def _apply_squish(
        self,
        decisions: list[AllocationDecision],
        available_ppt: int,
        now: int,
    ) -> None:
        if not decisions:
            return
        requests = [
            SquishRequest(
                key=d.thread.tid,
                desired_ppt=d.desired_ppt,
                importance=self._controlled[d.thread.tid].spec.importance,
            )
            for d in decisions
        ]
        grants = self.squish_policy.squish(requests, max(0, available_ppt))
        for decision in decisions:
            granted = grants.get(decision.thread.tid, decision.desired_ppt)
            if granted < decision.desired_ppt:
                decision.granted_ppt = max(self.config.min_proportion_ppt, granted)
                decision.squished = True
                self._maybe_quality_exception(decision, now)

    def _maybe_quality_exception(self, decision: AllocationDecision, now: int) -> None:
        saturation = decision._saturation
        if saturation is None:
            return
        exception = QualityException(
            time_us=now,
            thread=decision.thread,
            reason=f"queue {saturation} while overloaded",
            desired_ppt=decision.desired_ppt,
            granted_ppt=decision.granted_ppt,
        )
        self.quality_exceptions.append(exception)
        callback = self._controlled[decision.thread.tid].spec.quality_callback
        if callback is not None:
            callback(exception)

    # ------------------------------------------------------------------
    # actuation
    # ------------------------------------------------------------------
    def _actuate(
        self,
        state: _ControlledThread,
        proportion_ppt: int,
        period_us: int,
        now: Optional[int] = None,
    ) -> None:
        self.scheduler.set_reservation(
            state.thread, proportion_ppt, period_us, now=now
        )
        state.current_ppt = proportion_ppt
        state.current_period_us = period_us

    def _drop_exited(self) -> None:
        # Inline the is_live property: this runs over every controlled
        # thread once per controller tick.
        exited = ThreadState.EXITED
        gone = [
            tid for tid, s in self._controlled.items()
            if s.thread.state is exited
        ]
        for tid in gone:
            state = self._controlled.pop(tid)
            self.usage_monitor.forget(state.thread)

    # ------------------------------------------------------------------
    # reporting helpers
    # ------------------------------------------------------------------
    def current_allocation_ppt(self, thread: SimThread) -> int:
        """The proportion currently actuated for ``thread``."""
        state = self._controlled.get(thread.tid)
        if state is None:
            raise ControllerError(f"thread {thread.name!r} is not controlled")
        return state.current_ppt

    def total_allocated_ppt(self) -> int:
        """Sum of currently actuated proportions across controlled threads."""
        return sum(s.current_ppt for s in self._controlled.values())


__all__ = ["AllocationDecision", "ProportionAllocator"]
