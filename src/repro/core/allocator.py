"""The adaptive controller (Figure 1's "Controller" box).

:class:`ProportionAllocator` closes the feedback loop:

1. **Monitor progress** — for every controlled thread it samples the
   symbiotic registry (queue fill levels and roles) or falls back to
   the miscellaneous constant-pressure heuristic.
2. **Estimate** — the per-thread :class:`ProportionEstimator` turns the
   pressure and last-interval CPU usage into a desired proportion
   (Figure 4); real-time and aperiodic real-time threads skip this and
   use their specified proportion.
3. **Resolve overload** — desired allocations are summed; if they
   exceed the overload threshold, real-rate and miscellaneous proposals
   are squished (fair share or weighted fair share), and quality
   exceptions are raised for threads whose queues have saturated.
4. **Actuate** — the resulting (proportion, period) pairs are written
   into the reservation scheduler.

The allocator is deliberately independent of the simulation kernel: it
only needs a scheduler that accepts reservations, a registry to read
fill levels from, and a clock value passed into :meth:`update`.  The
:class:`~repro.core.driver.ControllerDriver` wires it to a simulated
system and models its own CPU cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import PROPORTION_SCALE, ControllerConfig
from repro.core.errors import AdmissionError, ControllerError, QualityException
from repro.core.estimator import ProportionEstimator
from repro.core.overload import (
    SquishPolicy,
    SquishRequest,
    WeightedFairShareSquish,
    check_admission_smp,
)
from repro.core.period import PeriodEstimator
from repro.core.taxonomy import ThreadClass, ThreadSpec, classify
from repro.ipc.registry import SymbioticRegistry
from repro.monitor.progress import ConstantPressureSource, ProgressSampler
from repro.monitor.usage import UsageMonitor
from repro.sched.rbs import ReservationScheduler
from repro.sim.thread import SimThread, ThreadState


@dataclass
class AllocationDecision:
    """What the controller decided for one thread in one period."""

    thread: SimThread
    thread_class: ThreadClass
    pressure_raw: Optional[float]
    cumulative_pressure: Optional[float]
    desired_ppt: int
    granted_ppt: int
    period_us: int
    squished: bool = False
    reclaimed: bool = False
    #: Saturation direction noted during the decision ("full"/"empty"),
    #: consumed by the quality-exception check during overload.
    _saturation: Optional[str] = field(default=None, repr=False, compare=False)

    @property
    def granted_fraction(self) -> float:
        """Granted proportion as a fraction of the CPU."""
        return self.granted_ppt / PROPORTION_SCALE


@dataclass
class _ControlledThread:
    """Internal per-thread controller state."""

    thread: SimThread
    spec: ThreadSpec
    estimator: ProportionEstimator
    sampler: ProgressSampler
    period_estimator: Optional[PeriodEstimator] = None
    current_ppt: int = 0
    current_period_us: int = 0
    last_class: Optional[ThreadClass] = None
    #: Registry version at which ``last_class`` was derived;
    #: classification only changes when a linkage is added or removed,
    #: so it is cached between registry changes.
    class_version: int = -1
    #: Per-thread decision object, mutated in place every tick (one
    #: decision exists per controlled thread per tick by construction,
    #: so reuse saves a nine-field dataclass build per thread-tick).
    decision: Optional[AllocationDecision] = None
    #: Reusable squish proposal for the overload path.
    squish_request: Optional[SquishRequest] = None


class ProportionAllocator:
    """Feedback-driven assignment of proportion and period.

    Parameters
    ----------
    scheduler:
        The reservation scheduler to actuate.
    registry:
        The symbiotic-interface registry to read progress from.
    config:
        Controller tunables.
    squish_policy:
        Overload policy; defaults to weighted fair share (which equals
        plain fair share when all importances are 1, the paper's base
        policy).
    """

    def __init__(
        self,
        scheduler: ReservationScheduler,
        registry: SymbioticRegistry,
        config: Optional[ControllerConfig] = None,
        squish_policy: Optional[SquishPolicy] = None,
    ) -> None:
        self.scheduler = scheduler
        self.registry = registry
        self.config = config if config is not None else ControllerConfig()
        self.squish_policy = (
            squish_policy
            if squish_policy is not None
            else WeightedFairShareSquish(self.config.min_proportion_ppt)
        )
        self.usage_monitor = UsageMonitor()
        self.misc_pressure_source = ConstantPressureSource(self.config.misc_pressure)
        self.quality_exceptions: list[QualityException] = []
        self.updates = 0
        self._controlled: dict[int, _ControlledThread] = {}

    @property
    def capacity_cpus(self) -> int:
        """CPU count the controller budgets against (scheduler's kernel).

        Counts only *online* CPUs so admission and overload thresholds
        tighten the moment a CPU fails and relax again on recovery.
        """
        return self.scheduler.online_cpu_count

    # ------------------------------------------------------------------
    # registration (what the paper's jobs do explicitly)
    # ------------------------------------------------------------------
    def register(self, thread: SimThread, spec: Optional[ThreadSpec] = None) -> None:
        """Place ``thread`` under control of the allocator.

        Real-time specs (proportion and period both given) go through
        admission control and are actuated immediately, because a
        reservation must hold from the moment it is accepted, not from
        the next controller tick.  On a multiprocessor admission is a
        partitioned-schedulability test (:func:`check_admission_smp`):
        the placement policy's greedy packing of all live real-time
        reservations — pinned ones on their CPU — must still fit the
        request under some CPU's admission threshold.
        """
        if thread.tid in self._controlled:
            raise ControllerError(f"thread {thread.name!r} is already controlled")
        spec = spec if spec is not None else ThreadSpec()
        if spec.specifies_proportion:
            check_admission_smp(
                self.config,
                self._real_time_reservations(),
                spec.proportion_ppt,
                thread.affinity,
                thread.name,
                n_cpus=self.capacity_cpus,
            )
        state = _ControlledThread(
            thread=thread,
            spec=spec,
            estimator=ProportionEstimator(self.config),
            sampler=ProgressSampler(
                thread, self.registry, setpoint=self.config.setpoint_fill
            ),
        )
        if self.config.adapt_period:
            state.period_estimator = PeriodEstimator(
                self.config,
                self.scheduler.dispatch_interval_us,
                initial_period_us=spec.period_us,
            )
        self._controlled[thread.tid] = state
        if spec.specifies_proportion:
            period = spec.period_us or self.config.default_period_us
            self._actuate(state, spec.proportion_ppt, period)

    def would_admit(
        self,
        proportion_ppt: int,
        *,
        affinity: Optional[int] = None,
        name: str = "<candidate>",
    ) -> bool:
        """Whether a real-time reservation of ``proportion_ppt`` would
        pass admission control right now.

        The open-system workload engine's admission-on-arrival check:
        the same partitioned-schedulability test :meth:`register` runs
        (so a ``True`` answer guarantees the immediately following
        ``register`` succeeds — the simulation is single-threaded), but
        returning a verdict instead of raising, so a rejected arrival
        is an expected outcome, not an exception.  Capacity freed by an
        exited job is visible immediately: the test only counts *live*
        real-time reservations.
        """
        try:
            check_admission_smp(
                self.config,
                self._real_time_reservations(),
                proportion_ppt,
                affinity,
                name,
                n_cpus=self.capacity_cpus,
            )
        except AdmissionError:
            return False
        return True

    def unregister(self, thread: SimThread) -> None:
        """Remove ``thread`` from control (its reservation is cleared)."""
        state = self._controlled.pop(thread.tid, None)
        if state is None:
            return
        self.usage_monitor.forget(thread)
        if thread.state.is_live:
            self.scheduler.clear_reservation(thread)

    def controlled_threads(self) -> list[SimThread]:
        """All threads currently under control."""
        return [state.thread for state in self._controlled.values()]

    def decision_count(self) -> int:
        """Number of threads the next update will decide for."""
        return len(self._controlled)

    def spec_for(self, thread: SimThread) -> ThreadSpec:
        """The spec a thread registered with."""
        state = self._controlled.get(thread.tid)
        if state is None:
            raise ControllerError(f"thread {thread.name!r} is not controlled")
        return state.spec

    def sampler_for(self, thread: SimThread) -> ProgressSampler:
        """The progress sampler the controller reads for ``thread``.

        Exposed so fault injection can wrap the sensor path (dropout /
        corruption windows) without reaching into private state.
        """
        state = self._controlled.get(thread.tid)
        if state is None:
            raise ControllerError(f"thread {thread.name!r} is not controlled")
        return state.sampler

    def set_sampler(self, thread: SimThread, sampler: ProgressSampler) -> None:
        """Replace the progress sampler the controller reads for ``thread``.

        The counterpart of :meth:`sampler_for`: fault injection swaps in
        a wrapping sensor for the fault window and restores the original
        afterwards.  The sampler must observe the same thread.
        """
        state = self._controlled.get(thread.tid)
        if state is None:
            raise ControllerError(f"thread {thread.name!r} is not controlled")
        if sampler.thread is not thread:
            raise ControllerError(
                f"sampler observes {sampler.thread.name!r}, not {thread.name!r}"
            )
        state.sampler = sampler

    def _real_time_reservations(self) -> list[tuple[int, Optional[int]]]:
        """Live real-time reservations as (proportion, affinity) pairs."""
        return [
            (state.spec.proportion_ppt, state.thread.affinity)
            for state in self._controlled.values()
            if state.spec.specifies_proportion and state.thread.state.is_live
        ]

    # ------------------------------------------------------------------
    # the controller period
    # ------------------------------------------------------------------
    def update(self, now: int) -> list[AllocationDecision]:
        """Run one controller period at virtual time ``now``.

        Returns the decisions made, in registration order, after
        actuating them on the scheduler.

        The returned :class:`AllocationDecision` objects are **reused
        across ticks** (one long-lived instance per controlled thread,
        mutated in place) — a deliberate hot-path trade-off, since one
        decision exists per thread per tick.  Read them before the next
        update; a caller that wants a history must copy the fields it
        cares about, not retain the objects.
        """
        dt = self.config.controller_period_s
        self.updates += 1
        self._drop_exited()

        decide = self._decide
        states = list(self._controlled.values())
        decisions = [decide(state, now, dt) for state in states]

        self._resolve_overload(decisions, now)

        # ``decisions`` is index-aligned with ``states`` (both walk the
        # registration-ordered dict), so actuation avoids a dict lookup
        # per thread.
        scheduler = self.scheduler
        for state, decision in zip(states, decisions):
            scheduler.set_reservation(
                state.thread, decision.granted_ppt, decision.period_us, now=now
            )
            state.current_ppt = decision.granted_ppt
            state.current_period_us = decision.period_us
        return decisions

    # ------------------------------------------------------------------
    # per-thread decision
    # ------------------------------------------------------------------
    def _decide(
        self, state: _ControlledThread, now: int, dt: float
    ) -> AllocationDecision:
        spec = state.spec
        thread = state.thread
        registry = self.registry
        # Classification is a pure function of the (immutable) spec and
        # the registry's linkage knowledge; re-derive it only when a
        # linkage was added or removed.
        version = registry.version
        if state.class_version == version:
            thread_class = state.last_class
        else:
            thread_class = classify(spec, registry.has_progress_metric(thread))
            state.last_class = thread_class
            state.class_version = version

        decision = state.decision
        if decision is None:
            decision = state.decision = AllocationDecision(
                thread=thread,
                thread_class=thread_class,
                pressure_raw=None,
                cumulative_pressure=None,
                desired_ppt=0,
                granted_ppt=0,
                period_us=0,
            )
        else:
            decision.thread_class = thread_class
            decision.squished = False
            decision.reclaimed = False
            decision._saturation = None

        if thread_class is ThreadClass.REAL_TIME:
            # Keep the reservation exactly as specified; usage is still
            # sampled so the monitor's bookkeeping stays continuous.
            self.usage_monitor.sample(thread, now, state.current_ppt)
            decision.pressure_raw = None
            decision.cumulative_pressure = None
            decision.desired_ppt = spec.proportion_ppt
            decision.granted_ppt = spec.proportion_ppt
            decision.period_us = spec.period_us
            return decision

        if thread_class is ThreadClass.APERIODIC_REAL_TIME:
            self.usage_monitor.sample(thread, now, state.current_ppt)
            period = self._period_for(state, thread_class, fill_level=None)
            decision.pressure_raw = None
            decision.cumulative_pressure = None
            decision.desired_ppt = spec.proportion_ppt
            decision.granted_ppt = spec.proportion_ppt
            decision.period_us = period
            return decision

        # Real-rate and miscellaneous threads go through the estimator.
        if thread_class is ThreadClass.REAL_RATE:
            sample = state.sampler.sample()
            pressure_raw = sample.raw if sample is not None else 0.0
            fill_level = sample.mean_fill if sample is not None else None
        else:
            sample = None
            pressure_raw = self.misc_pressure_source.pressure
            fill_level = None

        current_ppt = state.current_ppt
        # Usage sampling (UsageMonitor.sample) inlined: one dict probe
        # and three integer ops per thread-tick, no sample object.
        tid = thread.tid
        total = thread.accounting.total_us
        monitor_last = self.usage_monitor._last
        previous = monitor_last.get(tid)
        if previous is None:
            used = 0
            interval = 0
        else:
            used = total - previous[0]
            if used < 0:
                used = 0
            interval = now - previous[1]
            if interval < 0:
                interval = 0
        monitor_last[tid] = (total, now)
        allocated = interval * current_ppt // 1000
        desired_ppt, cumulative, reclaimed = state.estimator.estimate_tick(
            pressure_raw, used, interval, allocated, current_ppt, dt
        )
        # _period_for, inlined (one branch cascade per thread-tick).
        config = self.config
        if spec.interactive:
            period = config.interactive_period_us
        elif spec.period_us is not None:
            period = spec.period_us
        elif (
            state.period_estimator is not None
            and thread_class is ThreadClass.REAL_RATE
        ):
            period = state.period_estimator.update(
                current_ppt or config.min_proportion_ppt, fill_level
            ).period_us
        else:
            period = config.default_period_us
        if spec.interactive:
            # Interactive jobs: "assigning them a small period and
            # estimating their proportion by measuring the amount of
            # time they typically run before blocking".  Their input
            # queues are empty almost all the time, so the fill-level
            # feedback alone would park them at the floor; the
            # run-before-block heuristic reserves enough to serve one
            # typical burst within each (small) period.
            burst_us = thread.accounting.run_before_block_ema_us
            if burst_us > 0:
                heuristic_ppt = int(
                    round(1.5 * burst_us * PROPORTION_SCALE / period)
                )
                heuristic_ppt = min(self.config.max_proportion_ppt, heuristic_ppt)
                desired_ppt = max(desired_ppt, heuristic_ppt)
        decision.pressure_raw = pressure_raw
        decision.cumulative_pressure = cumulative
        decision.desired_ppt = desired_ppt
        decision.granted_ppt = desired_ppt
        decision.period_us = period
        decision.reclaimed = reclaimed
        # A quality exception is only warranted when a queue saturated in
        # the direction that means this thread is falling behind (signed
        # pressure at its maximum): a consumer's queue completely full,
        # or a producer's queue completely empty.
        if sample is not None and sample.per_channel:
            behind = max(sample.per_channel.values())
            if behind >= 0.45 and (sample.saturated_full or sample.saturated_empty):
                saturation = "full" if sample.saturated_full else "empty"
                decision._saturation = saturation
        return decision

    def _representative_fill(self, state: _ControlledThread) -> Optional[float]:
        linkages = state.sampler.linkages()
        if not linkages:
            return None
        # Average across the thread's queues; a single-queue thread (the
        # common case) just reports that queue's fill level.
        return sum(l.channel.fill_level() for l in linkages) / len(linkages)

    def _period_for(
        self,
        state: _ControlledThread,
        thread_class: ThreadClass,
        fill_level: Optional[float],
    ) -> int:
        spec = state.spec
        if spec.interactive:
            return self.config.interactive_period_us
        if spec.specifies_period:
            return spec.period_us
        if state.period_estimator is not None and thread_class is ThreadClass.REAL_RATE:
            proportion = state.current_ppt or self.config.min_proportion_ppt
            return state.period_estimator.update(proportion, fill_level).period_us
        return self.config.default_period_us

    # ------------------------------------------------------------------
    # overload resolution
    # ------------------------------------------------------------------
    def _resolve_overload(
        self, decisions: list[AllocationDecision], now: int
    ) -> None:
        """Fit the proposed allocations under the overload threshold.

        Real-time (and aperiodic real-time) reservations are protected.
        The remaining capacity is handed out in two tiers, which is what
        produces the Figure 7 behaviour where the CPU hog "effectively
        loses allocation to the consumer":

        1. real-rate threads — whose desired allocation reflects a
           *measured* need — are satisfied first, squished
           proportionally among themselves only if they alone exceed
           the available capacity;
        2. miscellaneous threads — whose constant pseudo-pressure just
           says "give me whatever is spare" — share the residual via
           the (weighted) fair-share squish policy, never dropping
           below the minimum proportion (starvation freedom).
        """
        total_desired = sum(d.desired_ppt for d in decisions)
        threshold = self.config.overload_threshold_total_ppt(self.capacity_cpus)
        if total_desired <= threshold:
            return

        # Single pass over the decisions (this runs on every tick while
        # the system is overloaded).  Squishable == real-rate or
        # miscellaneous, so the three buckets partition the classes.
        protected = 0
        real_rate: list[AllocationDecision] = []
        misc: list[AllocationDecision] = []
        real_rate_total = 0
        for d in decisions:
            thread_class = d.thread_class
            if thread_class is ThreadClass.REAL_RATE:
                real_rate.append(d)
                real_rate_total += d.desired_ppt
            elif thread_class is ThreadClass.MISCELLANEOUS:
                misc.append(d)
            else:
                protected += d.desired_ppt
        available = max(0, threshold - protected)
        if real_rate_total > available:
            self._apply_squish(real_rate, available, now)
            misc_available = 0
        else:
            misc_available = available - real_rate_total
        self._apply_squish(misc, misc_available, now)

    def _apply_squish(
        self,
        decisions: list[AllocationDecision],
        available_ppt: int,
        now: int,
    ) -> None:
        if not decisions:
            return
        controlled = self._controlled
        requests = []
        append = requests.append
        for d in decisions:
            state = controlled[d.thread.tid]
            request = state.squish_request
            if request is None:
                request = state.squish_request = SquishRequest(
                    key=d.thread.tid,
                    desired_ppt=d.desired_ppt,
                    importance=state.spec.importance,
                )
            else:
                # Reused proposal: only the desired proportion moves
                # tick to tick (the key is the tid and the importance
                # comes from the immutable spec).
                request.desired_ppt = d.desired_ppt
                request.importance = state.spec.importance
            append(request)
        grants = self.squish_policy.squish(requests, max(0, available_ppt))
        for decision in decisions:
            granted = grants.get(decision.thread.tid, decision.desired_ppt)
            if granted < decision.desired_ppt:
                decision.granted_ppt = max(self.config.min_proportion_ppt, granted)
                decision.squished = True
                self._maybe_quality_exception(decision, now)

    def _maybe_quality_exception(self, decision: AllocationDecision, now: int) -> None:
        saturation = decision._saturation
        if saturation is None:
            return
        exception = QualityException(
            time_us=now,
            thread=decision.thread,
            reason=f"queue {saturation} while overloaded",
            desired_ppt=decision.desired_ppt,
            granted_ppt=decision.granted_ppt,
        )
        self.quality_exceptions.append(exception)
        callback = self._controlled[decision.thread.tid].spec.quality_callback
        if callback is not None:
            callback(exception)

    # ------------------------------------------------------------------
    # actuation
    # ------------------------------------------------------------------
    def _actuate(
        self,
        state: _ControlledThread,
        proportion_ppt: int,
        period_us: int,
        now: Optional[int] = None,
    ) -> None:
        self.scheduler.set_reservation(
            state.thread, proportion_ppt, period_us, now=now
        )
        state.current_ppt = proportion_ppt
        state.current_period_us = period_us

    def _drop_exited(self) -> None:
        # Inline the is_live property: this runs over every controlled
        # thread once per controller tick.
        exited = ThreadState.EXITED
        gone = [
            tid for tid, s in self._controlled.items()
            if s.thread.state is exited
        ]
        for tid in gone:
            state = self._controlled.pop(tid)
            self.usage_monitor.forget(state.thread)

    # ------------------------------------------------------------------
    # reporting helpers
    # ------------------------------------------------------------------
    def current_allocation_ppt(self, thread: SimThread) -> int:
        """The proportion currently actuated for ``thread``."""
        state = self._controlled.get(thread.tid)
        if state is None:
            raise ControllerError(f"thread {thread.name!r} is not controlled")
        return state.current_ppt

    def total_allocated_ppt(self) -> int:
        """Sum of currently actuated proportions across controlled threads."""
        return sum(s.current_ppt for s in self._controlled.values())


__all__ = ["AllocationDecision", "ProportionAllocator"]
