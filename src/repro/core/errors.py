"""Controller-level errors and notifications."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.thread import SimThread


class ControllerError(Exception):
    """Base class for controller configuration and usage errors."""


class AdmissionError(ControllerError):
    """A real-time reservation request was rejected.

    The paper's controller "performs admission control by rejecting new
    real-time jobs which request more CPU than is currently available".
    """

    def __init__(self, requested_ppt: int, available_ppt: int, thread_name: str) -> None:
        self.requested_ppt = requested_ppt
        self.available_ppt = available_ppt
        self.thread_name = thread_name
        super().__init__(
            f"admission control rejected reservation of {requested_ppt} ppt for "
            f"{thread_name!r}: only {available_ppt} ppt available"
        )


@dataclass(frozen=True)
class QualityException:
    """Notification that a job cannot be given the CPU it needs.

    Raised (as an event record, not a Python exception) when the system
    is overloaded and a real-rate thread's queue has saturated — the
    signal the paper uses to let applications "adapt by lowering
    [their] resource requirements".
    """

    time_us: int
    thread: "SimThread"
    reason: str
    desired_ppt: int
    granted_ppt: int

    def __str__(self) -> str:
        return (
            f"QualityException(t={self.time_us}us, thread={self.thread.name!r}, "
            f"reason={self.reason!r}, desired={self.desired_ppt}, "
            f"granted={self.granted_ppt})"
        )


__all__ = ["AdmissionError", "ControllerError", "QualityException"]
