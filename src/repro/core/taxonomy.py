"""The thread taxonomy of Figure 2.

The controller treats a thread according to what it knows about it:

=============================  ==================  ====================
proportion specified?          period specified    period unspecified
=============================  ==================  ====================
yes                            **real-time**       **aperiodic real-time**
no, progress metric available  **real-rate**       **real-rate**
no, no progress metric         **miscellaneous**   **miscellaneous**
=============================  ==================  ====================

A :class:`ThreadSpec` is the application-facing declaration (what the
thread tells the controller when it registers); :func:`classify` maps a
spec plus the registry's knowledge of progress metrics onto a
:class:`ThreadClass`.  Classification is re-evaluated at every
controller period because a thread may open or close symbiotic
interfaces at runtime.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.errors import ControllerError


class ThreadClass(enum.Enum):
    """The four controller cases of Figure 2."""

    REAL_TIME = "real_time"
    APERIODIC_REAL_TIME = "aperiodic_real_time"
    REAL_RATE = "real_rate"
    MISCELLANEOUS = "miscellaneous"

    @property
    def has_reservation_spec(self) -> bool:
        """Whether the proportion comes from the application, not feedback."""
        return self in (ThreadClass.REAL_TIME, ThreadClass.APERIODIC_REAL_TIME)

    @property
    def is_squishable(self) -> bool:
        """Whether the controller may reduce this class's allocation
        under overload (real-time reservations are protected)."""
        return self in (ThreadClass.REAL_RATE, ThreadClass.MISCELLANEOUS)


@dataclass
class ThreadSpec:
    """What an application declares about a thread when it registers.

    Attributes
    ----------
    proportion_ppt:
        Requested proportion (parts per thousand), or ``None`` to let
        the controller estimate it.
    period_us:
        Requested period in microseconds, or ``None`` to let the
        controller choose (the default or an adapted value).
    importance:
        Weight used by weighted-fair-share squishing.  Unlike priority,
        "a more-important job cannot starve a less important job";
        importance only biases how overload is shared.
    interactive:
        Marks an interactive job: its period is pinned to the
        human-perception default regardless of period adaptation.
    quality_callback:
        Optional callable invoked with a
        :class:`repro.core.errors.QualityException` when the controller
        cannot satisfy the thread under overload.
    """

    proportion_ppt: Optional[int] = None
    period_us: Optional[int] = None
    importance: float = 1.0
    interactive: bool = False
    quality_callback: Optional[Callable[[object], None]] = None

    def __post_init__(self) -> None:
        if self.proportion_ppt is not None and not 0 < self.proportion_ppt <= 1000:
            raise ControllerError(
                f"requested proportion must be in (0, 1000] ppt, got "
                f"{self.proportion_ppt}"
            )
        if self.period_us is not None and self.period_us <= 0:
            raise ControllerError(
                f"requested period must be positive, got {self.period_us}"
            )
        if self.importance <= 0:
            raise ControllerError(
                f"importance must be positive, got {self.importance}"
            )

    @property
    def specifies_proportion(self) -> bool:
        """Whether the application supplied a proportion."""
        return self.proportion_ppt is not None

    @property
    def specifies_period(self) -> bool:
        """Whether the application supplied a period."""
        return self.period_us is not None


def classify(spec: ThreadSpec, has_progress_metric: bool) -> ThreadClass:
    """Map a spec plus metric availability to a :class:`ThreadClass`.

    Follows Figure 2 exactly: a specified proportion makes the thread
    real-time (periodic or aperiodic depending on whether the period is
    also given); otherwise a progress metric makes it real-rate, and a
    thread that provides nothing at all is miscellaneous.
    """
    if spec.specifies_proportion:
        if spec.specifies_period:
            return ThreadClass.REAL_TIME
        return ThreadClass.APERIODIC_REAL_TIME
    if has_progress_metric:
        return ThreadClass.REAL_RATE
    return ThreadClass.MISCELLANEOUS


__all__ = ["ThreadClass", "ThreadSpec", "classify"]
