"""Proportion estimation (Figure 4).

One :class:`ProportionEstimator` exists per controlled real-rate or
miscellaneous thread.  Each controller period it receives the thread's
summed progress pressure (Figure 3) and its CPU usage over the last
interval, and produces the thread's *desired* proportion:

* **on target** — the cumulative pressure Q_t from the PID block is
  multiplied by the constant scaling factor k to give the new desired
  allocation (``P' = k * Q_t``);
* **too generous** — if the thread left more than a threshold fraction
  of its previous allocation unused, the pressure is assumed to be
  overestimating the real need (for example the thread is bottlenecked
  on a disk) and the allocation is instead reduced by the constant C
  (``P' = P - C``).  The PID integral is wound down to match so the
  next period starts from the reduced value instead of snapping back.

The result is always clamped to the configured [min, max] proportion
range; the minimum is what guarantees the paper's starvation-freedom
property.
"""

# float-order: exact — the estimation law replays the PID arithmetic;
# reassociating it would break golden-trace equality.

from __future__ import annotations

from typing import NamedTuple

from repro.core.config import PROPORTION_SCALE, ControllerConfig
from repro.monitor.usage import UsageSample
from repro.swift.pid import PIDController


class EstimateResult(NamedTuple):
    """Outcome of one estimation step for one thread.

    A named tuple: one result is constructed per controlled thread per
    controller tick, so creation cost sits on the controller hot path.
    """

    desired_ppt: int
    cumulative_pressure: float
    reclaimed: bool


class ProportionEstimator:
    """Per-thread implementation of the Figure 4 estimation law."""

    def __init__(self, config: ControllerConfig) -> None:
        self.config = config
        # The PID output is a cumulative pressure; scaling by k turns it
        # into a CPU fraction, so bounding the output at
        # max_fraction / k bounds the desired fraction (and, through the
        # integral clamp inside PIDController, provides anti-windup).
        self.pid = PIDController(
            config.pid_gains,
            output_low=0.0,
            output_high=config.max_fraction / config.k_scale,
        )
        self.last_desired_ppt = config.min_proportion_ppt
        self.reclaim_count = 0
        # Smoothed used/allocated ratio.  A thread whose reservation
        # period is longer than the controller interval receives its
        # allocation in bursts, so a single interval can legitimately
        # show zero usage; the reclaim rule therefore looks at a short
        # exponential average rather than one sample.
        self._usage_ratio_ema = 1.0
        # Smoothed fraction of the CPU the thread actually used; the
        # reclaim rule never reduces the allocation below this, so a
        # thread that is genuinely using (say) 12% of the machine is not
        # reclaimed down to the floor just because it was granted more.
        self._used_fraction_ema = 0.0

    #: Weight of the newest usage sample in the smoothed ratio.
    USAGE_EMA_ALPHA = 0.25

    def estimate(
        self,
        pressure_raw: float,
        usage: UsageSample,
        current_ppt: int,
        dt: float,
    ) -> EstimateResult:
        """Produce the thread's desired proportion for the next interval.

        Parameters
        ----------
        pressure_raw:
            Σ R·F over the thread's progress metrics (or the
            miscellaneous constant).
        usage:
            CPU used vs. allocated over the previous controller
            interval, for the reclaim rule.
        current_ppt:
            The proportion actually in force over the previous interval
            (post-squish), which is what the reclaim rule decrements.
        dt:
            Controller period in seconds.
        """
        config = self.config
        cumulative = self.pid.step(pressure_raw, dt)
        desired_fraction = config.k_scale * cumulative
        reclaimed = False

        if self._too_generous(usage, current_ppt):
            reclaim_fraction = (
                current_ppt - config.reclaim_decrement_ppt
            ) / PROPORTION_SCALE
            # Never reclaim below what the thread is demonstrably using.
            reclaim_fraction = max(reclaim_fraction, self._used_fraction_ema)
            if reclaim_fraction < desired_fraction:
                desired_fraction = reclaim_fraction
                reclaimed = True
                self.reclaim_count += 1
                self._wind_down_to(desired_fraction)

        desired_fraction = min(config.max_fraction, max(config.min_fraction,
                                                        desired_fraction))
        desired_ppt = int(round(desired_fraction * PROPORTION_SCALE))
        desired_ppt = min(config.max_proportion_ppt,
                          max(config.min_proportion_ppt, desired_ppt))
        self.last_desired_ppt = desired_ppt
        return EstimateResult(
            desired_ppt=desired_ppt,
            cumulative_pressure=cumulative,
            reclaimed=reclaimed,
        )

    def estimate_tick(
        self,
        pressure_raw: float,
        used_us: int,
        interval_us: int,
        allocated_us: int,
        current_ppt: int,
        dt: float,
    ) -> tuple[int, float, bool]:
        """Fused fast path of :meth:`estimate` for the controller tick.

        Performs exactly the arithmetic of :meth:`estimate` (PID step,
        reclaim rule with its EMA side effects, wind-down, clamps) in
        the same order on the same state holders, but takes the usage
        sample as three scalars and returns a plain ``(desired_ppt,
        cumulative_pressure, reclaimed)`` tuple — the allocator runs
        this once per controlled thread per tick, so the per-call
        object constructions and method dispatches of the unfused path
        are measurable.  ``tests/test_core_estimator_period.py`` pins
        the two paths bit-identical over randomized histories.
        """
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        config = self.config
        # -- PIDController.step, inlined (same arithmetic, same order) --
        pid = self.pid
        gains = pid.gains
        proportional = gains.kp * pressure_raw
        integrator = pid._integrator
        value = integrator.value + pressure_raw * dt
        limit_high = integrator.limit_high
        if limit_high is not None and value > limit_high:
            value = limit_high
        limit_low = integrator.limit_low
        if limit_low is not None and value < limit_low:
            value = limit_low
        integrator.value = value
        integral = gains.ki * value
        differentiator = pid._differentiator
        previous = differentiator._previous
        if previous is None:
            derivative_raw = 0.0
        else:
            derivative_raw = (pressure_raw - previous) / dt
        differentiator._previous = pressure_raw
        lpf = pid._derivative_filter
        if lpf is not None:
            if not lpf._primed:
                lpf.value = derivative_raw
                lpf._primed = True
            else:
                alpha = dt / (lpf.time_constant_s + dt)
                lpf.value += alpha * (derivative_raw - lpf.value)
            derivative_raw = lpf.value
        cumulative = proportional + integral + gains.kd * derivative_raw
        output_high = pid.output_high
        if output_high is not None and cumulative > output_high:
            cumulative = output_high
        output_low = pid.output_low
        if output_low is not None and cumulative < output_low:
            cumulative = output_low
        pid.last_output = cumulative
        pid.last_error = pressure_raw
        pid.steps += 1

        # -- estimate body: reclaim rule and clamps --
        desired_fraction = config.k_scale * cumulative
        reclaimed = False
        too_generous = False
        if allocated_us > 0 and interval_us > 0:
            ratio = used_us / allocated_us
            if ratio > 2.0:
                ratio = 2.0
            alpha = self.USAGE_EMA_ALPHA
            beta = 1.0 - alpha
            self._usage_ratio_ema = alpha * ratio + beta * self._usage_ratio_ema
            self._used_fraction_ema = (
                alpha * (used_us / interval_us) + beta * self._used_fraction_ema
            )
            if current_ppt > config.min_proportion_ppt:
                ema = self._usage_ratio_ema
                unused = 1.0 - (1.0 if ema > 1.0 else ema)
                too_generous = unused > config.unused_threshold
        if too_generous:
            reclaim_fraction = (
                current_ppt - config.reclaim_decrement_ppt
            ) / PROPORTION_SCALE
            used_ema = self._used_fraction_ema
            if used_ema > reclaim_fraction:
                reclaim_fraction = used_ema
            if reclaim_fraction < desired_fraction:
                desired_fraction = reclaim_fraction
                reclaimed = True
                self.reclaim_count += 1
                # _wind_down_to, inlined.
                if gains.ki > 0:
                    target_output = desired_fraction / config.k_scale
                    if target_output < 0.0:
                        target_output = 0.0
                    integrator.value = target_output / gains.ki
        min_fraction = config.min_fraction
        if desired_fraction < min_fraction:
            desired_fraction = min_fraction
        max_fraction = config.max_fraction
        if desired_fraction > max_fraction:
            desired_fraction = max_fraction
        desired_ppt = int(round(desired_fraction * PROPORTION_SCALE))
        min_ppt = config.min_proportion_ppt
        if desired_ppt < min_ppt:
            desired_ppt = min_ppt
        max_ppt = config.max_proportion_ppt
        if desired_ppt > max_ppt:
            desired_ppt = max_ppt
        self.last_desired_ppt = desired_ppt
        return desired_ppt, cumulative, reclaimed

    def _too_generous(self, usage: UsageSample, current_ppt: int) -> bool:
        """Whether the previous allocation overestimated the real need."""
        used_us, interval_us, allocated_us = usage
        if allocated_us <= 0 or interval_us <= 0:
            return False
        ratio = min(2.0, used_us / allocated_us)
        alpha = self.USAGE_EMA_ALPHA
        beta = 1.0 - alpha
        self._usage_ratio_ema = alpha * ratio + beta * self._usage_ratio_ema
        # interval_us > 0 was checked above, so this is exactly
        # usage.used_fraction without the property's guard branch.
        self._used_fraction_ema = (
            alpha * (used_us / interval_us) + beta * self._used_fraction_ema
        )
        if current_ppt <= self.config.min_proportion_ppt:
            return False
        unused = 1.0 - min(1.0, self._usage_ratio_ema)
        return unused > self.config.unused_threshold

    def _wind_down_to(self, desired_fraction: float) -> None:
        """Make the PID's internal state consistent with a reclaim.

        Without this, the integral term would still encode the old
        (too-generous) allocation and the very next period would undo
        the reclaim.  We set the integral so that, at zero error, the
        controller reproduces the reclaimed value.
        """
        gains = self.config.pid_gains
        if gains.ki <= 0:
            return
        target_output = max(0.0, desired_fraction / self.config.k_scale)
        self.pid.preload_integral(target_output / gains.ki)

    def reset(self) -> None:
        """Clear the estimator's internal state."""
        self.pid.reset()
        self.last_desired_ppt = self.config.min_proportion_ppt
        self.reclaim_count = 0
        self._usage_ratio_ema = 1.0
        self._used_fraction_ema = 0.0


__all__ = ["EstimateResult", "ProportionEstimator"]
