"""Controller configuration.

Collects every tunable of the adaptive controller in one dataclass so
experiments and ablations can vary a single knob without touching the
allocator.  Defaults are calibrated so the Figure 6 pulse workload
responds in roughly a third of a second, as the paper reports, while
remaining well damped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ControllerError
from repro.swift.pid import PIDGains

#: Parts-per-thousand scale used throughout (matches the paper's interface).
PROPORTION_SCALE = 1_000


@dataclass
class ControllerConfig:
    """All tunables of the :class:`~repro.core.allocator.ProportionAllocator`.

    Attributes
    ----------
    controller_period_us:
        How often the controller samples progress and re-actuates.  The
        paper's prototype samples at 100 Hz (10 ms).
    pid_gains:
        Gains of the PID block (the G function of Figure 3).
    k_scale:
        The constant scaling factor of Figure 4 that converts cumulative
        pressure into a desired CPU fraction.
    setpoint_fill:
        Target queue fill level (the paper uses 1/2).
    min_proportion_ppt:
        Floor applied to every controlled thread; guarantees the
        paper's "every job in the system is assigned a non-zero
        percentage of the CPU" starvation-freedom property.
    max_proportion_ppt:
        Ceiling applied to any single thread's allocation.
    overload_threshold_ppt:
        Total allocation above which the controller squishes; below
        1000 to "reserve some capacity to cover the overhead of
        scheduling and interrupt handling".
    admission_threshold_ppt:
        Total *real-time* reservation above which new real-time
        requests are rejected.
    default_period_us:
        Period assigned when the application does not specify one
        (30 ms in the paper).
    interactive_period_us:
        Period pinned for interactive jobs.
    misc_pressure:
        The positive constant used as pseudo-progress for miscellaneous
        threads.
    unused_threshold:
        Fraction of the allocation that must go unused before the
        reclaim ("too generous") rule of Figure 4 fires.
    reclaim_decrement_ppt:
        The constant C of Figure 4: how much the allocation is reduced
        per controller period while the thread is not using it.
    adapt_period:
        Enables the period-estimation heuristic (the paper disables it
        for all reported experiments; our figure reproductions do too).
    period_min_us / period_max_us:
        Bounds for the adapted period.
    period_grow_factor / period_shrink_factor:
        Multiplicative steps used by the heuristic.
    quantization_quanta:
        If a thread's per-period allocation is smaller than this many
        dispatch intervals, the heuristic considers it quantisation-
        limited and grows the period.
    oscillation_threshold:
        Mean per-period fill-level swing (fraction of the buffer) above
        which the heuristic shrinks the period to reduce jitter.
    oscillation_window:
        Number of controller samples over which the swing is averaged.
    """

    controller_period_us: int = 10_000
    pid_gains: PIDGains = field(default_factory=PIDGains)
    k_scale: float = 10.0
    setpoint_fill: float = 0.5
    min_proportion_ppt: int = 5
    max_proportion_ppt: int = 950
    overload_threshold_ppt: int = 850
    admission_threshold_ppt: int = 900
    default_period_us: int = 30_000
    interactive_period_us: int = 30_000
    misc_pressure: float = 0.25
    unused_threshold: float = 0.6
    reclaim_decrement_ppt: int = 30
    adapt_period: bool = False
    period_min_us: int = 5_000
    period_max_us: int = 200_000
    period_grow_factor: float = 1.25
    period_shrink_factor: float = 0.8
    quantization_quanta: int = 4
    oscillation_threshold: float = 0.2
    oscillation_window: int = 8

    def __post_init__(self) -> None:
        if self.controller_period_us <= 0:
            raise ControllerError(
                f"controller period must be positive, got {self.controller_period_us}"
            )
        if not 0 < self.setpoint_fill < 1:
            raise ControllerError(
                f"setpoint fill must be in (0, 1), got {self.setpoint_fill}"
            )
        if not 0 < self.min_proportion_ppt <= self.max_proportion_ppt <= PROPORTION_SCALE:
            raise ControllerError(
                "proportion bounds must satisfy 0 < min <= max <= 1000, got "
                f"min={self.min_proportion_ppt}, max={self.max_proportion_ppt}"
            )
        if not 0 < self.overload_threshold_ppt <= PROPORTION_SCALE:
            raise ControllerError(
                f"overload threshold must be in (0, 1000], got "
                f"{self.overload_threshold_ppt}"
            )
        if not 0 < self.admission_threshold_ppt <= PROPORTION_SCALE:
            raise ControllerError(
                f"admission threshold must be in (0, 1000], got "
                f"{self.admission_threshold_ppt}"
            )
        if self.k_scale <= 0:
            raise ControllerError(f"k_scale must be positive, got {self.k_scale}")
        if self.misc_pressure <= 0:
            raise ControllerError(
                f"misc_pressure must be positive, got {self.misc_pressure}"
            )
        if not 0 <= self.unused_threshold <= 1:
            raise ControllerError(
                f"unused_threshold must be in [0, 1], got {self.unused_threshold}"
            )
        if self.reclaim_decrement_ppt <= 0:
            raise ControllerError(
                f"reclaim_decrement_ppt must be positive, got "
                f"{self.reclaim_decrement_ppt}"
            )
        if not 0 < self.period_min_us <= self.period_max_us:
            raise ControllerError(
                "period bounds must satisfy 0 < min <= max, got "
                f"min={self.period_min_us}, max={self.period_max_us}"
            )
        if self.default_period_us <= 0 or self.interactive_period_us <= 0:
            raise ControllerError("default and interactive periods must be positive")

    @property
    def controller_period_s(self) -> float:
        """Controller period in seconds (the PID's dt)."""
        return self.controller_period_us / 1_000_000

    # ------------------------------------------------------------------
    # multiprocessor capacity scaling
    # ------------------------------------------------------------------
    def overload_threshold_total_ppt(self, n_cpus: int = 1) -> int:
        """Squish threshold against total capacity ``n_cpus * 1000``.

        The per-CPU headroom (1000 - overload_threshold_ppt, reserved
        for scheduling and interrupt overhead) scales with the CPU
        count, so each CPU keeps the same reserve the paper argues for.
        """
        if n_cpus < 1:
            raise ControllerError(f"n_cpus must be at least 1, got {n_cpus}")
        return self.overload_threshold_ppt * n_cpus

    @property
    def min_fraction(self) -> float:
        """Minimum proportion as a fraction of the CPU."""
        return self.min_proportion_ppt / PROPORTION_SCALE

    @property
    def max_fraction(self) -> float:
        """Maximum proportion as a fraction of the CPU."""
        return self.max_proportion_ppt / PROPORTION_SCALE


__all__ = ["ControllerConfig", "PROPORTION_SCALE"]
