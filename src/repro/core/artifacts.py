"""Durable artifact writes: atomic replace and fsync'd appends.

Every artifact this repository commits to disk — experiment ``--json``
results, sweep manifests, ``BENCH_kernel.json``, the append-only
``BENCH_history.jsonl``, golden corpora, rendered reports, and the
orchestration journals — must survive a crash at any instant without
leaving a torn file behind.  Two primitives cover every case:

* :func:`write_atomic` — write the full text to a temporary file in
  the destination directory, fsync it, then :func:`os.replace` it over
  the target.  Readers observe either the old complete file or the new
  complete file, never a prefix.
* :class:`DurableAppender` / :func:`append_durable` — append-only
  JSONL logs cannot use replace (that would rewrite history); instead
  every appended line is flushed and fsync'd before the call returns,
  so a crash can tear at most the line being written — which JSONL
  consumers (the sweep journal, history readers) detect and drop.

The ``atomic-write`` check of ``python -m repro lint`` flags direct
write-mode ``open()`` calls elsewhere in the tree, so new artifact
writers are funnelled here by construction.  This module is the single
intentional home of raw write-mode ``open()``.
"""

from __future__ import annotations

import os
import tempfile
from types import TracebackType
from typing import Optional, TextIO, Union

_PathLike = Union[str, "os.PathLike[str]"]


def _fsync_directory(directory: str) -> None:
    """Best-effort fsync of a directory entry (durability of the rename).

    Not every filesystem supports opening directories (and Windows has
    no equivalent); failure to sync the directory never fails the
    write — the file itself is already durable.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def write_atomic(path: _PathLike, text: str, *, fsync: bool = True) -> None:
    """Atomically replace ``path`` with ``text`` (temp file + rename).

    The temporary file is created in the destination directory so the
    final :func:`os.replace` stays on one filesystem (rename is only
    atomic within a filesystem).  With ``fsync`` (the default) the data
    is forced to stable storage before the rename, and the directory
    entry is synced after it, so a crash leaves either the complete old
    content or the complete new content.
    """
    target = os.fspath(path)
    directory = os.path.dirname(target) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(target) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_path, target)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    if fsync:
        _fsync_directory(directory)


class DurableAppender:
    """An append-only text log whose every line survives a crash.

    Holds the file open across appends (a journal writes one line per
    completed grid point; reopening per line would thrash).  Each
    :meth:`append_line` flushes and fsyncs before returning, so once
    the call returns the line is on stable storage; a crash mid-call
    can tear at most the final line, which loaders must tolerate.
    """

    def __init__(self, path: _PathLike, *, fsync: bool = True) -> None:
        self.path = os.fspath(path)
        self._fsync = fsync
        self._handle: Optional[TextIO] = open(self.path, "a", encoding="utf-8")

    def append_line(self, text: str) -> None:
        """Append ``text`` plus a newline, durably."""
        if self._handle is None:
            raise ValueError(f"appender for {self.path!r} is closed")
        self._handle.write(text + "\n")
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())

    @property
    def closed(self) -> bool:
        return self._handle is None

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.flush()
                if self._fsync:
                    os.fsync(self._handle.fileno())
            finally:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "DurableAppender":
        return self

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()


def append_durable(path: _PathLike, line: str, *, fsync: bool = True) -> None:
    """One-shot durable append of a single line (open, write, fsync, close)."""
    with DurableAppender(path, fsync=fsync) as appender:
        appender.append_line(line)


__all__ = [
    "DurableAppender",
    "append_durable",
    "write_atomic",
]
