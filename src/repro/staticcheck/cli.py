"""The ``python -m repro lint`` entry point.

Exit codes: 0 clean, 1 findings, 2 usage/internal error — so the CI
gate is a bare invocation.  ``--json`` emits the machine-readable
report (schema :data:`repro.staticcheck.core.LINT_SCHEMA_VERSION`);
``--write-baseline`` and ``--update-wire-snapshot`` refresh the two
committed ledgers and are meant to be run deliberately, with the diff
reviewed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.staticcheck.atomicwrite import AtomicWriteChecker
from repro.staticcheck.baseline import (
    DEFAULT_BASELINE_PATH,
    load_baseline,
    write_baseline,
)
from repro.staticcheck.core import Checker, Project, run_checks
from repro.staticcheck.determinism import DeterminismChecker
from repro.staticcheck.epoch import EpochContractChecker
from repro.staticcheck.experiments import ExperimentRegistryChecker
from repro.staticcheck.floatorder import FloatOrderChecker
from repro.staticcheck.wire import (
    DEFAULT_SNAPSHOT_PATH,
    WireFormatChecker,
    build_snapshot,
)

#: The default scan root: the installed ``repro`` package itself.
PACKAGE_ROOT = Path(__file__).resolve().parent.parent


def all_checkers(snapshot_path: Optional[Path] = None) -> list[Checker]:
    return [
        EpochContractChecker(),
        DeterminismChecker(),
        FloatOrderChecker(),
        WireFormatChecker(snapshot_path),
        ExperimentRegistryChecker(),
        AtomicWriteChecker(),
    ]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help=(
            "files or directories to scan (default: the repro package "
            "source tree)"
        ),
    )
    parser.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="emit the JSON report (to PATH, or stdout when bare)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "baseline file of grandfathered findings "
            f"(default: {DEFAULT_BASELINE_PATH.name} beside the checkers)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the committed baseline (report grandfathered findings too)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline to grandfather every current finding",
    )
    parser.add_argument(
        "--update-wire-snapshot",
        action="store_true",
        help="rewrite wire_snapshot.json from the current to_dict shapes",
    )
    parser.add_argument(
        "--check",
        action="append",
        default=None,
        metavar="NAME",
        help="run only this checker (repeatable)",
    )
    parser.add_argument(
        "--list-checks",
        action="store_true",
        help="list available checkers and exit",
    )


def run_lint(args: argparse.Namespace) -> int:
    checkers = all_checkers()
    if args.list_checks:
        for checker in checkers:
            print(f"{checker.name:22s} {checker.description}")
        return 0
    if args.check:
        by_name = {c.name: c for c in checkers}
        unknown = [name for name in args.check if name not in by_name]
        if unknown:
            print(
                f"repro lint: unknown check(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(by_name))})",
                file=sys.stderr,
            )
            return 2
        checkers = [by_name[name] for name in args.check]

    roots = list(args.paths) or [PACKAGE_ROOT]
    missing = [str(r) for r in roots if not Path(r).exists()]
    if missing:
        print(f"repro lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    # Display paths relative to the tree that contains src/repro, so
    # baseline keys are stable regardless of the invocation cwd.
    display_root = PACKAGE_ROOT.parent.parent
    project = Project(roots, display_root=display_root)

    if args.update_wire_snapshot:
        payload = build_snapshot(project)
        # repro-lint: disable=atomic-write -- committed ledger rewritten deliberately under version control; a torn write shows up as a git diff, not silent damage
        DEFAULT_SNAPSHOT_PATH.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(
            f"wrote {DEFAULT_SNAPSHOT_PATH} "
            f"({len(payload['classes'])} wire classes)"
        )

    baseline_path = args.baseline or DEFAULT_BASELINE_PATH
    baseline_keys = None if args.no_baseline else load_baseline(baseline_path)

    result = run_checks(project, checkers, baseline_keys=baseline_keys)

    if args.write_baseline:
        write_baseline(baseline_path, result.findings)
        print(f"wrote {baseline_path} ({len(result.findings)} findings baselined)")
        return 0

    if args.json is not None:
        report = json.dumps(result.to_dict(), indent=2, sort_keys=True)
        if args.json == "-":
            print(report)
        else:
            # repro-lint: disable=atomic-write -- one-shot diagnostic report for the caller that asked for it; nothing downstream trusts it to be intact
            Path(args.json).write_text(report + "\n", encoding="utf-8")

    if args.json != "-":
        for finding in result.findings:
            print(finding.render())
        tail = (
            f"repro lint: {len(result.findings)} finding(s) in "
            f"{result.files_scanned} files"
        )
        extras = []
        if result.suppressed:
            extras.append(f"{len(result.suppressed)} suppressed")
        if result.baselined:
            extras.append(f"{len(result.baselined)} baselined")
        if extras:
            tail += f" ({', '.join(extras)})"
        print(tail)
    return 1 if result.findings else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="project-specific static analysis for the repro tree",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
