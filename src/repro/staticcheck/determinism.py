"""The determinism checker: no hidden entropy in the simulator.

Every result in this repo is defined by ``(workload, seed, scheduler)``
— the golden-trace corpus, the dual-engine fingerprint equality, and
the perf-gate comparisons all assume a fixed seed reproduces the exact
dispatch log.  Three classes of code break that silently:

* **wall-clock reads** (``time.time``, ``datetime.now``, monotonic and
  perf counters) leaking into charged costs or traces;
* **ambient entropy**: module-level ``random.*`` (the shared unseeded
  global), ``random.Random()`` with no seed argument, ``os.urandom``,
  ``uuid.uuid4``, ``secrets``, ``numpy.random`` module-level calls;
* **order-dependent iteration over unordered containers**: a ``for``
  over a set literal / ``set()`` result / a ``self`` attribute
  initialised as a set, where the loop's visitation order can leak
  into heaps, traces, or tie-breaks.  ``sorted(...)``-wrapped
  iteration is exempt; order-insensitive folds (``sum``/``min``/
  ``max`` over the set) still get flagged and should carry a
  ``repro-lint: disable=determinism`` suppression comment so the
  insensitivity argument is written down next to the loop.
* **identity in ordering**: ``id(...)`` inside a ``key=`` of
  ``sorted``/``min``/``max``/``list.sort`` — address-order ties differ
  across runs.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.staticcheck.core import (
    Checker,
    Finding,
    ModuleSource,
    Project,
    call_name,
)

#: Dotted call targets that read ambient time or entropy.
FORBIDDEN_CALLS = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "time.monotonic": "wall-clock read",
    "time.monotonic_ns": "wall-clock read",
    "time.perf_counter": "wall-clock read",
    "time.perf_counter_ns": "wall-clock read",
    "time.process_time": "wall-clock read",
    "time.process_time_ns": "wall-clock read",
    "datetime.now": "wall-clock read",
    "datetime.utcnow": "wall-clock read",
    "datetime.today": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "os.urandom": "ambient entropy",
    "uuid.uuid1": "ambient entropy",
    "uuid.uuid4": "ambient entropy",
    "secrets.token_bytes": "ambient entropy",
    "secrets.token_hex": "ambient entropy",
    "secrets.randbelow": "ambient entropy",
    "numpy.random.rand": "unseeded global RNG",
    "numpy.random.randn": "unseeded global RNG",
    "numpy.random.randint": "unseeded global RNG",
    "numpy.random.random": "unseeded global RNG",
    "numpy.random.choice": "unseeded global RNG",
    "numpy.random.shuffle": "unseeded global RNG",
    "np.random.rand": "unseeded global RNG",
    "np.random.randn": "unseeded global RNG",
    "np.random.randint": "unseeded global RNG",
    "np.random.random": "unseeded global RNG",
    "np.random.choice": "unseeded global RNG",
    "np.random.shuffle": "unseeded global RNG",
}

#: ``random.<fn>`` module-level functions (the shared global RNG).
GLOBAL_RANDOM_FNS = frozenset(
    {
        "random",
        "uniform",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "gauss",
        "expovariate",
        "normalvariate",
        "betavariate",
        "getrandbits",
        "triangular",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
        "lognormvariate",
        "seed",
    }
)

#: Order-insensitive consumers a set may legitimately feed (still
#: flagged — the suppression documents the insensitivity argument —
#: but named in the message so the fix is obvious).
_SET_SOURCES = ("set", "frozenset")


def _is_set_expr(node: ast.AST, set_attrs: set[str]) -> bool:
    """Is ``node`` statically known to produce an unordered set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name in _SET_SOURCES:
            return True
        if name in ("list", "tuple", "iter", "reversed", "enumerate") and node.args:
            # list(self._pending_set) iterates in the same hash order
            return _is_set_expr(node.args[0], set_attrs)
        return False
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr in set_attrs
    ):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # set algebra: s1 | s2, s1 - s2 ... unordered if either side is
        return _is_set_expr(node.left, set_attrs) or _is_set_expr(
            node.right, set_attrs
        )
    return False


def _set_attrs_of_module(tree: ast.Module) -> set[str]:
    """``self.<attr>`` names initialised as sets anywhere in the module.

    Collected module-wide rather than per-class: a false attribution
    across classes in one file is possible but harmless in practice,
    and it keeps the pass flow-free.
    """
    attrs: set[str] = set()
    for node in ast.walk(tree):
        target: Optional[ast.AST] = None
        value: Optional[ast.AST] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        if target is None or value is None:
            continue
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            if isinstance(value, (ast.Set, ast.SetComp)):
                attrs.add(target.attr)
            elif isinstance(value, ast.Call) and call_name(value) in _SET_SOURCES:
                attrs.add(target.attr)
    return attrs


def _sorted_wrapped(parents: list[ast.AST]) -> bool:
    """Is the innermost enclosing call ``sorted(...)``?"""
    for parent in reversed(parents):
        if isinstance(parent, ast.Call):
            return call_name(parent) == "sorted"
    return False


class _Visitor(ast.NodeVisitor):
    def __init__(self, checker_name: str, module: ModuleSource) -> None:
        self.check = checker_name
        self.module = module
        self.findings: list[Finding] = []
        self.set_attrs = (
            _set_attrs_of_module(module.tree) if module.tree is not None else set()
        )
        self._scope: list[str] = []

    # -- scope bookkeeping so findings carry a useful symbol ------------
    def _symbol(self) -> str:
        return ".".join(self._scope)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                check=self.check,
                path=self.module.rel_path,
                line=getattr(node, "lineno", 1),
                symbol=self._symbol(),
                message=message,
            )
        )

    # -- calls ----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = call_name(node)
        if name is not None:
            reason = FORBIDDEN_CALLS.get(name)
            if reason is not None:
                self._flag(
                    node,
                    f"{name}() is a {reason}; derive the value from virtual "
                    "time or a seeded RNG (suppress only for diagnostics "
                    "that never feed charged costs or traces)",
                )
            elif name.startswith("random.") and name.split(".", 1)[1] in (
                GLOBAL_RANDOM_FNS
            ):
                self._flag(
                    node,
                    f"{name}() uses the shared global RNG; construct a "
                    "random.Random(seed) owned by the component instead",
                )
            elif name in ("random.Random", "Random") and not node.args:
                has_seed_kw = any(k.arg == "seed" for k in node.keywords)
                if not has_seed_kw:
                    self._flag(
                        node,
                        "random.Random() without a seed draws from OS "
                        "entropy; pass an explicit seed",
                    )
        # id() in sort keys
        if name in ("sorted", "min", "max") or (
            isinstance(node.func, ast.Attribute) and node.func.attr == "sort"
        ):
            for keyword in node.keywords:
                if keyword.arg == "key" and self._mentions_id(keyword.value):
                    self._flag(
                        keyword.value,
                        "id() in a sort key orders by object address, which "
                        "differs across runs; use a stable field (tid, "
                        "registration order) instead",
                    )
        self.generic_visit(node)

    @staticmethod
    def _mentions_id(node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "id"
            ):
                return True
        return False

    # -- iteration over unordered containers ----------------------------
    def _flag_iteration(self, iterable: ast.AST, context: str) -> None:
        if _is_set_expr(iterable, self.set_attrs):
            self._flag(
                iterable,
                f"{context} iterates a set in hash order; wrap in "
                "sorted(...) if order can reach a heap/trace/tie-break, "
                "or suppress with the order-insensitivity argument",
            )

    def visit_For(self, node: ast.For) -> None:
        self._flag_iteration(node.iter, "for loop")
        self.generic_visit(node)

    def visit_comprehension_iter(self, node: ast.AST) -> None:
        for generator in getattr(node, "generators", []):
            self._flag_iteration(generator.iter, "comprehension")

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self.visit_comprehension_iter(node)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self.visit_comprehension_iter(node)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self.visit_comprehension_iter(node)
        self.generic_visit(node)


class DeterminismChecker(Checker):
    name = "determinism"
    description = (
        "no wall-clock reads, ambient entropy, set-order iteration, or "
        "id()-based ordering under src/repro/"
    )

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for module in project.modules:
            if module.tree is None:
                continue
            visitor = _Visitor(self.name, module)
            tree = _strip_sorted_sets(module.tree)
            visitor.visit(tree)
            findings.extend(visitor.findings)
        return findings


def _strip_sorted_sets(tree: ast.Module) -> ast.Module:
    """Replace ``sorted(<set-expr>, ...)`` arguments with a placeholder
    so set-iteration checks don't fire inside the approved idiom.

    Only the *iterable argument position* of ``sorted``/``list``/
    ``tuple``/``len``/``sum``/``min``/``max`` wrapping is neutral for
    ``sorted``; ``list(set_expr)``/``sum``/``min``/``max`` stay flagged
    when the set feeds a ``for`` — but direct one-shot wrapping of a
    set in ``sorted()`` is exempted here.
    """

    class Strip(ast.NodeTransformer):
        def visit_Call(self, node: ast.Call) -> ast.AST:
            self.generic_visit(node)
            if call_name(node) == "sorted" and node.args:
                first = node.args[0]
                placeholder = ast.copy_location(
                    ast.Name(id="__repro_lint_sorted__", ctx=ast.Load()), first
                )
                node.args[0] = placeholder
            return node

    import copy

    return ast.fix_missing_locations(Strip().visit(copy.deepcopy(tree)))


__all__ = ["DeterminismChecker", "FORBIDDEN_CALLS", "GLOBAL_RANDOM_FNS"]
