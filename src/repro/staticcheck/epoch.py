"""The epoch-contract checker: a static race detector for stale batches.

The run-to-horizon engine snapshots ``Scheduler.state_epoch`` before
dispatching a batch and re-validates it afterwards; a pick-relevant
mutation that fails to bump the epoch makes the engine replay a stale
dispatch plan — silently, because nothing crashes.  PR 4's dynamic
differential suite catches this only when a 200-example hypothesis run
happens to hit the window.  This checker proves the contract shape
statically.

Scheduler classes opt in by declaring two **literal** class attributes
(read by AST, never imported):

``PICK_RELEVANT_STATE``
    a ``frozenset({...})`` of ``self`` attribute names whose mutation
    must be covered by an epoch bump (ready heaps, pending deques,
    aggregates the picker reads).

``EPOCH_EXEMPT``
    a ``{method_name: reason}`` dict of methods allowed to mutate
    registered state without bumping — each with a mandatory prose
    reason (pick-time cursor replayed by ``note_batched_picks``,
    helper only called under a caller's bump, ...).  An empty reason
    is itself a finding.

Both are inherited: a subclass's effective registry is the union along
the (project-local) MRO.  A method *bumps* if its body assigns
``self.state_epoch``, calls ``self._bump_epoch()``, or calls another
method (via ``self``/``super()``) that transitively bumps — a fixpoint
over the class table, so ``on_add -> _track_reservation ->
_reexamine -> bump`` is recognised without flow analysis.

Mutation of a registered attribute means: assignment or ``del`` of
``self.attr`` (including subscripts), or calling a method on it that is
not in the read-only whitelist below.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from repro.staticcheck.core import (
    Checker,
    Finding,
    ModuleSource,
    Project,
    call_name,
    dotted_name,
    is_self_attr,
    literal_str_dict,
    literal_str_set,
)

#: Methods that may be called on registered state without counting as a
#: mutation.  Deliberately a whitelist: an unknown method on a ready
#: heap is assumed mutating until proven otherwise.
READONLY_METHODS = frozenset(
    {
        "get",
        "peek",
        "keys",
        "values",
        "items",
        "copy",
        "count",
        "index",
        "live_sorted",
        "threads",
        "ready_in_order",
        "total",
        "is_empty",
        "__contains__",
        "__len__",
    }
)

#: Stdlib helpers that mutate a container passed by position.
HEAP_MUTATORS = frozenset(
    {
        "heapq.heappush",
        "heapq.heappop",
        "heapq.heapify",
        "heapq.heapreplace",
        "heapq.heappushpop",
    }
)

REGISTRY_ATTR = "PICK_RELEVANT_STATE"
EXEMPT_ATTR = "EPOCH_EXEMPT"
EPOCH_FIELD = "state_epoch"
BUMP_HELPER = "_bump_epoch"


@dataclass
class ClassInfo:
    """One class definition plus its lint-relevant structure."""

    name: str
    module: ModuleSource
    node: ast.ClassDef
    base_names: list[str] = field(default_factory=list)
    registry: Optional[set[str]] = None
    registry_line: int = 0
    exempt: Optional[dict[str, str]] = None
    exempt_line: int = 0
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: resolved project-local MRO (self first), filled by the checker
    mro: list["ClassInfo"] = field(default_factory=list)


def _collect_classes(project: Project) -> dict[str, list[ClassInfo]]:
    """All class definitions in the project, keyed by bare name."""
    table: dict[str, list[ClassInfo]] = {}
    for module in project.modules:
        if module.tree is None:
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            info = ClassInfo(name=node.name, module=module, node=node)
            for base in node.bases:
                name = dotted_name(base)
                if name is not None:
                    info.base_names.append(name.rsplit(".", 1)[-1])
            for statement in node.body:
                if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
                    target = statement.targets[0]
                    if isinstance(target, ast.Name):
                        if target.id == REGISTRY_ATTR:
                            info.registry = literal_str_set(statement.value)
                            info.registry_line = statement.lineno
                        elif target.id == EXEMPT_ATTR:
                            info.exempt = literal_str_dict(statement.value)
                            info.exempt_line = statement.lineno
                elif isinstance(
                    statement, (ast.FunctionDef, ast.AsyncFunctionDef)
                ) and isinstance(statement, ast.FunctionDef):
                    info.methods[statement.name] = statement
            table.setdefault(node.name, []).append(info)
    return table


def _resolve_mro(info: ClassInfo, table: dict[str, list[ClassInfo]]) -> list[ClassInfo]:
    """Project-local linearisation: self, then bases depth-first.

    Name-based (imports are not followed); ambiguity (two project
    classes sharing a bare name in the hierarchy) takes the first in
    path order, which is deterministic.
    """
    seen: set[int] = set()
    order: list[ClassInfo] = []

    def visit(current: ClassInfo) -> None:
        if id(current) in seen:
            return
        seen.add(id(current))
        order.append(current)
        for base_name in current.base_names:
            for candidate in table.get(base_name, []):
                visit(candidate)
                break

    visit(info)
    return order


def _effective_registry(mro: list[ClassInfo]) -> set[str]:
    out: set[str] = set()
    for info in mro:
        if info.registry:
            out |= info.registry
    return out


def _effective_exempt(mro: list[ClassInfo]) -> dict[str, str]:
    out: dict[str, str] = {}
    # reversed: nearer classes override inherited reasons
    for info in reversed(mro):
        if info.exempt:
            out.update(info.exempt)
    return out


def _direct_bump(method: ast.FunctionDef) -> bool:
    """Does the body itself touch the epoch (assignment or helper)?"""
    for node in ast.walk(method):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if is_self_attr(target, {EPOCH_FIELD}):
                    return True
        elif isinstance(node, ast.Call):
            name = call_name(node)
            if name in (f"self.{BUMP_HELPER}", f"super().{BUMP_HELPER}"):
                return True
    return False


def _called_methods(method: ast.FunctionDef) -> set[str]:
    """Names of methods invoked via ``self.x()`` or ``super().x()``."""
    out: set[str] = set()
    for node in ast.walk(method):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute):
            owner = func.value
            if isinstance(owner, ast.Name) and owner.id == "self":
                out.add(func.attr)
            elif (
                isinstance(owner, ast.Call)
                and isinstance(owner.func, ast.Name)
                and owner.func.id == "super"
            ):
                out.add(func.attr)
    return out


def _all_methods(mro: list[ClassInfo]) -> dict[str, ast.FunctionDef]:
    """Effective method table: nearest definition along the MRO wins
    for lookup, but *every* reachable override is kept for the bump
    fixpoint (``super().m()`` may land on any of them; treating a call
    as bumping if any version bumps is the sound direction — it can
    only under-report, never mis-flag correct code)."""
    table: dict[str, ast.FunctionDef] = {}
    for info in reversed(mro):
        table.update(info.methods)
    return table


def _bump_set(mro: list[ClassInfo]) -> set[str]:
    """Fixpoint of method names that (transitively) bump the epoch."""
    methods: dict[str, list[ast.FunctionDef]] = {}
    for info in mro:
        for name, fn in info.methods.items():
            methods.setdefault(name, []).append(fn)
    bumps: set[str] = set()
    for name, versions in methods.items():
        if any(_direct_bump(fn) for fn in versions):
            bumps.add(name)
    changed = True
    while changed:
        changed = False
        for name, versions in methods.items():
            if name in bumps:
                continue
            for fn in versions:
                if _called_methods(fn) & bumps:
                    bumps.add(name)
                    changed = True
                    break
    return bumps


def _mutations(method: ast.FunctionDef, registry: set[str]) -> list[tuple[int, str, str]]:
    """(line, attr, how) for each mutation of registered state."""
    out: list[tuple[int, str, str]] = []

    def registered_target(node: ast.AST) -> Optional[str]:
        attr = is_self_attr(node, registry)
        if attr is not None:
            return attr
        if isinstance(node, ast.Subscript):
            return is_self_attr(node.value, registry)
        if isinstance(node, (ast.Tuple, ast.List)):
            for element in node.elts:
                found = registered_target(element)
                if found is not None:
                    return found
        if isinstance(node, ast.Starred):
            return registered_target(node.value)
        return None

    for node in ast.walk(method):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                attr = registered_target(target)
                if attr is not None:
                    out.append((node.lineno, attr, "assignment"))
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            attr = registered_target(node.target)
            if attr is not None:
                out.append((node.lineno, attr, "assignment"))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                attr = registered_target(target)
                if attr is not None:
                    out.append((node.lineno, attr, "del"))
        elif isinstance(node, ast.Call):
            func = node.func
            # heapq.heappush(self._heap, ...)-style: the registered
            # attr passed by position to a known mutating helper.
            # Checked before the method-call case — these helpers are
            # themselves Attribute calls (on the module), so an
            # else-branch here would never see them.
            name = call_name(node)
            if name in HEAP_MUTATORS:
                for argument in node.args:
                    attr = is_self_attr(argument, registry)
                    if attr is not None:
                        out.append((node.lineno, attr, name))
            elif isinstance(func, ast.Attribute) and func.attr not in READONLY_METHODS:
                attr = is_self_attr(func.value, registry)
                if attr is not None:
                    out.append((node.lineno, attr, f".{func.attr}()"))
    return out


class EpochContractChecker(Checker):
    name = "epoch-contract"
    description = (
        "pick-relevant scheduler state may only be mutated under a "
        "reachable state_epoch bump (PICK_RELEVANT_STATE registry)"
    )

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        table = _collect_classes(project)
        schedulers: list[ClassInfo] = []
        for infos in table.values():
            for info in infos:
                info.mro = _resolve_mro(info, table)
                if any(c.registry is not None or c.registry_line for c in info.mro):
                    schedulers.append(info)

        for info in sorted(
            schedulers, key=lambda c: (c.module.rel_path, c.node.lineno)
        ):
            registry = _effective_registry(info.mro)
            exempt = _effective_exempt(info.mro)
            bumps = _bump_set(info.mro)

            for method_name, reason in (info.exempt or {}).items():
                if not reason.strip():
                    findings.append(
                        Finding(
                            check=self.name,
                            path=info.module.rel_path,
                            line=info.exempt_line,
                            symbol=f"{info.name}.{method_name}",
                            message=(
                                f"EPOCH_EXEMPT entry for '{method_name}' has "
                                "an empty reason; every exemption must say why"
                            ),
                        )
                    )
            if info.registry_line and info.registry is None:
                findings.append(
                    Finding(
                        check=self.name,
                        path=info.module.rel_path,
                        line=info.registry_line,
                        symbol=info.name,
                        message=(
                            f"{REGISTRY_ATTR} must be a literal frozenset "
                            "of attribute-name strings"
                        ),
                    )
                )
                continue
            if info.exempt_line and info.exempt is None:
                findings.append(
                    Finding(
                        check=self.name,
                        path=info.module.rel_path,
                        line=info.exempt_line,
                        symbol=info.name,
                        message=(
                            f"{EXEMPT_ATTR} must be a literal dict of "
                            "method-name -> reason strings"
                        ),
                    )
                )
                continue

            for method_name, method in sorted(info.methods.items()):
                if method_name == "__init__":
                    continue
                if method_name in exempt:
                    continue
                if method_name in bumps:
                    continue
                mutations = _mutations(method, registry)
                if not mutations:
                    continue
                line, attr, how = mutations[0]
                extra = (
                    "" if len(mutations) == 1 else f" (+{len(mutations) - 1} more)"
                )
                findings.append(
                    Finding(
                        check=self.name,
                        path=info.module.rel_path,
                        line=line,
                        symbol=f"{info.name}.{method_name}",
                        message=(
                            f"mutates pick-relevant state 'self.{attr}' via "
                            f"{how}{extra} without a reachable state_epoch "
                            "bump; bump the epoch, route through a bumping "
                            "method, or add an EPOCH_EXEMPT entry with a "
                            "reason"
                        ),
                    )
                )
        return findings


__all__ = ["EpochContractChecker", "READONLY_METHODS"]
