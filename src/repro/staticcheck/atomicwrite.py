"""The atomic-write checker: no raw file writes outside the helper.

Artifacts in this repo are contracts — the bench baseline, the perf
history, golden corpora, sweep results — and a raw ``open(path, "w")``
torn by a crash (or by two concurrent runs) leaves a half-written file
that *parses as damage* somewhere downstream, often much later.
:mod:`repro.core.artifacts` exists so every durable byte goes through
one audited path: ``write_atomic`` (temp file + fsync + ``os.replace``)
for whole-file writes, ``append_durable`` / ``DurableAppender`` for
append-only logs and journals.

This pass flags the two ways Python code sidesteps that helper:

* ``open(...)`` with a write-capable mode — a constant mode string
  containing ``w``, ``a``, ``x`` or ``+``, whether passed as the
  second positional argument or as ``mode=``;
* ``<path>.write_text(...)`` — pathlib's one-shot write, which is a
  plain truncate-then-write underneath.

Read-mode opens are untouched, and non-constant modes are given the
benefit of the doubt (the pass is flow-free).  The helper module
itself (``repro/core/artifacts.py``) is exempt by construction — it is
the single intentional home of raw write-mode ``open()``.  Anything
else that genuinely must bypass the helper (e.g. diagnostics whose
torn remains are harmless) carries a justified ``atomic-write``
suppression comment, so the argument is written down at the call site.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.staticcheck.core import (
    Checker,
    Finding,
    ModuleSource,
    Project,
    call_name,
)

#: Mode-string characters that make an ``open()`` write-capable.
WRITE_MODE_CHARS = frozenset("wax+")

#: Modules allowed to hold raw write-mode opens (the helper itself).
EXEMPT_SUFFIXES = ("core/artifacts.py",)


def _write_mode(node: ast.Call) -> Optional[str]:
    """The constant mode string of a write-capable ``open()``, if any."""
    mode_node: Optional[ast.expr] = None
    if len(node.args) >= 2:
        mode_node = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode_node = keyword.value
    if (
        isinstance(mode_node, ast.Constant)
        and isinstance(mode_node.value, str)
        and WRITE_MODE_CHARS.intersection(mode_node.value)
    ):
        return mode_node.value
    return None


class _Visitor(ast.NodeVisitor):
    def __init__(self, checker_name: str, module: ModuleSource) -> None:
        self.check = checker_name
        self.module = module
        self.findings: list[Finding] = []
        self._scope: list[str] = []

    def _symbol(self) -> str:
        return ".".join(self._scope)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                check=self.check,
                path=self.module.rel_path,
                line=getattr(node, "lineno", 1),
                symbol=self._symbol(),
                message=message,
            )
        )

    def visit_Call(self, node: ast.Call) -> None:
        name = call_name(node)
        if name in ("open", "os.fdopen", "io.open"):
            mode = _write_mode(node)
            if mode is not None:
                self._flag(
                    node,
                    f"raw {name}(..., {mode!r}) can tear on crash; route "
                    "the write through repro.core.artifacts (write_atomic "
                    "for whole files, append_durable/DurableAppender for "
                    "logs)",
                )
        elif isinstance(node.func, ast.Attribute) and node.func.attr == "write_text":
            self._flag(
                node,
                ".write_text() truncates in place and can tear on crash; "
                "use repro.core.artifacts.write_atomic instead",
            )
        self.generic_visit(node)


class AtomicWriteChecker(Checker):
    name = "atomic-write"
    description = (
        "durable writes go through repro.core.artifacts (write_atomic / "
        "append_durable), not raw open()/write_text()"
    )

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for module in project.modules:
            if module.tree is None:
                continue
            if module.rel_path.endswith(EXEMPT_SUFFIXES):
                continue
            visitor = _Visitor(self.name, module)
            visitor.visit(module.tree)
            findings.extend(visitor.findings)
        return findings


__all__ = ["AtomicWriteChecker", "EXEMPT_SUFFIXES", "WRITE_MODE_CHARS"]
