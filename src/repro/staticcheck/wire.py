"""The wire-format checker: versioned, round-trippable serialisation.

Every persisted artifact in the repo — experiment results, golden
traces, bench records, sweep manifests — travels as a dict from a
``to_dict`` method and is re-read (possibly releases later) by a
``from_dict``.  The contract, established by
:class:`repro.analysis.results.ExperimentResult`, has three legs:

1. every ``to_dict`` class has a ``from_dict`` (no write-only formats
   that silently rot);
2. the module carries a ``*_SCHEMA_VERSION`` integer constant stamped
   into the payload;
3. when the *field set* of a ``to_dict`` changes, the version must be
   bumped — detected by diffing against a committed snapshot
   (``wire_snapshot.json``, refreshed via
   ``python -m repro lint --update-wire-snapshot`` and reviewed like a
   lockfile).

Field sets are extracted statically: string keys of dict literals
returned from (or built inside) ``to_dict``, plus ``out["key"] = ...``
subscript stores.  A ``to_dict`` whose keys cannot be determined
statically records ``null`` fields in the snapshot and is only checked
for legs 1 and 2.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Optional

from repro.staticcheck.core import Checker, Finding, Project

#: Wire format of the snapshot file itself.
SNAPSHOT_SCHEMA_VERSION = 1

DEFAULT_SNAPSHOT_PATH = Path(__file__).parent / "wire_snapshot.json"

VERSION_SUFFIX = "_SCHEMA_VERSION"


def _module_version_consts(tree: ast.Module) -> dict[str, int]:
    """Module-level ``*_SCHEMA_VERSION = <int>`` assignments."""
    out: dict[str, int] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and target.id.endswith(VERSION_SUFFIX):
                if isinstance(node.value, ast.Constant) and isinstance(
                    node.value.value, int
                ):
                    out[target.id] = node.value.value
    return out


def _to_dict_fields(method: ast.FunctionDef) -> Optional[list[str]]:
    """Statically-visible payload keys of a ``to_dict`` body.

    Union of constant string keys in dict literals and ``x["key"] =``
    stores.  ``None`` when nothing string-keyed is visible (dynamic
    construction) — the drift check is then skipped for this class.
    """
    keys: set[str] = set()
    saw_dynamic = False
    for node in ast.walk(method):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
                elif key is not None:
                    saw_dynamic = True
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    index = target.slice
                    if isinstance(index, ast.Constant) and isinstance(
                        index.value, str
                    ):
                        keys.add(index.value)
    if not keys and saw_dynamic:
        return None
    if not keys:
        return None
    return sorted(keys)


def _resolve_version_const(
    class_name: str, consts: dict[str, int]
) -> Optional[tuple[str, int]]:
    """Which ``*_SCHEMA_VERSION`` const covers ``class_name``.

    A module with exactly one const covers every wire class in it;
    with several, the const whose prefix (text before the suffix)
    appears in the upper-cased class name wins.
    """
    if len(consts) == 1:
        name, value = next(iter(consts.items()))
        return name, value
    upper = class_name.upper()
    for name, value in sorted(consts.items()):
        prefix = name[: -len(VERSION_SUFFIX)]
        if prefix and prefix in upper:
            return name, value
    return None


def collect_wire_classes(
    project: Project,
) -> list[dict]:
    """Every class with a ``to_dict``, with its statically-derived shape.

    Returns dicts with keys: ``key`` (``path::Class``), ``path``,
    ``line``, ``class_name``, ``fields``, ``has_from_dict``,
    ``version_const``/``version`` (``None`` when unresolvable), and
    ``module`` (the :class:`ModuleSource`, for suppression mapping).
    """
    out: list[dict] = []
    for module in project.modules:
        if module.tree is None:
            continue
        consts = _module_version_consts(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                s.name: s for s in node.body if isinstance(s, ast.FunctionDef)
            }
            to_dict = methods.get("to_dict")
            if to_dict is None:
                continue
            resolved = _resolve_version_const(node.name, consts)
            out.append(
                {
                    "key": f"{module.rel_path}::{node.name}",
                    "path": module.rel_path,
                    "line": to_dict.lineno,
                    "class_name": node.name,
                    "fields": _to_dict_fields(to_dict),
                    "has_from_dict": "from_dict" in methods,
                    "version_const": resolved[0] if resolved else None,
                    "version": resolved[1] if resolved else None,
                    "module": module,
                }
            )
    out.sort(key=lambda c: c["key"])
    return out


def build_snapshot(project: Project) -> dict:
    """The snapshot payload for ``--update-wire-snapshot``."""
    classes = {}
    for info in collect_wire_classes(project):
        if info["module"].suppression_for(WireFormatChecker.name, info["line"]):
            continue
        classes[info["key"]] = {
            "fields": info["fields"],
            "version_const": info["version_const"],
            "version": info["version"],
        }
    return {"schema_version": SNAPSHOT_SCHEMA_VERSION, "classes": classes}


def load_snapshot(path: Path) -> Optional[dict]:
    if not path.exists():
        return None
    return json.loads(path.read_text(encoding="utf-8"))


class WireFormatChecker(Checker):
    name = "wire-format"
    description = (
        "every to_dict has a from_dict and a *_SCHEMA_VERSION const, "
        "bumped whenever the field set drifts from wire_snapshot.json"
    )

    def __init__(self, snapshot_path: Optional[Path] = None) -> None:
        self.snapshot_path = snapshot_path or DEFAULT_SNAPSHOT_PATH

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        snapshot = load_snapshot(self.snapshot_path)
        known = (snapshot or {}).get("classes", {})

        for info in collect_wire_classes(project):
            path, line = info["path"], info["line"]
            symbol = info["class_name"]

            if not info["has_from_dict"]:
                findings.append(
                    Finding(
                        check=self.name,
                        path=path,
                        line=line,
                        symbol=symbol,
                        message=(
                            f"{symbol}.to_dict has no matching from_dict; "
                            "wire formats must round-trip (or suppress for "
                            "one-way diagnostic output)"
                        ),
                    )
                )
            if info["version_const"] is None:
                findings.append(
                    Finding(
                        check=self.name,
                        path=path,
                        line=line,
                        symbol=symbol,
                        message=(
                            f"no *_SCHEMA_VERSION constant covers {symbol}; "
                            "add one at module level and stamp it into the "
                            "payload"
                        ),
                    )
                )
                continue

            entry = known.get(info["key"])
            if entry is None:
                if snapshot is not None:
                    findings.append(
                        Finding(
                            check=self.name,
                            path=path,
                            line=line,
                            symbol=symbol,
                            message=(
                                f"{symbol} is not in the committed wire "
                                "snapshot; run 'python -m repro lint "
                                "--update-wire-snapshot' and commit the diff"
                            ),
                        )
                    )
                continue

            fields_now = info["fields"]
            fields_then = entry.get("fields")
            version_then = entry.get("version")
            drifted = (
                fields_now is not None
                and fields_then is not None
                and fields_now != fields_then
            )
            if drifted and info["version"] == version_then:
                added = sorted(set(fields_now) - set(fields_then))
                removed = sorted(set(fields_then) - set(fields_now))
                delta = []
                if added:
                    delta.append(f"added {', '.join(added)}")
                if removed:
                    delta.append(f"removed {', '.join(removed)}")
                findings.append(
                    Finding(
                        check=self.name,
                        path=path,
                        line=line,
                        symbol=symbol,
                        message=(
                            f"{symbol}.to_dict fields changed "
                            f"({'; '.join(delta)}) without bumping "
                            f"{info['version_const']}; bump it and refresh "
                            "the snapshot"
                        ),
                    )
                )
            elif drifted or info["version"] != version_then:
                findings.append(
                    Finding(
                        check=self.name,
                        path=path,
                        line=line,
                        symbol=symbol,
                        message=(
                            f"{symbol} drifted from the committed wire "
                            "snapshot (version bumped or shape changed); "
                            "run 'python -m repro lint "
                            "--update-wire-snapshot' and commit the diff"
                        ),
                    )
                )
        return findings


__all__ = [
    "DEFAULT_SNAPSHOT_PATH",
    "SNAPSHOT_SCHEMA_VERSION",
    "WireFormatChecker",
    "build_snapshot",
    "collect_wire_classes",
    "load_snapshot",
]
