"""Project-specific static analysis (``python -m repro lint``).

Five AST checkers prove the contracts the dynamic suites can only
sample: the scheduler epoch contract (:mod:`.epoch`), hot-path
determinism (:mod:`.determinism`), exact float evaluation order in
annotated controller modules (:mod:`.floatorder`), versioned wire
formats (:mod:`.wire`), and reproducible experiment registration
(:mod:`.experiments`).  :mod:`.core` is the framework (findings,
suppressions, runner), :mod:`.baseline` the grandfathered-debt ledger,
:mod:`.cli` the entry point.
"""

from repro.staticcheck.core import (
    Checker,
    Finding,
    LINT_SCHEMA_VERSION,
    LintResult,
    Project,
    run_checks,
)

__all__ = [
    "Checker",
    "Finding",
    "LINT_SCHEMA_VERSION",
    "LintResult",
    "Project",
    "run_checks",
]
