"""The experiment-registry checker: every experiment is reproducible.

The declarative registry (``@experiment`` + ``Param``) is the repo's
only entry point for paper figures and ablations, and PR 4's dual
kernel engines are only trustworthy while every experiment (a) lets
the caller choose the engine, (b) is seeded, and (c) stamps the
dispatch fingerprint into its result metadata so any run can be
compared bit-for-bit against any other.  This checker enforces all
three statically:

* the ``params=`` tuple of every ``@experiment`` must contain Params
  named ``engine`` and ``seed`` — resolved through module-level
  ``Param(...)`` assignments and project-local imports, so the shared
  ``ENGINE_PARAM``/``SEED_PARAM`` constants count;
* the experiment body — or a helper it (transitively) calls, resolved
  through the project-local call graph — must stamp
  ``dispatch_fingerprint`` (a call to ``dispatch_fingerprint(...)`` or
  a ``metadata["dispatch_fingerprint"] = ...`` store).
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.staticcheck.core import Checker, Finding, ModuleSource, Project, call_name

REQUIRED_PARAMS = ("engine", "seed")
FINGERPRINT = "dispatch_fingerprint"


def _decorator_call(node: ast.FunctionDef) -> Optional[ast.Call]:
    """The ``@experiment(...)`` decorator call, if present."""
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Call):
            name = call_name(decorator)
            if name is not None and name.rsplit(".", 1)[-1] == "experiment":
                return decorator
    return None


class _ModuleIndex:
    """Per-module symbol tables for static resolution."""

    def __init__(self, module: ModuleSource) -> None:
        self.module = module
        self.functions: dict[str, ast.FunctionDef] = {}
        self.assignments: dict[str, ast.AST] = {}
        #: local name -> (source module suffix, original name)
        self.imports: dict[str, tuple[str, str]] = {}
        if module.tree is None:
            return
        for node in module.tree.body:
            if isinstance(node, ast.FunctionDef):
                self.functions[node.name] = node
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    self.assignments[target.id] = node.value
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.imports[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )


class _Resolver:
    """Project-wide resolution of names to Param values and functions."""

    def __init__(self, project: Project) -> None:
        self.indexes = {m.rel_path: _ModuleIndex(m) for m in project.modules}
        self.by_suffix: dict[str, list[_ModuleIndex]] = {}
        for index in self.indexes.values():
            # repro/experiments/params.py -> repro.experiments.params
            dotted = index.module.rel_path[:-3].replace("/", ".")
            self.by_suffix.setdefault(dotted, []).append(index)

    def _imported_index(
        self, index: _ModuleIndex, name: str
    ) -> Optional[tuple[_ModuleIndex, str]]:
        imported = index.imports.get(name)
        if imported is None:
            return None
        source_module, original = imported
        for dotted, candidates in self.by_suffix.items():
            if dotted == source_module or dotted.endswith("." + source_module):
                return candidates[0], original
        # absolute import whose path is a suffix of the dotted name
        for dotted, candidates in self.by_suffix.items():
            if source_module.endswith(dotted.rsplit(".", 1)[-1]) and dotted.endswith(
                source_module.rsplit(".", 1)[-1]
            ):
                return candidates[0], original
        return None

    def resolve_value(
        self, index: _ModuleIndex, name: str, depth: int = 0
    ) -> Optional[ast.AST]:
        """The AST expression a module-level name is bound to, following
        project-local imports."""
        if depth > 4:
            return None
        if name in index.assignments:
            value = index.assignments[name]
            # follow alias chains (``_ENGINE_PARAM = ENGINE_PARAM``) in
            # the module that owns the assignment, not the caller's
            if isinstance(value, ast.Name):
                resolved = self.resolve_value(index, value.id, depth + 1)
                return resolved if resolved is not None else value
            return value
        imported = self._imported_index(index, name)
        if imported is not None:
            target_index, original = imported
            return self.resolve_value(target_index, original, depth + 1)
        return None

    def resolve_function(
        self, index: _ModuleIndex, name: str, depth: int = 0
    ) -> Optional[tuple[_ModuleIndex, ast.FunctionDef]]:
        if depth > 4:
            return None
        if name in index.functions:
            return index, index.functions[name]
        imported = self._imported_index(index, name)
        if imported is not None:
            target_index, original = imported
            return self.resolve_function(target_index, original, depth + 1)
        return None


def _param_name(node: ast.AST) -> Optional[str]:
    """The declared name of a ``Param("name", ...)`` call."""
    if not isinstance(node, ast.Call):
        return None
    name = call_name(node)
    if name is None or name.rsplit(".", 1)[-1] != "Param":
        return None
    if node.args and isinstance(node.args[0], ast.Constant):
        value = node.args[0].value
        if isinstance(value, str):
            return value
    for keyword in node.keywords:
        if keyword.arg == "name" and isinstance(keyword.value, ast.Constant):
            value = keyword.value.value
            if isinstance(value, str):
                return value
    return None


def _collect_param_names(
    resolver: _Resolver,
    index: _ModuleIndex,
    node: ast.AST,
    out: set[str],
    unresolved: list[str],
    depth: int = 0,
) -> None:
    """Names of every Param in a ``params=`` expression, following
    Name references, starred expansions, and tuple concatenation."""
    if depth > 6:
        unresolved.append("<depth limit>")
        return
    direct = _param_name(node)
    if direct is not None:
        out.add(direct)
        return
    if isinstance(node, (ast.Tuple, ast.List)):
        for element in node.elts:
            _collect_param_names(resolver, index, element, out, unresolved, depth + 1)
        return
    if isinstance(node, ast.Starred):
        _collect_param_names(resolver, index, node.value, out, unresolved, depth + 1)
        return
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        _collect_param_names(resolver, index, node.left, out, unresolved, depth + 1)
        _collect_param_names(resolver, index, node.right, out, unresolved, depth + 1)
        return
    if isinstance(node, ast.Name):
        value = resolver.resolve_value(index, node.id)
        if value is not None:
            _collect_param_names(resolver, index, value, out, unresolved, depth + 1)
        else:
            unresolved.append(node.id)
        return
    unresolved.append(ast.dump(node)[:40])


def _stamps_fingerprint(fn: ast.FunctionDef) -> bool:
    """Does this body stamp the fingerprint directly?"""
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name is not None and name.rsplit(".", 1)[-1] == FINGERPRINT:
                return True
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    index = target.slice
                    if (
                        isinstance(index, ast.Constant)
                        and index.value == FINGERPRINT
                    ):
                        return True
        elif isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and key.value == FINGERPRINT:
                    return True
    return False


def _called_function_names(fn: ast.FunctionDef) -> set[str]:
    """Bare-name calls (project-local helpers) made by this body."""
    out: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            out.add(node.func.id)
    return out


def _stamps_transitively(
    resolver: _Resolver,
    index: _ModuleIndex,
    fn: ast.FunctionDef,
    depth: int = 0,
    seen: Optional[set[str]] = None,
) -> bool:
    if seen is None:
        seen = set()
    key = f"{index.module.rel_path}::{fn.name}"
    if key in seen or depth > 5:
        return False
    seen.add(key)
    if _stamps_fingerprint(fn):
        return True
    for name in sorted(_called_function_names(fn)):
        resolved = resolver.resolve_function(index, name)
        if resolved is not None:
            helper_index, helper = resolved
            if _stamps_transitively(resolver, helper_index, helper, depth + 1, seen):
                return True
    return False


class ExperimentRegistryChecker(Checker):
    name = "experiment-registry"
    description = (
        "every @experiment exposes 'engine' and 'seed' params and "
        "stamps dispatch_fingerprint into its result metadata"
    )

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        resolver = _Resolver(project)
        for module in project.modules:
            if module.tree is None:
                continue
            index = resolver.indexes[module.rel_path]
            for node in module.tree.body:
                if not isinstance(node, ast.FunctionDef):
                    continue
                decorator = _decorator_call(node)
                if decorator is None:
                    continue
                params_expr = None
                for keyword in decorator.keywords:
                    if keyword.arg == "params":
                        params_expr = keyword.value
                names: set[str] = set()
                unresolved: list[str] = []
                if params_expr is not None:
                    _collect_param_names(
                        resolver, index, params_expr, names, unresolved
                    )
                for required in REQUIRED_PARAMS:
                    if required in names:
                        continue
                    hint = (
                        f" (could not statically resolve: "
                        f"{', '.join(sorted(set(unresolved)))})"
                        if unresolved
                        else ""
                    )
                    findings.append(
                        Finding(
                            check=self.name,
                            path=module.rel_path,
                            line=node.lineno,
                            symbol=node.name,
                            message=(
                                f"experiment does not expose a '{required}' "
                                f"param{hint}; reuse the shared "
                                "ENGINE_PARAM/SEED_PARAM declarations"
                            ),
                        )
                    )
                if not _stamps_transitively(resolver, index, node):
                    findings.append(
                        Finding(
                            check=self.name,
                            path=module.rel_path,
                            line=node.lineno,
                            symbol=node.name,
                            message=(
                                "experiment never stamps "
                                "dispatch_fingerprint into its result "
                                "metadata; build the system with "
                                "record_dispatches=True and stamp "
                                "dispatch_fingerprint(kernel)"
                            ),
                        )
                    )
        return findings


__all__ = ["ExperimentRegistryChecker", "REQUIRED_PARAMS"]
