"""Grandfathered-findings baseline for ``repro lint``.

When a checker lands after the code it polices, pre-existing findings
that are judged acceptable (e.g. the Adder's ``sum()`` over a handful
of controller outputs, written before the float-order boundary was
formalised) are recorded here instead of suppressed inline — the
baseline is the reviewed debt ledger, committed next to the checkers
and shrunk over time.

Entries are keyed by :meth:`repro.staticcheck.core.Finding.baseline_key`
(check + path + symbol + message, **not** the line number), so they
survive unrelated edits but never absorb a *new* violation: changing
the code enough to change the message re-surfaces the finding.  Each
key carries a count, so two identical findings in one symbol need two
baseline slots.

Refresh with ``python -m repro lint --write-baseline`` and review the
diff like a lockfile.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Sequence

from repro.staticcheck.core import Finding

BASELINE_SCHEMA_VERSION = 1

DEFAULT_BASELINE_PATH = Path(__file__).parent / "lint_baseline.json"


def load_baseline(path: Path) -> Optional[dict[str, int]]:
    """Baseline-key -> grandfathered count; ``None`` when absent."""
    if not path.exists():
        return None
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("schema_version") != BASELINE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported baseline schema {payload.get('schema_version')!r} "
            f"in {path} (expected {BASELINE_SCHEMA_VERSION})"
        )
    return {
        key: int(entry["count"]) for key, entry in payload.get("entries", {}).items()
    }


def build_baseline(findings: Sequence[Finding]) -> dict:
    """The payload for ``--write-baseline``: every finding, keyed and
    counted, with the human-readable identity kept alongside so the
    committed file reviews like prose."""
    entries: dict[str, dict] = {}
    for finding in sorted(findings, key=Finding.sort_key):
        key = finding.baseline_key()
        if key in entries:
            entries[key]["count"] += 1
        else:
            entries[key] = {
                "count": 1,
                "check": finding.check,
                "path": finding.path,
                "symbol": finding.symbol,
                "message": finding.message,
            }
    return {"schema_version": BASELINE_SCHEMA_VERSION, "entries": entries}


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    # repro-lint: disable=atomic-write -- committed ledger rewritten deliberately under version control; a torn write shows up as a git diff, not silent damage
    path.write_text(
        json.dumps(build_baseline(findings), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


__all__ = [
    "BASELINE_SCHEMA_VERSION",
    "DEFAULT_BASELINE_PATH",
    "build_baseline",
    "load_baseline",
    "write_baseline",
]
