"""The ``repro lint`` checker framework.

The perf arc (PRs 3-6) rests on contracts that ordinary linters cannot
see: every pick-relevant scheduler mutation must bump
``Scheduler.state_epoch`` (else run-to-horizon batches go silently
stale), hot paths must stay deterministic (no wall-clock reads, no
unseeded randomness, no set-order-dependent iteration), controller
arithmetic must preserve exact float evaluation order, wire formats
must version their schema, and every registered experiment must expose
the reproducibility knobs (``engine``/``seed``/fingerprint).  This
package is the static analogue of the dynamic differential suites: an
AST pass that proves (or flags) those contracts at review time instead
of via 200-example hypothesis hunts.

Architecture
------------
* :class:`ModuleSource` — one parsed file: path, source, AST, the
  per-line ``# repro-lint: disable=...`` suppressions and header
  annotations (``# float-order: exact``).
* :class:`Project` — every module under the scan roots, so checkers
  can resolve cross-module structure (the scheduler class hierarchy).
* :class:`Checker` — a named pass producing :class:`Finding`\\ s; the
  framework applies suppressions and the committed baseline, and the
  CLI (``python -m repro lint``) renders text or ``--json``.

Suppressions are deliberately expensive: every ``disable`` must carry
a justification after ``--`` (enforced by the always-on
``suppression`` meta-check), and suppressions that match nothing are
themselves findings, so dead waivers cannot accumulate.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

#: Wire format of ``repro lint --json`` output.
LINT_SCHEMA_VERSION = 1

#: The suppression comment grammar::
#:
#:     # repro-lint: disable=<check>[,<check>...] -- <justification>
#:
#: A suppression covers its own line, or — when the comment stands
#: alone on a line — the next line.  The justification is mandatory.
SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<checks>[\w\-,]+)"
    r"(?:\s+--\s*(?P<why>.*\S))?"
)

#: Module header annotation marking exact-float-order modules.
FLOAT_ORDER_RE = re.compile(r"#\s*float-order:\s*exact\b")

#: Name of the always-on meta check guarding the suppressions
#: themselves (bad or unused suppressions cannot be suppressed).
SUPPRESSION_CHECK = "suppression"


@dataclass(frozen=True)
class Finding:
    """One contract violation at one source location."""

    check: str
    path: str
    line: int
    message: str
    symbol: str = ""

    def sort_key(self) -> tuple[str, int, str, str]:
        return (self.path, self.line, self.check, self.message)

    def baseline_key(self) -> str:
        """Stable identity for baseline matching.

        Deliberately excludes the line number so grandfathered findings
        survive unrelated edits above them; includes the symbol and
        message so a *new* violation of the same check in the same file
        is never absorbed by an old waiver.
        """
        text = f"{self.check}|{self.path}|{self.symbol}|{self.message}"
        return hashlib.sha256(text.encode()).hexdigest()[:16]

    def render(self) -> str:
        where = f"{self.path}:{self.line}"
        symbol = f" [{self.symbol}]" if self.symbol else ""
        return f"{where}: {self.check}{symbol}: {self.message}"

    # repro-lint: disable=wire-format -- one-way diagnostic output for --json; findings are never deserialised
    def to_dict(self) -> dict:
        return {
            "check": self.check,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
            "key": self.baseline_key(),
        }


@dataclass
class Suppression:
    """One parsed ``# repro-lint: disable=...`` comment."""

    line: int
    checks: tuple[str, ...]
    justification: str
    #: Lines this suppression covers (its own, plus the next line when
    #: the comment stands alone).
    covers: tuple[int, ...]
    used: bool = False


class ModuleSource:
    """One parsed source file plus its lint-relevant annotations."""

    def __init__(self, path: Path, rel_path: str, text: str) -> None:
        self.path = path
        self.rel_path = rel_path
        self.text = text
        self.lines = text.splitlines()
        self.tree: Optional[ast.Module] = None
        self.parse_error: Optional[SyntaxError] = None
        try:
            self.tree = ast.parse(text, filename=str(path))
        except SyntaxError as error:
            self.parse_error = error
        self.suppressions = self._parse_suppressions()
        self.float_order_exact = any(
            FLOAT_ORDER_RE.search(line) for line in self.lines[:30]
        )

    def _parse_suppressions(self) -> list[Suppression]:
        suppressions: list[Suppression] = []
        for index, line in enumerate(self.lines, start=1):
            match = SUPPRESS_RE.search(line)
            if match is None:
                continue
            checks = tuple(
                c.strip() for c in match.group("checks").split(",") if c.strip()
            )
            justification = (match.group("why") or "").strip()
            standalone = line.strip().startswith("#")
            covers = (index, index + 1) if standalone else (index,)
            suppressions.append(
                Suppression(
                    line=index,
                    checks=checks,
                    justification=justification,
                    covers=covers,
                )
            )
        return suppressions

    def suppression_for(self, check: str, line: int) -> Optional[Suppression]:
        """The suppression covering ``check`` at ``line``, if any."""
        for suppression in self.suppressions:
            if line in suppression.covers and check in suppression.checks:
                return suppression
        return None


class Project:
    """Every module under the scan roots, parsed once."""

    def __init__(
        self, roots: Sequence[Path], *, display_root: Optional[Path] = None
    ) -> None:
        self.roots = [Path(root).resolve() for root in roots]
        self.display_root = (
            Path(display_root).resolve() if display_root is not None else None
        )
        self.modules: list[ModuleSource] = []
        for root in self.roots:
            for path in self._python_files(root):
                rel = self._relative(path)
                self.modules.append(
                    ModuleSource(path, rel, path.read_text(encoding="utf-8"))
                )
        self.modules.sort(key=lambda m: m.rel_path)

    def _python_files(self, root: Path) -> Iterable[Path]:
        if root.is_file():
            return [root] if root.suffix == ".py" else []
        return sorted(p for p in root.rglob("*.py") if "__pycache__" not in p.parts)

    def _relative(self, path: Path) -> str:
        base = self.display_root
        if base is not None:
            try:
                return path.resolve().relative_to(base).as_posix()
            except ValueError:
                pass
        return path.as_posix()


class Checker:
    """Base class for one lint pass.

    Subclasses set :attr:`name`/:attr:`description` and implement
    :meth:`check`, returning raw findings; the framework owns
    suppression and baseline handling.
    """

    name = "base"
    description = ""

    def check(self, project: Project) -> list[Finding]:
        raise NotImplementedError


@dataclass
class LintResult:
    """Outcome of one lint run, pre-rendered decisions included."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    checks_run: list[str] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    # repro-lint: disable=wire-format -- one-way diagnostic output for --json; reports are never deserialised
    def to_dict(self) -> dict:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.check] = counts.get(finding.check, 0) + 1
        return {
            "schema_version": LINT_SCHEMA_VERSION,
            "checks": list(self.checks_run),
            "files_scanned": self.files_scanned,
            "findings": [f.to_dict() for f in sorted(self.findings, key=Finding.sort_key)],
            "suppressed": len(self.suppressed),
            "baselined": len(self.baselined),
            "counts": dict(sorted(counts.items())),
        }


def _suppression_findings(
    project: Project, checks_run: Sequence[str]
) -> list[Finding]:
    """Meta-findings about the suppressions themselves.

    A ``disable`` without a justification is a violation on its own
    (waivers must explain themselves), and one that matched nothing is
    dead weight that would silently mask a future regression at that
    line.  Both are reported under the unsuppressable ``suppression``
    check.  A suppression is only "unused" if every check it names
    actually ran this invocation — a ``--check``-filtered run must not
    flag waivers belonging to the checkers it skipped.
    """
    findings: list[Finding] = []
    ran = set(checks_run)
    for module in project.modules:
        for suppression in module.suppressions:
            if not suppression.justification:
                findings.append(
                    Finding(
                        check=SUPPRESSION_CHECK,
                        path=module.rel_path,
                        line=suppression.line,
                        message=(
                            "suppression lacks a justification; write "
                            "'# repro-lint: disable=<check> -- <why>'"
                        ),
                    )
                )
            elif not suppression.used and set(suppression.checks) <= ran:
                findings.append(
                    Finding(
                        check=SUPPRESSION_CHECK,
                        path=module.rel_path,
                        line=suppression.line,
                        message=(
                            "unused suppression for "
                            f"{', '.join(suppression.checks)}: nothing was "
                            "flagged here; remove it"
                        ),
                    )
                )
    return findings


def run_checks(
    project: Project,
    checkers: Sequence[Checker],
    *,
    baseline_keys: Optional[dict[str, int]] = None,
) -> LintResult:
    """Run ``checkers`` over ``project`` and fold in suppressions/baseline.

    ``baseline_keys`` maps :meth:`Finding.baseline_key` to the number of
    grandfathered occurrences; matching findings are recorded but not
    counted against the run.
    """
    result = LintResult(checks_run=[c.name for c in checkers])
    result.files_scanned = len(project.modules)

    raw: list[Finding] = []
    for module in project.modules:
        if module.parse_error is not None:
            error = module.parse_error
            raw.append(
                Finding(
                    check="parse",
                    path=module.rel_path,
                    line=error.lineno or 1,
                    message=f"syntax error: {error.msg}",
                )
            )
    for checker in checkers:
        raw.extend(checker.check(project))

    modules_by_path = {m.rel_path: m for m in project.modules}
    remaining_baseline = dict(baseline_keys or {})
    for finding in sorted(raw, key=Finding.sort_key):
        module = modules_by_path.get(finding.path)
        if module is not None and finding.check != SUPPRESSION_CHECK:
            suppression = module.suppression_for(finding.check, finding.line)
            if suppression is not None:
                suppression.used = True
                result.suppressed.append(finding)
                continue
        key = finding.baseline_key()
        if remaining_baseline.get(key, 0) > 0:
            remaining_baseline[key] -= 1
            result.baselined.append(finding)
            continue
        result.findings.append(finding)

    # The meta-check runs after suppression matching so "unused" is
    # accurate; its findings are themselves unsuppressable.
    result.findings.extend(_suppression_findings(project, result.checks_run))
    result.findings.sort(key=Finding.sort_key)
    return result


# ----------------------------------------------------------------------
# small shared AST helpers
# ----------------------------------------------------------------------
def call_name(node: ast.Call) -> Optional[str]:
    """Dotted name of a call target (``a.b.c(...)`` -> ``"a.b.c"``)."""
    return dotted_name(node.func)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``Name``/``Attribute`` chains as a dotted string, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def is_self_attr(node: ast.AST, attrs: Optional[set[str]] = None) -> Optional[str]:
    """If ``node`` is ``self.<attr>`` (optionally restricted to
    ``attrs``), return the attribute name."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        if attrs is None or node.attr in attrs:
            return node.attr
    return None


def literal_str_set(node: ast.AST) -> Optional[set[str]]:
    """Evaluate a literal ``frozenset({...})``/``{...}``/tuple of string
    constants; ``None`` when the node is not such a literal."""
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name in ("frozenset", "set") and len(node.args) <= 1:
            if not node.args:
                return set()
            return literal_str_set(node.args[0])
        return None
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        out: set[str] = set()
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                out.add(element.value)
            else:
                return None
        return out
    return None


def literal_str_dict(node: ast.AST) -> Optional[dict[str, str]]:
    """Evaluate a literal ``{str: str}`` dict; ``None`` otherwise."""
    if not isinstance(node, ast.Dict):
        return None
    out: dict[str, str] = {}
    for key, value in zip(node.keys, node.values):
        if (
            isinstance(key, ast.Constant)
            and isinstance(key.value, str)
            and isinstance(value, ast.Constant)
            and isinstance(value.value, str)
        ):
            out[key.value] = value.value
        else:
            return None
    return out


__all__ = [
    "Checker",
    "Finding",
    "LINT_SCHEMA_VERSION",
    "LintResult",
    "ModuleSource",
    "Project",
    "SUPPRESSION_CHECK",
    "Suppression",
    "call_name",
    "dotted_name",
    "is_self_attr",
    "literal_str_dict",
    "literal_str_set",
    "run_checks",
]
