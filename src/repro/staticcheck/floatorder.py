"""The float-order checker: exact arithmetic order in annotated modules.

The PID controller, its replay estimator, and the SLO window math are
verified against goldens bit-for-bit: floating-point addition is not
associative, so "harmless" refactors — replacing an explicit left-fold
with ``sum()``, compensated summation via ``math.fsum``, hoisting a
numpy reduction, or rewriting ``a += b; a += c`` as ``a += b + c`` —
change the low bits and break golden-trace equality across machines
and releases.

Modules opt in with a header comment in the first 30 lines::

    # float-order: exact

Inside an annotated module the checker flags:

* builtin ``sum(...)`` and ``math.fsum(...)`` — both reorder or
  compensate relative to an explicit loop;
* numpy reductions (``np.sum``/``np.dot``/``np.cumsum``/``.sum()``
  etc.) and any numpy import at all — SIMD reductions pick their own
  association;
* reassociated accumulation: ``x += a + b`` (and ``x -= a - b`` ...),
  where the parenthesisation of the right-hand side chose an
  association the original serial updates did not have.

``statistics.fsum``-style helpers are treated like ``math.fsum``.  The
fix is an explicit loop in the intended order, or a suppression with
the argument for why association cannot matter (integer arithmetic,
single operand, ...).
"""

from __future__ import annotations

import ast

from repro.staticcheck.core import Checker, Finding, ModuleSource, Project, call_name

#: Call targets that reorder/compensate floating-point accumulation.
REORDERING_CALLS = frozenset(
    {
        "sum",
        "math.fsum",
        "statistics.fsum",
        "statistics.mean",
        "statistics.fmean",
        "np.sum",
        "np.dot",
        "np.cumsum",
        "np.mean",
        "np.average",
        "np.prod",
        "np.einsum",
        "numpy.sum",
        "numpy.dot",
        "numpy.cumsum",
        "numpy.mean",
        "numpy.average",
        "numpy.prod",
        "numpy.einsum",
    }
)

#: Method names that are numpy-style reductions when called on anything.
REDUCTION_METHODS = frozenset({"cumsum", "einsum"})

NUMPY_MODULES = ("numpy",)


class _Visitor(ast.NodeVisitor):
    def __init__(self, checker_name: str, module: ModuleSource) -> None:
        self.check = checker_name
        self.module = module
        self.findings: list[Finding] = []
        self._scope: list[str] = []

    def _symbol(self) -> str:
        return ".".join(self._scope)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                check=self.check,
                path=self.module.rel_path,
                line=getattr(node, "lineno", 1),
                symbol=self._symbol(),
                message=message,
            )
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".", 1)[0]
            if root in NUMPY_MODULES:
                self._flag(
                    node,
                    "numpy import in a float-order: exact module; SIMD "
                    "reductions choose their own association — keep this "
                    "module pure-python",
                )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        root = (node.module or "").split(".", 1)[0]
        if root in NUMPY_MODULES:
            self._flag(
                node,
                "numpy import in a float-order: exact module; SIMD "
                "reductions choose their own association — keep this "
                "module pure-python",
            )

    def visit_Call(self, node: ast.Call) -> None:
        name = call_name(node)
        if name in REORDERING_CALLS:
            self._flag(
                node,
                f"{name}() reorders/compensates accumulation; use an "
                "explicit loop in the intended order (float addition is "
                "not associative)",
            )
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in REDUCTION_METHODS
        ):
            self._flag(
                node,
                f".{node.func.attr}() is a reduction with unspecified "
                "association; use an explicit loop",
            )
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        # x += a + b  — the RHS association (a + b first) differs from
        # the serial x += a; x += b the goldens were produced with.
        if isinstance(node.op, (ast.Add, ast.Sub)) and isinstance(
            node.value, ast.BinOp
        ):
            if isinstance(node.value.op, (ast.Add, ast.Sub)):
                self._flag(
                    node,
                    "reassociated accumulation (augmented +=/-= with an "
                    "additive right-hand side); split into serial updates "
                    "so the evaluation order is explicit",
                )
        self.generic_visit(node)


class FloatOrderChecker(Checker):
    name = "float-order"
    description = (
        "modules annotated '# float-order: exact' must not introduce "
        "sum()/fsum/numpy reductions or reassociated accumulation"
    )

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for module in project.modules:
            if module.tree is None or not module.float_order_exact:
                continue
            visitor = _Visitor(self.name, module)
            visitor.visit(module.tree)
            findings.extend(visitor.findings)
        return findings


__all__ = ["FloatOrderChecker", "REORDERING_CALLS"]
