"""The pulse-response pipeline of Section 4.2 (Figures 6 and 7).

"The program is a simple pipeline of a producer and consumer connected
by a bounded buffer.  Both the producer and consumer loop for some
number of cycles before they enqueue or dequeue a block of data.  We
fix the allocation (cycles/sec) given to the producer by specifying a
reservation for it, and control the rate at which it produces data
(bytes/cycle).  For the consumer, we fix the rate of consumption, but
let the controller determine the allocation."

The producer's production rate follows a :class:`PulseSchedule`: three
rising pulses of increasing width (rate doubles, then falls back)
followed by three falling pulses from the doubled baseline, as in the
paper's Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.taxonomy import ThreadSpec
from repro.ipc.bounded_buffer import BoundedBuffer
from repro.sim.clock import US_PER_SEC, seconds
from repro.sim.requests import Compute, Get, Put
from repro.sim.thread import SimThread, ThreadEnv
from repro.system import RealRateSystem


@dataclass(frozen=True)
class RateSegment:
    """Constant production rate over ``[start_us, end_us)``."""

    start_us: int
    end_us: int
    bytes_per_cpu_us: float

    def __post_init__(self) -> None:
        if self.end_us <= self.start_us:
            raise ValueError(
                f"segment end {self.end_us} must be after start {self.start_us}"
            )
        if self.bytes_per_cpu_us <= 0:
            raise ValueError(
                f"production rate must be positive, got {self.bytes_per_cpu_us}"
            )


class PulseSchedule:
    """Piecewise-constant production-rate schedule."""

    def __init__(self, segments: list[RateSegment], default_rate: float) -> None:
        if default_rate <= 0:
            raise ValueError(f"default rate must be positive, got {default_rate}")
        self.segments = sorted(segments, key=lambda s: s.start_us)
        self.default_rate = default_rate

    def rate_at(self, now_us: int) -> float:
        """Production rate (bytes per CPU microsecond) at virtual time."""
        for segment in self.segments:
            if segment.start_us <= now_us < segment.end_us:
                return segment.bytes_per_cpu_us
        return self.default_rate

    def end_us(self) -> int:
        """Time at which the last segment ends (0 if no segments)."""
        return max((s.end_us for s in self.segments), default=0)

    @classmethod
    def paper_figure6(
        cls,
        base_rate: float = 0.01,
        high_rate: Optional[float] = None,
        rising_widths_s: tuple[float, ...] = (0.2, 1.0, 3.0),
        falling_widths_s: tuple[float, ...] = (0.2, 1.0, 3.0),
        gap_s: float = 3.0,
        start_s: float = 2.0,
        tail_s: float = 3.0,
    ) -> "PulseSchedule":
        """The Figure 6 schedule: rising pulses then falling pulses.

        The producer first runs at ``base_rate``, emits three rising
        pulses of increasing width (rate doubles during the pulse, then
        falls back), then "keeps its default rate high and generates
        three falling pulses" — i.e. the baseline switches to the high
        rate and the pulses dip back down to ``base_rate``.  The widths
        deliberately straddle the controller's response time so that,
        as the paper observes, "the effect on fill level from pulses
        with smaller width is smaller".
        """
        high_rate = high_rate if high_rate is not None else 2.0 * base_rate
        segments: list[RateSegment] = []
        cursor = seconds(start_s)
        pulse_windows: list[tuple[int, int, bool]] = []
        for width in rising_widths_s:
            segment = RateSegment(cursor, cursor + seconds(width), high_rate)
            segments.append(segment)
            pulse_windows.append((segment.start_us, segment.end_us, True))
            cursor += seconds(width) + seconds(gap_s)
        # Second half: the baseline becomes the high rate; the pulses are
        # dips back down to the original rate.  The first dip comes one
        # gap after the baseline switches so it is a genuine falling
        # pulse out of a high plateau.
        tail_start = cursor
        previous_end = tail_start
        cursor = tail_start + seconds(gap_s)
        for width in falling_widths_s:
            dip = RateSegment(cursor, cursor + seconds(width), base_rate)
            if dip.start_us > previous_end:
                segments.append(RateSegment(previous_end, dip.start_us, high_rate))
            segments.append(dip)
            pulse_windows.append((dip.start_us, dip.end_us, False))
            previous_end = dip.end_us
            cursor += seconds(width) + seconds(gap_s)
        # Keep the high baseline for a final tail so the last dip is a
        # genuine pulse rather than the end of the experiment.
        segments.append(
            RateSegment(previous_end, previous_end + seconds(gap_s + tail_s), high_rate)
        )
        schedule = cls(segments, default_rate=base_rate)
        schedule.high_baseline_start_us = tail_start  # type: ignore[attr-defined]
        schedule.pulse_windows = pulse_windows  # type: ignore[attr-defined]
        return schedule


@dataclass
class PulseParameters:
    """Tunable parameters of the pulse pipeline.

    Defaults are chosen so that, with the library's default controller
    gains, the closed loop settles in roughly a third of a second
    (matching the paper's reported response time) and the byte rates
    land in the same few-thousand-bytes-per-second range as Figure 6.
    """

    producer_proportion_ppt: int = 250
    producer_period_us: int = 20_000
    consumer_period_us: int = 10_000
    queue_capacity_bytes: int = 3_000
    producer_cycles_per_block_us: int = 2_000
    consumer_cycles_per_block_us: int = 2_000
    consumer_bytes_per_cpu_us: float = 0.01
    base_rate_bytes_per_cpu_us: float = 0.01


class PulsePipeline:
    """Producer + bounded buffer + controller-managed consumer."""

    def __init__(
        self,
        system: RealRateSystem,
        schedule: Optional[PulseSchedule] = None,
        params: Optional[PulseParameters] = None,
    ) -> None:
        self.system = system
        self.params = params if params is not None else PulseParameters()
        self.schedule = (
            schedule
            if schedule is not None
            else PulseSchedule.paper_figure6(self.params.base_rate_bytes_per_cpu_us)
        )
        self.producer: Optional[SimThread] = None
        self.consumer: Optional[SimThread] = None
        self.queue: Optional[BoundedBuffer] = None

    # ------------------------------------------------------------------
    # thread bodies
    # ------------------------------------------------------------------
    def _producer_body(self, env: ThreadEnv):
        params = self.params
        while True:
            cycles = params.producer_cycles_per_block_us
            yield Compute(cycles)
            rate = self.schedule.rate_at(env.now)
            block = max(1, int(round(rate * cycles)))
            yield Put(self.queue, block)

    def _consumer_body(self, env: ThreadEnv):
        params = self.params
        block = max(
            1,
            int(round(params.consumer_bytes_per_cpu_us
                      * params.consumer_cycles_per_block_us)),
        )
        while True:
            yield Compute(params.consumer_cycles_per_block_us)
            yield Get(self.queue, block)

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    @classmethod
    def attach(
        cls,
        system: RealRateSystem,
        schedule: Optional[PulseSchedule] = None,
        params: Optional[PulseParameters] = None,
    ) -> "PulsePipeline":
        """Create the pipeline's threads and queue inside ``system``."""
        pipeline = cls(system, schedule, params)
        pipeline._build()
        return pipeline

    def _build(self) -> None:
        params = self.params
        # The producer has a fixed reservation: it is a real-time thread
        # from the controller's point of view, so the controller never
        # changes its allocation (exactly as in the paper's experiment).
        self.producer = self.system.spawn_controlled(
            "pulse.producer",
            self._producer_body,
            spec=ThreadSpec(
                proportion_ppt=params.producer_proportion_ppt,
                period_us=params.producer_period_us,
            ),
        )
        # The consumer supplies only a progress metric (the shared
        # queue): it is a real-rate thread and the controller owns its
        # allocation.  Its period is specified to keep dispatch jitter
        # small relative to the controller's sampling interval.
        self.consumer = self.system.spawn_controlled(
            "pulse.consumer",
            self._consumer_body,
            spec=ThreadSpec(period_us=params.consumer_period_us),
        )
        self.queue = self.system.open_queue(
            "pulse.queue",
            producer=self.producer,
            consumer=self.consumer,
            capacity_bytes=params.queue_capacity_bytes,
        )

    # ------------------------------------------------------------------
    # measurement helpers
    # ------------------------------------------------------------------
    def fill_level(self) -> float:
        """Current queue fill level in [0, 1]."""
        return self.queue.fill_level()

    def expected_consumer_fraction(self, rate: float) -> float:
        """CPU fraction the consumer needs to keep up at a producer rate.

        With the producer holding fraction ``P_p`` and producing
        ``rate`` bytes per CPU microsecond, matching byte rates requires
        the consumer fraction ``P_c = P_p * rate / consumer_rate``.
        """
        producer_fraction = self.params.producer_proportion_ppt / 1000
        return producer_fraction * rate / self.params.consumer_bytes_per_cpu_us

    def producer_byte_rate(self, rate: Optional[float] = None) -> float:
        """Ideal producer progress rate (bytes/second) at a schedule rate."""
        if rate is None:
            rate = self.schedule.default_rate
        producer_fraction = self.params.producer_proportion_ppt / 1000
        return producer_fraction * rate * US_PER_SEC


__all__ = ["PulseParameters", "PulsePipeline", "PulseSchedule", "RateSegment"]
