"""Multimedia pipeline.

Section 4.4: "we have a multimedia pipeline of processes that
communicate with a shared queue.  Our controller automatically
identifies that one stage of the pipeline has vastly different CPU
requirements than the others (the video decoder), even though all the
processes have the same priority."

:class:`MultimediaPipeline` builds an N-stage pipeline: a source with a
fixed reservation that injects frames at a constant rate, interior
stages that each consume a frame, spend a stage-specific amount of CPU
on it and forward it, and a sink that consumes the final frames.  All
interior stages are real-rate threads; the controller must discover
that the "decoder" stage needs far more CPU than the others.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.taxonomy import ThreadSpec
from repro.ipc.bounded_buffer import BoundedBuffer
from repro.sim.requests import Compute, Get, Put
from repro.sim.thread import SimThread, ThreadEnv
from repro.system import RealRateSystem


@dataclass(frozen=True)
class PipelineStageSpec:
    """Description of one interior pipeline stage."""

    name: str
    cpu_us_per_frame: int

    def __post_init__(self) -> None:
        if self.cpu_us_per_frame <= 0:
            raise ValueError(
                f"stage {self.name!r}: CPU per frame must be positive, got "
                f"{self.cpu_us_per_frame}"
            )


#: A typical software video pipeline: cheap demux, expensive decode,
#: moderate colour conversion / display.
DEFAULT_STAGES = (
    PipelineStageSpec("demux", cpu_us_per_frame=300),
    PipelineStageSpec("decode", cpu_us_per_frame=4_000),
    PipelineStageSpec("display", cpu_us_per_frame=800),
)


class MultimediaPipeline:
    """A source → stages → sink pipeline over bounded buffers."""

    def __init__(
        self,
        system: RealRateSystem,
        stages: tuple[PipelineStageSpec, ...] = DEFAULT_STAGES,
        *,
        frame_bytes: int = 1_000,
        frames_per_second: int = 30,
        queue_capacity_bytes: int = 8_000,
        source_proportion_ppt: int = 50,
        source_period_us: int = 20_000,
    ) -> None:
        if not stages:
            raise ValueError("a pipeline needs at least one interior stage")
        self.system = system
        self.stages = stages
        self.frame_bytes = frame_bytes
        self.frames_per_second = frames_per_second
        self.queue_capacity_bytes = queue_capacity_bytes
        self.source_proportion_ppt = source_proportion_ppt
        self.source_period_us = source_period_us

        self.source: Optional[SimThread] = None
        self.sink: Optional[SimThread] = None
        self.stage_threads: list[SimThread] = []
        self.queues: list[BoundedBuffer] = []
        self.frames_delivered = 0

    # ------------------------------------------------------------------
    # thread bodies
    # ------------------------------------------------------------------
    def _source_body(self, env: ThreadEnv):
        # The source models capture: its fixed reservation paces frame
        # injection.  Its CPU budget per second divided by the frame
        # rate gives the CPU cost per frame, so with its reservation it
        # emits exactly frames_per_second frames each second.
        budget_us_per_second = self.source_proportion_ppt * 1_000_000 // 1000
        per_frame_us = max(1, budget_us_per_second // self.frames_per_second)
        while True:
            yield Compute(per_frame_us)
            yield Put(self.queues[0], self.frame_bytes)

    def _stage_body_factory(self, index: int, spec: PipelineStageSpec):
        def body(env: ThreadEnv):
            while True:
                yield Get(self.queues[index], self.frame_bytes)
                yield Compute(spec.cpu_us_per_frame)
                yield Put(self.queues[index + 1], self.frame_bytes)

        return body

    def _sink_body(self, env: ThreadEnv):
        while True:
            yield Get(self.queues[-1], self.frame_bytes)
            yield Compute(100)
            self.frames_delivered += 1

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, system: RealRateSystem, **kwargs) -> "MultimediaPipeline":
        """Build the pipeline inside ``system`` and return it."""
        pipeline = cls(system, **kwargs)
        pipeline._build()
        return pipeline

    def _build(self) -> None:
        self.source = self.system.spawn_controlled(
            "pipeline.source",
            self._source_body,
            spec=ThreadSpec(
                proportion_ppt=self.source_proportion_ppt,
                period_us=self.source_period_us,
            ),
        )
        self.stage_threads = []
        for index, spec in enumerate(self.stages):
            thread = self.system.spawn_controlled(
                f"pipeline.{spec.name}",
                self._stage_body_factory(index, spec),
                spec=ThreadSpec(),
            )
            self.stage_threads.append(thread)
        self.sink = self.system.spawn_controlled(
            "pipeline.sink", self._sink_body, spec=ThreadSpec()
        )

        # One queue between every adjacent pair: source→s0, s0→s1, …, sN→sink.
        endpoints = [self.source, *self.stage_threads, self.sink]
        self.queues = []
        for index in range(len(endpoints) - 1):
            queue = self.system.open_queue(
                f"pipeline.q{index}",
                producer=endpoints[index],
                consumer=endpoints[index + 1],
                capacity_bytes=self.queue_capacity_bytes,
            )
            self.queues.append(queue)

    # ------------------------------------------------------------------
    # measurement helpers
    # ------------------------------------------------------------------
    def allocations_ppt(self) -> dict[str, int]:
        """Current controller allocation for every pipeline thread.

        Note that a stage that comfortably keeps up with its input drains
        its queue and is then allocated very little until work arrives
        again, so this instantaneous snapshot can be small; use
        :meth:`cpu_shares` for the time-averaged picture.
        """
        allocator = self.system.allocator
        threads = [self.source, *self.stage_threads, self.sink]
        return {t.name: allocator.current_allocation_ppt(t) for t in threads}

    def cpu_shares(self) -> dict[str, float]:
        """Fraction of elapsed CPU time each pipeline thread consumed."""
        elapsed = max(1, self.system.now)
        threads = [self.source, *self.stage_threads, self.sink]
        return {t.name: t.accounting.total_us / elapsed for t in threads}

    def decoder_thread(self) -> SimThread:
        """The most CPU-hungry interior stage's thread."""
        heaviest = max(
            range(len(self.stages)), key=lambda i: self.stages[i].cpu_us_per_frame
        )
        return self.stage_threads[heaviest]


__all__ = ["DEFAULT_STAGES", "MultimediaPipeline", "PipelineStageSpec"]
