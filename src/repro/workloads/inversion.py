"""Priority inversion (the Mars Pathfinder scenario).

Section 2 recounts the motivating failure: "Occasionally, a high
priority task was blocked waiting for a mutex held by a low priority
task.  Unfortunately, the low priority task was starved for CPU by
several other tasks with medium priority.  Eventually, the system would
detect that the high priority task was missing deadlines and would
reset itself."

:class:`InversionScenario` builds that task set:

* a **high**-priority periodic task that briefly needs a shared mutex
  every period (the bus manager),
* a **low**-priority task that occasionally grabs the same mutex and
  holds it across a chunk of computation (the meteorological task), and
* one or more **medium**-priority CPU-bound tasks (the communication
  tasks) that can starve the low task under priority scheduling.

The scenario can be attached either to a plain fixed-priority kernel
(reproducing the inversion, with or without priority inheritance) or to
a full real-rate system, where the controller's guaranteed non-zero
allocations prevent the starvation that makes the inversion unbounded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.taxonomy import ThreadSpec
from repro.ipc.mutex import Mutex
from repro.sched.priority import FixedPriorityScheduler
from repro.sim.kernel import Kernel
from repro.sim.requests import AcquireMutex, Compute, ReleaseMutex, Sleep
from repro.sim.thread import SimThread, ThreadEnv
from repro.system import RealRateSystem


@dataclass
class InversionResult:
    """Outcome of an inversion run."""

    iterations: int = 0
    deadline_misses: int = 0
    worst_latency_us: int = 0
    latencies_us: list[int] = field(default_factory=list)

    @property
    def miss_rate(self) -> float:
        """Fraction of high-priority iterations that missed their deadline."""
        if self.iterations == 0:
            return 0.0
        return self.deadline_misses / self.iterations


class InversionScenario:
    """The three-priority mutex-sharing task set."""

    def __init__(
        self,
        *,
        high_period_us: int = 100_000,
        high_work_us: int = 2_000,
        high_critical_us: int = 500,
        low_critical_us: int = 9_000,
        low_rest_us: int = 1_000,
        medium_hogs: int = 2,
        hog_burst_us: int = 5_000,
        medium_initial_sleep_us: int = 26_000,
    ) -> None:
        self.high_period_us = high_period_us
        self.high_work_us = high_work_us
        self.high_critical_us = high_critical_us
        self.low_critical_us = low_critical_us
        self.low_rest_us = low_rest_us
        self.medium_hogs = medium_hogs
        self.hog_burst_us = hog_burst_us
        self.medium_initial_sleep_us = medium_initial_sleep_us

        self.mutex = Mutex("pathfinder.bus")
        self.result = InversionResult()
        self.high: Optional[SimThread] = None
        self.low: Optional[SimThread] = None
        self.hogs: list[SimThread] = []
        self._iteration_start_us: Optional[int] = None

    # ------------------------------------------------------------------
    # thread bodies
    # ------------------------------------------------------------------
    def _high_body(self, env: ThreadEnv):
        # The bus manager: every period, take the mutex briefly, then do
        # its periodic work.  The deadline is the period itself.
        next_release = env.now
        while True:
            start = env.now
            self._iteration_start_us = start
            yield AcquireMutex(self.mutex)
            yield Compute(self.high_critical_us)
            yield ReleaseMutex(self.mutex)
            yield Compute(self.high_work_us)
            latency = env.now - start
            self.result.iterations += 1
            self.result.latencies_us.append(latency)
            if latency > self.high_period_us:
                self.result.deadline_misses += 1
            if latency > self.result.worst_latency_us:
                self.result.worst_latency_us = latency
            next_release += self.high_period_us
            if env.now < next_release:
                yield Sleep(next_release - env.now)

    def pending_latency_us(self, now: int) -> int:
        """Time the high task's current iteration has been running.

        Under an unbounded inversion the iteration never completes, so
        its latency never appears in ``result.latencies_us``; this
        reports the in-flight latency instead (0 if no iteration has
        started or the last one completed on time).
        """
        if self._iteration_start_us is None:
            return 0
        return max(0, now - self._iteration_start_us)

    def effective_worst_latency_us(self, now: int) -> int:
        """Worst of the completed and the in-flight iteration latencies."""
        return max(self.result.worst_latency_us, self.pending_latency_us(now))

    def _low_body(self, env: ThreadEnv):
        # The meteorological task: grab the mutex, hold it across a
        # chunk of work, release, then do unrelated work.
        while True:
            yield AcquireMutex(self.mutex)
            yield Compute(self.low_critical_us)
            yield ReleaseMutex(self.mutex)
            yield Compute(self.low_rest_us)

    def _hog_body(self, env: ThreadEnv):
        # The communication tasks idle briefly at start-up (long enough
        # for the low task to enter its critical section) and are CPU
        # bound from then on — the interleaving that triggered the
        # Pathfinder inversion.
        if self.medium_initial_sleep_us > 0:
            yield Sleep(self.medium_initial_sleep_us)
        while True:
            yield Compute(self.hog_burst_us)

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    def attach_priority(self, kernel: Kernel) -> "InversionScenario":
        """Attach to a kernel running a :class:`FixedPriorityScheduler`.

        The kernel's scheduler must already be a fixed-priority
        scheduler (with or without inheritance); thread priorities are
        high=30, medium=20, low=10.
        """
        if not isinstance(kernel.scheduler, FixedPriorityScheduler):
            raise TypeError(
                "attach_priority requires a kernel using FixedPriorityScheduler, "
                f"got {type(kernel.scheduler).__name__}"
            )
        self.high = kernel.spawn("inversion.high", self._high_body, priority=30)
        self.low = kernel.spawn("inversion.low", self._low_body, priority=10)
        self.hogs = [
            kernel.spawn(f"inversion.medium{i}", self._hog_body, priority=20)
            for i in range(self.medium_hogs)
        ]
        return self

    def attach_real_rate(self, system: RealRateSystem) -> "InversionScenario":
        """Attach to a full real-rate system.

        The high task declares a real-time reservation; the low task and
        the hogs provide nothing and are treated as miscellaneous
        threads — which is precisely why they cannot be starved, and why
        the mutex is always released promptly.

        The reservation uses a short period (like the paper's
        latency-sensitive interactive jobs) so the rate-monotonic
        dispatcher serves the task promptly whenever it is runnable,
        and a proportion generous enough to complete the per-iteration
        work within a few reservation periods.
        """
        reservation_period_us = min(10_000, self.high_period_us)
        work_us = self.high_critical_us + self.high_work_us
        # Enough budget to finish the iteration's work within roughly a
        # quarter of the task's own period, plus headroom.
        needed_ppt = min(
            500,
            max(
                50,
                work_us * 4_000 // self.high_period_us + 100,
            ),
        )
        self.high = system.spawn_controlled(
            "inversion.high",
            self._high_body,
            spec=ThreadSpec(
                proportion_ppt=needed_ppt, period_us=reservation_period_us
            ),
        )
        self.low = system.spawn_controlled(
            "inversion.low", self._low_body, spec=ThreadSpec()
        )
        self.hogs = [
            system.spawn_controlled(
                f"inversion.medium{i}", self._hog_body, spec=ThreadSpec()
            )
            for i in range(self.medium_hogs)
        ]
        return self


__all__ = ["InversionResult", "InversionScenario"]
