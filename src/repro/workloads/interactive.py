"""Interactive job.

"Interactive jobs are servers that listen to ttys instead of sockets.
Since interactive jobs have specific requirements (periods relative to
human perception), the scheduler only needs to know that the job is
interactive and the ttys in which it is interested."

:class:`InteractiveUser` simulates a human typing: it emits keystrokes
into a :class:`~repro.ipc.tty.TTY` separated by think times.
:class:`InteractiveJob` consumes keystrokes, performs a short burst of
CPU per keystroke (echo, redraw) and records the response latency —
the time from the keystroke entering the tty to the burst completing —
which is what "no noticeable delays in interactive response time even
when the CPU is fully utilized" is about.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.taxonomy import ThreadSpec
from repro.ipc.roles import Role
from repro.ipc.tty import TTY
from repro.sim.requests import Compute, Get, Put, Sleep
from repro.sim.thread import SimThread, ThreadEnv
from repro.system import RealRateSystem


class InteractiveUser:
    """A simulated human producing keystrokes with random think times."""

    def __init__(
        self,
        tty: TTY,
        *,
        mean_think_time_us: int = 150_000,
        seed: int = 0,
    ) -> None:
        if mean_think_time_us <= 0:
            raise ValueError(
                f"mean think time must be positive, got {mean_think_time_us}"
            )
        self.tty = tty
        self.mean_think_time_us = mean_think_time_us
        self._rng = random.Random(seed)
        self.keystrokes_sent = 0
        self.keystroke_times_us: list[int] = []

    def body(self, env: ThreadEnv):
        """Type forever: think, then emit one keystroke byte."""
        while True:
            think = max(1_000, int(self._rng.expovariate(
                1.0 / self.mean_think_time_us)))
            yield Sleep(think)
            yield Compute(5)
            self.keystroke_times_us.append(env.now)
            yield Put(self.tty, 1)
            self.keystrokes_sent += 1


class InteractiveJob:
    """An editor-like job: one burst of CPU per keystroke."""

    def __init__(
        self,
        tty: TTY,
        user: InteractiveUser,
        *,
        burst_cpu_us: int = 2_000,
    ) -> None:
        if burst_cpu_us <= 0:
            raise ValueError(f"burst must be positive, got {burst_cpu_us}")
        self.tty = tty
        self.user = user
        self.burst_cpu_us = burst_cpu_us
        self.keystrokes_handled = 0
        self.response_latencies_us: list[int] = []
        self.thread: Optional[SimThread] = None
        self.user_thread: Optional[SimThread] = None

    def body(self, env: ThreadEnv):
        """Consume keystrokes and respond to each with a CPU burst."""
        while True:
            yield Get(self.tty, 1)
            yield Compute(self.burst_cpu_us)
            index = self.keystrokes_handled
            if index < len(self.user.keystroke_times_us):
                latency = env.now - self.user.keystroke_times_us[index]
                self.response_latencies_us.append(latency)
            self.keystrokes_handled += 1

    # ------------------------------------------------------------------
    @classmethod
    def attach(
        cls,
        system: RealRateSystem,
        name: str = "interactive",
        *,
        mean_think_time_us: int = 150_000,
        burst_cpu_us: int = 2_000,
        seed: int = 0,
    ) -> "InteractiveJob":
        """Build the user + job pair inside ``system``."""
        tty = TTY(f"{name}.tty")
        user = InteractiveUser(tty, mean_think_time_us=mean_think_time_us, seed=seed)
        job = cls(tty, user, burst_cpu_us=burst_cpu_us)
        # The user costs almost nothing; a small reservation keeps the
        # typing rate independent of system load.
        job.user_thread = system.spawn_controlled(
            f"{name}.user",
            user.body,
            spec=ThreadSpec(proportion_ppt=10, period_us=10_000),
        )
        # The job itself is an interactive real-rate thread: its tty is
        # its progress metric and its period is pinned by the controller.
        job.thread = system.spawn_controlled(
            f"{name}.job",
            job.body,
            spec=ThreadSpec(interactive=True),
        )
        system.link(job.user_thread, tty, Role.PRODUCER)
        system.link(job.thread, tty, Role.CONSUMER)
        return job

    # ------------------------------------------------------------------
    def mean_response_latency_us(self) -> float:
        """Average keystroke-to-response latency observed so far."""
        if not self.response_latencies_us:
            return 0.0
        return sum(self.response_latencies_us) / len(self.response_latencies_us)

    def worst_response_latency_us(self) -> int:
        """Largest keystroke-to-response latency observed so far."""
        if not self.response_latencies_us:
            return 0
        return max(self.response_latencies_us)


__all__ = ["InteractiveJob", "InteractiveUser"]
