"""SMP web-server farm workload.

The multiprocessor analogue of :mod:`repro.workloads.webserver`: many
independent request/server pairs sharing one kernel, the scenario the
single-CPU paper could not run.  Each server is a real-rate thread —
the controller discovers its allocation from its socket's fill level —
and the farm's aggregate demand is sized by the caller to exceed one
CPU, so throughput only tracks the offered load when the placement
policy spreads the servers across enough CPUs.

Placement is either dynamic (the scheduler's least-loaded policy, the
default) or explicit: ``pin=True`` pins server *i* to CPU
``i % n_cpus``, which exercises the pinned-affinity admission path and
gives experiments a placement-free baseline.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.system import RealRateSystem
from repro.workloads.webserver import WebServer


class WebFarm:
    """A fleet of :class:`WebServer` instances on one (SMP) system.

    Build farms with :meth:`attach`; the constructor just wraps an
    already-assembled server list.
    """

    def __init__(self, servers: list[WebServer], pin: bool) -> None:
        self.servers = servers
        self.pinned = pin

    @classmethod
    def attach(
        cls,
        system: RealRateSystem,
        *,
        n_servers: int = 4,
        requests_per_second: float | Callable[[int], float] = 150.0,
        service_cpu_us: int = 1_500,
        request_bytes: int = 512,
        socket_capacity_bytes: int = 16 * 1024,
        pin: bool = False,
        name: str = "farm",
        seed: Optional[int] = None,
    ) -> "WebFarm":
        """Build ``n_servers`` web servers inside ``system``.

        Parameters
        ----------
        n_servers:
            Number of independent request-generator/server pairs.
        requests_per_second:
            Offered load *per server* (constant or callable of virtual
            time, as for :class:`WebServer`).
        service_cpu_us:
            CPU per request.  Aggregate demand in CPUs is
            ``n_servers * requests_per_second * service_cpu_us / 1e6``.
        request_bytes / socket_capacity_bytes:
            Request size and receive-buffer capacity per server.
        pin:
            When ``True`` each server thread is pinned to CPU
            ``i % n_cpus`` (its generator stays unpinned — generators
            mostly sleep).  When ``False`` placement is left to the
            scheduler's policy.
        seed:
            When given, server ``i`` jitters its arrivals with a
            :class:`random.Random` seeded ``seed + i`` (see
            :class:`WebServer`); ``None`` keeps strictly periodic
            arrivals.
        """
        if n_servers <= 0:
            raise ValueError(f"need at least one server, got {n_servers}")
        n_cpus = system.kernel.n_cpus
        servers = []
        for i in range(n_servers):
            server = WebServer.attach(
                system,
                name=f"{name}{i}",
                requests_per_second=requests_per_second,
                service_cpu_us=service_cpu_us,
                request_bytes=request_bytes,
                socket_capacity_bytes=socket_capacity_bytes,
                seed=None if seed is None else seed + i,
            )
            if pin:
                server.server.pin_to(i % n_cpus)
            servers.append(server)
        return cls(servers, pin)

    # ------------------------------------------------------------------
    # aggregate measurement helpers
    # ------------------------------------------------------------------
    def total_sent(self) -> int:
        """Requests offered across the farm so far."""
        return sum(s.requests_sent for s in self.servers)

    def total_served(self) -> int:
        """Requests completed across the farm so far."""
        return sum(s.requests_served for s in self.servers)

    def total_backlog(self) -> float:
        """Requests currently queued in all socket buffers."""
        return sum(s.backlog_requests() for s in self.servers)

    def demand_cpus(self) -> float:
        """Aggregate CPU demand of the offered load, in CPUs."""
        return sum(s.required_fraction() for s in self.servers)

    def served_rps(self, elapsed_us: int) -> float:
        """Mean served throughput over ``elapsed_us`` (requests/second)."""
        if elapsed_us <= 0:
            return 0.0
        return self.total_served() * 1_000_000 / elapsed_us


__all__ = ["WebFarm"]
