"""CPU hog.

"For simplicity, the load corresponded to a miscellaneous job (no
progress-metric) that tries to consume as much CPU as it can."  The hog
never blocks and never registers a symbiotic interface, so the
controller classifies it as miscellaneous and drives it with the
constant-pressure heuristic; under overload it is squished.
"""

from __future__ import annotations

from typing import Optional

from repro.core.taxonomy import ThreadSpec
from repro.sim.requests import Compute
from repro.sim.thread import SimThread, ThreadEnv
from repro.system import RealRateSystem


class CpuHog:
    """A thread that consumes every cycle it is given."""

    def __init__(self, burst_us: int = 5_000, importance: float = 1.0) -> None:
        if burst_us <= 0:
            raise ValueError(f"burst must be positive, got {burst_us}")
        self.burst_us = burst_us
        self.importance = importance
        self.thread: Optional[SimThread] = None

    def body(self, env: ThreadEnv):
        """Loop forever burning CPU in fixed-size bursts."""
        while True:
            yield Compute(self.burst_us)

    @classmethod
    def attach(
        cls,
        system: RealRateSystem,
        name: str = "cpu.hog",
        *,
        burst_us: int = 5_000,
        importance: float = 1.0,
    ) -> "CpuHog":
        """Create a hog thread under control of ``system``'s allocator."""
        hog = cls(burst_us=burst_us, importance=importance)
        hog.thread = system.spawn_controlled(
            name,
            hog.body,
            spec=ThreadSpec(importance=importance),
            importance=importance,
        )
        return hog

    def cpu_seconds(self) -> float:
        """Total CPU the hog has consumed, in seconds."""
        if self.thread is None:
            return 0.0
        return self.thread.accounting.total_us / 1_000_000


__all__ = ["CpuHog"]
