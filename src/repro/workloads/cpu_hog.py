"""CPU hog.

"For simplicity, the load corresponded to a miscellaneous job (no
progress-metric) that tries to consume as much CPU as it can."  The hog
never blocks and never registers a symbiotic interface, so the
controller classifies it as miscellaneous and drives it with the
constant-pressure heuristic; under overload it is squished.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.taxonomy import ThreadSpec
from repro.sim.requests import Compute
from repro.sim.thread import SimThread, ThreadEnv
from repro.system import RealRateSystem


class CpuHog:
    """A thread that consumes every cycle it is given."""

    def __init__(
        self,
        burst_us: int = 5_000,
        importance: float = 1.0,
        seed: Optional[int] = None,
    ) -> None:
        if burst_us <= 0:
            raise ValueError(f"burst must be positive, got {burst_us}")
        self.burst_us = burst_us
        self.importance = importance
        self.thread: Optional[SimThread] = None
        self._rng = random.Random(seed) if seed is not None else None

    def body(self, env: ThreadEnv):
        """Loop forever burning CPU in bursts.

        Bursts are fixed-size unless a seed was given, in which case
        each burst length is drawn (reproducibly) from ±50% of the
        nominal size.
        """
        while True:
            burst = self.burst_us
            if self._rng is not None:
                burst = max(1, int(round(burst * self._rng.uniform(0.5, 1.5))))
            yield Compute(burst)

    @classmethod
    def attach(
        cls,
        system: RealRateSystem,
        name: str = "cpu.hog",
        *,
        burst_us: int = 5_000,
        importance: float = 1.0,
        seed: Optional[int] = None,
    ) -> "CpuHog":
        """Create a hog thread under control of ``system``'s allocator."""
        hog = cls(burst_us=burst_us, importance=importance, seed=seed)
        hog.thread = system.spawn_controlled(
            name,
            hog.body,
            spec=ThreadSpec(importance=importance),
            importance=importance,
        )
        return hog

    def cpu_seconds(self) -> float:
        """Total CPU the hog has consumed, in seconds."""
        if self.thread is None:
            return 0.0
        return self.thread.accounting.total_us / 1_000_000


__all__ = ["CpuHog"]
