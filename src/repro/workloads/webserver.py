"""Web server workload.

"Servers are essentially the consumer of a bounded buffer, where the
producer may or may not be on the same machine."  Requests arrive on a
socket at a (possibly time-varying) rate; the server thread consumes a
request, spends a service time of CPU on it, and loops.  The server is
a real-rate thread: the controller discovers the allocation it needs to
keep the socket's receive buffer from growing, so the achieved request
throughput tracks the offered load — the real-world rate the paper says
real-rate applications must follow.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.core.taxonomy import ThreadSpec
from repro.ipc.roles import Role
from repro.ipc.sock import Socket
from repro.sim.requests import Compute, Get, Put, Sleep
from repro.sim.thread import SimThread, ThreadEnv
from repro.system import RealRateSystem


class WebServer:
    """A request generator plus a controller-managed server thread.

    Parameters
    ----------
    request_bytes:
        Size of each request in the socket buffer.
    service_cpu_us:
        CPU the server spends per request.
    requests_per_second:
        Offered load; either a constant or a callable of virtual time
        (microseconds) for time-varying load.
    socket_capacity_bytes:
        Receive-buffer size (the progress metric's denominator).
    importance:
        The server's importance weight for overload squishing.
    seed:
        When given, arrivals are jittered by a :class:`random.Random`
        seeded with this value (multiplicative, ±``arrival_jitter``),
        so experiments can sweep seeds and still be exactly
        reproducible per seed.  ``None`` (the default) keeps the
        historical strictly-periodic arrivals.
    arrival_jitter:
        Fractional width of the inter-arrival jitter; only applied
        when ``seed`` is set.
    """

    def __init__(
        self,
        request_bytes: int = 512,
        service_cpu_us: int = 1_500,
        requests_per_second: float | Callable[[int], float] = 200.0,
        socket_capacity_bytes: int = 32 * 1024,
        importance: float = 1.0,
        seed: Optional[int] = None,
        arrival_jitter: float = 0.2,
    ) -> None:
        if request_bytes <= 0:
            raise ValueError(f"request size must be positive, got {request_bytes}")
        if service_cpu_us <= 0:
            raise ValueError(
                f"service time must be positive, got {service_cpu_us}"
            )
        self.request_bytes = request_bytes
        self.service_cpu_us = service_cpu_us
        if not 0.0 <= arrival_jitter < 1.0:
            raise ValueError(
                f"arrival jitter must be in [0, 1), got {arrival_jitter}"
            )
        self._load = requests_per_second
        self.socket_capacity_bytes = socket_capacity_bytes
        self.importance = importance
        self.arrival_jitter = arrival_jitter
        self._rng = random.Random(seed) if seed is not None else None

        self.socket: Optional[Socket] = None
        self.generator: Optional[SimThread] = None
        self.server: Optional[SimThread] = None
        self.requests_sent = 0
        self.requests_served = 0

    # ------------------------------------------------------------------
    def offered_load(self, now_us: int) -> float:
        """Requests per second being offered at virtual time ``now_us``."""
        if callable(self._load):
            return float(self._load(now_us))
        return float(self._load)

    # ------------------------------------------------------------------
    # thread bodies
    # ------------------------------------------------------------------
    def _generator_body(self, env: ThreadEnv):
        # The generator stands in for the network: negligible CPU per
        # request, paced by sleeping between arrivals.
        while True:
            rate = max(1e-6, self.offered_load(env.now))
            inter_arrival_us = max(1, int(round(1_000_000 / rate)))
            if self._rng is not None and self.arrival_jitter > 0:
                scale = self._rng.uniform(
                    1.0 - self.arrival_jitter, 1.0 + self.arrival_jitter
                )
                inter_arrival_us = max(1, int(round(inter_arrival_us * scale)))
            yield Sleep(inter_arrival_us)
            yield Compute(10)
            yield Put(self.socket, self.request_bytes)
            self.requests_sent += 1

    def _server_body(self, env: ThreadEnv):
        while True:
            yield Get(self.socket, self.request_bytes)
            yield Compute(self.service_cpu_us)
            self.requests_served += 1

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, system: RealRateSystem, name: str = "web", **kwargs) -> "WebServer":
        """Build the server and its request source inside ``system``."""
        server = cls(**kwargs)
        server.socket = Socket(f"{name}.socket", server.socket_capacity_bytes)
        # The generator is a lightweight real-time thread: it mostly
        # sleeps, so a tiny reservation suffices and keeps arrivals
        # independent of the controller's decisions.
        server.generator = system.spawn_controlled(
            f"{name}.client",
            server._generator_body,
            spec=ThreadSpec(proportion_ppt=20, period_us=5_000),
        )
        server.server = system.spawn_controlled(
            f"{name}.server",
            server._server_body,
            spec=ThreadSpec(importance=server.importance),
            importance=server.importance,
        )
        system.link(server.generator, server.socket, Role.PRODUCER)
        system.link(server.server, server.socket, Role.CONSUMER)
        return server

    # ------------------------------------------------------------------
    # measurement helpers
    # ------------------------------------------------------------------
    def backlog_requests(self) -> float:
        """Requests currently queued in the socket buffer."""
        if self.socket is None:
            return 0.0
        return self.socket.fill_bytes() / self.request_bytes

    def required_fraction(self, offered_rps: Optional[float] = None) -> float:
        """CPU fraction needed to serve the offered load."""
        rate = offered_rps if offered_rps is not None else self.offered_load(0)
        return rate * self.service_cpu_us / 1_000_000


__all__ = ["WebServer"]
