"""Software modem.

The paper's introduction lists software modems as the canonical
isochronous real-rate/real-time device: the signal-processing loop must
run a fixed amount of work every few milliseconds or the line drops.
Such "applications with known requirements, such as isochronous
software devices, can bypass the adaptive scheduler by specifying their
desired proportion and/or period" — so :class:`SoftwareModem` registers
as a real-time thread and the experiments verify that its deadline-miss
rate stays near zero even when the machine is saturated with hogs.
"""

from __future__ import annotations

from typing import Optional

from repro.core.taxonomy import ThreadSpec
from repro.sim.requests import Compute, Sleep
from repro.sim.thread import SimThread, ThreadEnv
from repro.system import RealRateSystem


class SoftwareModem:
    """An isochronous job: ``work_us_per_period`` of CPU every period.

    The body records, for every period, whether the work finished
    before the next period began; the miss count is the workload-level
    view of the scheduler's deadline accounting.
    """

    def __init__(
        self,
        *,
        period_us: int = 10_000,
        work_us_per_period: int = 1_500,
        headroom_ppt: int = 20,
    ) -> None:
        if period_us <= 0 or work_us_per_period <= 0:
            raise ValueError("period and work must both be positive")
        if work_us_per_period >= period_us:
            raise ValueError(
                f"work per period ({work_us_per_period}us) must be smaller "
                f"than the period ({period_us}us)"
            )
        self.period_us = period_us
        self.work_us_per_period = work_us_per_period
        self.headroom_ppt = headroom_ppt
        self.thread: Optional[SimThread] = None
        self.periods_completed = 0
        self.deadline_misses = 0

    @property
    def proportion_ppt(self) -> int:
        """The reservation the modem requests (work/period plus headroom)."""
        base = (self.work_us_per_period * 1000 + self.period_us - 1) // self.period_us
        return min(1000, base + self.headroom_ppt)

    def body(self, env: ThreadEnv):
        """Each period: do the work, then sleep until the next period."""
        next_deadline = env.now + self.period_us
        while True:
            yield Compute(self.work_us_per_period)
            finished = env.now
            if finished > next_deadline:
                self.deadline_misses += 1
            self.periods_completed += 1
            if finished < next_deadline:
                yield Sleep(next_deadline - finished)
            next_deadline += self.period_us

    @classmethod
    def attach(
        cls, system: RealRateSystem, name: str = "modem", **kwargs
    ) -> "SoftwareModem":
        """Create the modem thread with its real-time reservation."""
        modem = cls(**kwargs)
        modem.thread = system.spawn_controlled(
            name,
            modem.body,
            spec=ThreadSpec(
                proportion_ppt=modem.proportion_ppt, period_us=modem.period_us
            ),
        )
        return modem

    def miss_rate(self) -> float:
        """Fraction of periods whose work finished late."""
        if self.periods_completed == 0:
            return 0.0
        return self.deadline_misses / self.periods_completed


__all__ = ["SoftwareModem"]
