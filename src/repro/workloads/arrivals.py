"""Arrival processes for the open-system workload engine.

Every scenario the repository had before this module was a *closed*
system: a fixed thread set spawned before ``run()`` and living to the
horizon.  Real deployments of the paper's feedback allocator face an
*open* system — jobs arrive, demand service, and leave — and the
controller's admission, reclaim and adaptation logic is stressed
hardest exactly by that churn.

An :class:`ArrivalProcess` produces the virtual times at which the
:class:`~repro.workloads.engine.WorkloadEngine` injects new threads
into a running kernel.  All processes are deterministic: stochastic
ones draw from a :class:`random.Random` seeded at construction, so the
same process replayed in two kernels (e.g. the ``quantum`` oracle and
the ``horizon`` engine) yields microsecond-identical schedules.

The single-rate processes (deterministic, Poisson) are *live* objects:
their rate may be changed while the simulation runs (a
:class:`~repro.workloads.engine.PhaseScript` action calls
:meth:`ArrivalProcess.set_rate`), and the change applies from the next
inter-arrival gap onward — the gap already scheduled on the calendar
is not retimed, exactly like a real traffic source.  MMPP and trace
replay have no single adjustable rate; their :meth:`set_rate` raises.

Four shapes are provided:

* :class:`DeterministicArrivals` — fixed inter-arrival interval;
* :class:`PoissonArrivals` — seeded exponential inter-arrivals;
* :class:`MMPPArrivals` — MMPP-style bursty traffic: a deterministic
  cycle of phases, each with an exponentially-distributed dwell time
  and its own Poisson arrival rate (a rate of 0 models silence);
* :class:`TraceArrivals` — replay of an explicit time list or a trace
  file (one arrival per line: ``offset_us [tag]``, ``#`` comments).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Iterable, Iterator, Optional, Sequence

#: Microseconds per second (inter-arrival conversion).
_US_PER_SEC = 1_000_000.0


class ArrivalError(ValueError):
    """An arrival process was mis-parameterised or a trace is invalid."""


class ArrivalProcess(ABC):
    """Produces absolute arrival times (and optional job tags).

    Subclasses implement :meth:`gaps`, an iterator of strictly positive
    integer microsecond inter-arrival gaps; :meth:`schedule` folds them
    into non-decreasing absolute times.  Trace replay overrides
    :meth:`schedule` directly (its times are absolute offsets, possibly
    with equal timestamps for simultaneous arrivals).
    """

    @abstractmethod
    def gaps(self) -> Iterator[int]:
        """Yield successive inter-arrival gaps in microseconds (>= 1)."""

    def schedule(self, start_us: int = 0) -> Iterator[tuple[int, Optional[str]]]:
        """Yield ``(arrival_time_us, tag)`` pairs from ``start_us`` on.

        The base implementation accumulates :meth:`gaps` and carries no
        tags; :class:`TraceArrivals` yields the tags its trace records.
        """
        now = int(start_us)
        for gap in self.gaps():
            now += gap
            yield now, None

    def set_rate(self, rate_per_s: float) -> None:
        """Change the arrival rate going forward (phase-script hook).

        Processes without a meaningful single rate raise
        :class:`ArrivalError`; the default does.
        """
        raise ArrivalError(
            f"{type(self).__name__} has no adjustable rate"
        )


def _check_rate(rate_per_s: float) -> float:
    if rate_per_s <= 0:
        raise ArrivalError(f"arrival rate must be positive, got {rate_per_s}")
    return float(rate_per_s)


class DeterministicArrivals(ArrivalProcess):
    """Fixed inter-arrival interval (``interval_us`` microseconds)."""

    def __init__(self, interval_us: int) -> None:
        if interval_us < 1:
            raise ArrivalError(
                f"inter-arrival interval must be >= 1us, got {interval_us}"
            )
        self.interval_us = int(interval_us)

    @classmethod
    def per_second(cls, rate_per_s: float) -> "DeterministicArrivals":
        """Build from a rate instead of an interval."""
        return cls(max(1, int(round(_US_PER_SEC / _check_rate(rate_per_s)))))

    def set_rate(self, rate_per_s: float) -> None:
        self.interval_us = max(1, int(round(_US_PER_SEC / _check_rate(rate_per_s))))

    def gaps(self) -> Iterator[int]:
        while True:
            # Read the interval each gap so mid-run set_rate applies.
            yield self.interval_us


class PoissonArrivals(ArrivalProcess):
    """Seeded Poisson process: exponential inter-arrival gaps.

    The rate is read at every gap, so a phase script changing it
    mid-run reshapes the tail of the schedule without disturbing the
    RNG stream's determinism.
    """

    def __init__(self, rate_per_s: float, seed: int) -> None:
        self.rate_per_s = _check_rate(rate_per_s)
        self._rng = random.Random(seed)

    def set_rate(self, rate_per_s: float) -> None:
        self.rate_per_s = _check_rate(rate_per_s)

    def gaps(self) -> Iterator[int]:
        rng = self._rng
        while True:
            gap_us = rng.expovariate(1.0) * _US_PER_SEC / self.rate_per_s
            yield max(1, int(round(gap_us)))


class MMPPArrivals(ArrivalProcess):
    """MMPP-style bursty arrivals.

    A modulating chain cycles deterministically through *phases*, each
    a ``(rate_per_s, mean_dwell_us)`` pair: the process dwells in a
    phase for an exponentially-distributed time (mean ``mean_dwell_us``)
    emitting Poisson arrivals at the phase's rate, then moves to the
    next phase.  A phase rate of ``0`` emits nothing (an off period),
    which with a two-phase ``[(high, b), (0, i)]`` cycle gives the
    classic interrupted-Poisson burst shape.

    Because the exponential is memoryless, an arrival draw that crosses
    the phase boundary is discarded and redrawn from the boundary at
    the new phase's rate — the textbook MMPP sampling construction.
    """

    def __init__(
        self,
        phases: Sequence[tuple[float, int]],
        seed: int,
    ) -> None:
        if not phases:
            raise ArrivalError("MMPP needs at least one phase")
        checked: list[tuple[float, int]] = []
        for rate, dwell in phases:
            if rate < 0:
                raise ArrivalError(f"phase rate cannot be negative, got {rate}")
            if dwell <= 0:
                raise ArrivalError(
                    f"phase mean dwell must be positive, got {dwell}"
                )
            checked.append((float(rate), int(dwell)))
        if all(rate == 0 for rate, _ in checked):
            raise ArrivalError("MMPP needs at least one phase with a rate > 0")
        self.phases = checked
        self._rng = random.Random(seed)

    def gaps(self) -> Iterator[int]:
        rng = self._rng
        phases = self.phases
        n = len(phases)
        index = 0
        clock = 0.0
        phase_end = rng.expovariate(1.0) * phases[0][1]
        last_arrival = 0.0
        while True:
            while True:
                rate = phases[index][0]
                if rate > 0:
                    draw = clock + rng.expovariate(1.0) * _US_PER_SEC / rate
                    if draw <= phase_end:
                        clock = draw
                        break
                # No arrival before the phase ends: jump to the boundary
                # and enter the next phase.
                clock = phase_end
                index = (index + 1) % n
                phase_end = clock + rng.expovariate(1.0) * phases[index][1]
            yield max(1, int(round(clock - last_arrival)))
            last_arrival = clock


class TraceArrivals(ArrivalProcess):
    """Replay an explicit arrival trace.

    Entries are ``(offset_us, tag)`` pairs; offsets are relative to the
    engine's start time, must be non-decreasing, and may repeat (a
    thundering herd is many arrivals at one timestamp).  Tags select a
    job template in the engine's template map; ``None`` uses the
    stream's default template.
    """

    def __init__(self, entries: Iterable[tuple[int, Optional[str]]]) -> None:
        parsed: list[tuple[int, Optional[str]]] = []
        last = 0
        for offset, tag in entries:
            offset = int(offset)
            if offset < 0:
                raise ArrivalError(f"trace offset cannot be negative: {offset}")
            if offset < last:
                raise ArrivalError(
                    f"trace offsets must be non-decreasing; {offset} follows {last}"
                )
            last = offset
            parsed.append((offset, tag))
        self.entries = parsed

    @classmethod
    def from_times(cls, times_us: Iterable[int]) -> "TraceArrivals":
        """Build an untagged trace from a list of offsets."""
        return cls((t, None) for t in times_us)

    @classmethod
    def parse(cls, text: str) -> "TraceArrivals":
        """Parse trace text: one ``offset_us [tag]`` per line.

        Blank lines and ``#`` comments are ignored.
        """
        entries: list[tuple[int, Optional[str]]] = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            fields = line.split()
            if len(fields) > 2:
                raise ArrivalError(
                    f"trace line {lineno}: expected 'offset_us [tag]', got {raw!r}"
                )
            try:
                # Plain decimal: exported traces often zero-pad offsets,
                # which base-0 parsing would reject as octal-lookalikes.
                offset = int(fields[0])
            except ValueError:
                raise ArrivalError(
                    f"trace line {lineno}: {fields[0]!r} is not an integer offset"
                ) from None
            entries.append((offset, fields[1] if len(fields) == 2 else None))
        if not entries:
            raise ArrivalError("trace contains no arrivals")
        return cls(entries)

    @classmethod
    def from_file(cls, path: str) -> "TraceArrivals":
        """Parse a trace file (see :meth:`parse` for the format)."""
        try:
            with open(path) as handle:
                text = handle.read()
        except OSError as error:
            raise ArrivalError(f"cannot read trace {path!r}: {error}") from error
        return cls.parse(text)

    def gaps(self) -> Iterator[int]:  # pragma: no cover - schedule overrides
        raise ArrivalError("trace arrivals are absolute; use schedule()")

    def schedule(self, start_us: int = 0) -> Iterator[tuple[int, Optional[str]]]:
        start = int(start_us)
        for offset, tag in self.entries:
            yield start + offset, tag


__all__ = [
    "ArrivalError",
    "ArrivalProcess",
    "DeterministicArrivals",
    "MMPPArrivals",
    "PoissonArrivals",
    "TraceArrivals",
]
