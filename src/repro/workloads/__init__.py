"""Workloads.

Simulated applications used by the examples, experiments and
benchmarks.  Each corresponds to an application class the paper
discusses:

* :mod:`repro.workloads.pulse` — the variable-rate producer/consumer
  pipeline used for the responsiveness experiments (Figures 6 and 7);
* :mod:`repro.workloads.cpu_hog` — the miscellaneous CPU-bound
  competitor ("the load") of Figure 7;
* :mod:`repro.workloads.pipeline` — a multi-stage multimedia pipeline
  with an expensive decoder stage (Section 4.4's example);
* :mod:`repro.workloads.webserver` — a server consuming requests from a
  socket (the "server" class of Section 3.2);
* :mod:`repro.workloads.webfarm` — many such servers on a
  multiprocessor kernel (the SMP scaling scenario);
* :mod:`repro.workloads.interactive` — a tty-driven interactive job;
* :mod:`repro.workloads.io_intensive` — a disk-bottlenecked consumer
  (the "I/O intensive" class), which exercises the reclaim rule;
* :mod:`repro.workloads.modem` — an isochronous software modem, the
  paper's canonical real-time (reservation) application;
* :mod:`repro.workloads.inversion` — the Mars-Pathfinder-style priority
  inversion scenario from Section 2;
* :mod:`repro.workloads.arrivals` / :mod:`repro.workloads.engine` — the
  open-system workload engine: arrival processes (Poisson,
  deterministic, MMPP-style bursty, trace replay) inject finite-demand
  jobs into a running kernel, and phase scripts retime/retarget live
  threads (the churn scenarios and the golden-trace corpus).
"""

from repro.workloads.arrivals import (
    ArrivalError,
    ArrivalProcess,
    DeterministicArrivals,
    MMPPArrivals,
    PoissonArrivals,
    TraceArrivals,
)
from repro.workloads.cpu_hog import CpuHog
from repro.workloads.engine import (
    JobRecord,
    JobStream,
    JobTemplate,
    PhaseScript,
    WorkloadEngine,
    WorkloadError,
    dispatch_fingerprint,
)
from repro.workloads.interactive import InteractiveJob, InteractiveUser
from repro.workloads.inversion import InversionResult, InversionScenario
from repro.workloads.io_intensive import IoIntensiveJob
from repro.workloads.modem import SoftwareModem
from repro.workloads.pipeline import MultimediaPipeline, PipelineStageSpec
from repro.workloads.pulse import (
    PulsePipeline,
    PulseSchedule,
    RateSegment,
)
from repro.workloads.webfarm import WebFarm
from repro.workloads.webserver import WebServer

__all__ = [
    "ArrivalError",
    "ArrivalProcess",
    "CpuHog",
    "DeterministicArrivals",
    "JobRecord",
    "JobStream",
    "JobTemplate",
    "MMPPArrivals",
    "PhaseScript",
    "PoissonArrivals",
    "TraceArrivals",
    "WorkloadEngine",
    "WorkloadError",
    "dispatch_fingerprint",
    "InteractiveJob",
    "InteractiveUser",
    "InversionResult",
    "InversionScenario",
    "IoIntensiveJob",
    "MultimediaPipeline",
    "PipelineStageSpec",
    "PulsePipeline",
    "PulseSchedule",
    "RateSegment",
    "SoftwareModem",
    "WebFarm",
    "WebServer",
]
