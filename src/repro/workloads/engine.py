"""The open-system workload engine.

Everything the repository simulated before this module was a *closed*
system: every thread existed before ``run()`` and survived to the
horizon.  :class:`WorkloadEngine` opens the system — an
:class:`~repro.workloads.arrivals.ArrivalProcess` injects new threads
into a *running* kernel, jobs run a finite demand and exit, and a
:class:`PhaseScript` retimes or retargets live threads (service-demand
changes, arrival-rate changes, CPU re-pins, forced kills, reservation
re-sizes) at scripted virtual times.

The churn contract
------------------
Arrival-driven spawn and mid-run exit are *transitions* for the
run-to-horizon kernel engine: every path that mutates the dispatchable
set funnels through epoch-bumping scheduler hooks
(``Scheduler.add_thread`` / ``remove_thread`` on spawn/exit,
``Scheduler.note_affinity_change`` on re-pins,
``set_reservation`` on re-sizes), and arrivals and phase actions are
ordinary calendar events, so the batcher provably cannot skip across
them.  Both kernel engines therefore produce bit-identical dispatch
logs under churn — enforced by ``tests/test_properties_churn.py`` and
the golden-trace corpus under ``tests/golden/``.

Jobs
----
One arrival spawns one thread from a :class:`JobTemplate`: a finite
compute demand (``total_cpu_us``) consumed in ``burst_us`` chunks,
optionally sleeping (``think_us``) and/or waiting on simulated I/O
(``io_latency_us``) between chunks, then exiting.  Template fields are
read *live*, each loop iteration, so a phase script mutating a
template retimes the jobs already running, not just future arrivals.
Templates carry either a controller :class:`ThreadSpec` (real-time
specs go through admission-on-arrival via
:meth:`ProportionAllocator.would_admit`; a rejected arrival is counted
and never spawned) or a direct scheduler ``reservation`` for
controller-less kernels.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Optional, Union

from repro.sim.errors import SimulationError
from repro.sim.requests import Compute, Sleep, WaitIO
from repro.sim.thread import SchedulingPolicy, SimThread
from repro.workloads.arrivals import ArrivalProcess

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.allocator import ProportionAllocator
    from repro.core.taxonomy import ThreadSpec
    from repro.sim.kernel import Kernel

#: Template pin: a fixed CPU, a function of the job index, or None.
PinSpec = Union[None, int, Callable[[int], int]]


class WorkloadError(SimulationError):
    """The workload engine was driven inconsistently."""


@dataclass
class JobTemplate:
    """Mutable description of the thread one arrival spawns.

    Timing fields (``total_cpu_us``, ``burst_us``, ``think_us``,
    ``io_latency_us``) are read by running job bodies on every loop
    iteration, so mutating them — directly or through
    :meth:`PhaseScript.retime` — retargets live jobs as well as future
    arrivals.

    ``spec`` registers each job with the system's controller
    (:class:`~repro.core.taxonomy.ThreadSpec`; real-time specs face
    admission-on-arrival).  ``reservation`` is the controller-less
    alternative: a ``(proportion_ppt, period_us)`` pair actuated
    directly on a reservation scheduler (ignored by the baseline
    schedulers, which have no reservations).  ``pin`` pins each job to
    a CPU: a fixed index or a callable of the job index (e.g.
    ``lambda i: i % 4``).
    """

    name: str
    total_cpu_us: int = 5_000
    burst_us: int = 1_000
    think_us: int = 0
    io_latency_us: int = 0
    spec: Optional["ThreadSpec"] = None
    reservation: Optional[tuple[int, int]] = None
    pin: PinSpec = None
    priority: int = 0
    nice: int = 0
    tickets: int = 100
    importance: float = 1.0

    #: Fields a phase script may retime.
    MUTABLE_FIELDS = ("total_cpu_us", "burst_us", "think_us", "io_latency_us")

    def __post_init__(self) -> None:
        self._validate()

    def _validate(self) -> None:
        if self.total_cpu_us < 1:
            raise WorkloadError(
                f"template {self.name!r}: total_cpu_us must be >= 1, "
                f"got {self.total_cpu_us}"
            )
        if self.burst_us < 1:
            raise WorkloadError(
                f"template {self.name!r}: burst_us must be >= 1, "
                f"got {self.burst_us}"
            )
        if self.think_us < 0 or self.io_latency_us < 0:
            raise WorkloadError(
                f"template {self.name!r}: think_us/io_latency_us cannot be "
                f"negative"
            )

    def retime(self, **fields: int) -> None:
        """Mutate timing fields (live jobs see the change immediately).

        All-or-nothing: a rejected retime leaves the template exactly
        as it was (live job bodies read these fields mid-flight, so a
        partially-applied invalid update must never be observable).
        """
        for key in fields:
            if key not in self.MUTABLE_FIELDS:
                raise WorkloadError(
                    f"template {self.name!r}: {key!r} is not retimable; "
                    f"allowed: {self.MUTABLE_FIELDS}"
                )
        rollback = {key: getattr(self, key) for key in fields}
        for key, value in fields.items():
            setattr(self, key, int(value))
        try:
            self._validate()
        except WorkloadError:
            for key, value in rollback.items():
                setattr(self, key, value)
            raise

    def resolve_pin(self, index: int) -> Optional[int]:
        """The CPU the ``index``-th job is pinned to (or ``None``)."""
        if callable(self.pin):
            return int(self.pin(index))
        return self.pin


#: The three ways a job leaves the bookkeeping.
JOB_OUTCOMES = ("completed", "killed", "rejected")

#: Wire-format version of :meth:`JobRecord.to_dict`; bump when its
#: field set changes (enforced by the wire-format lint check).
RECORD_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class JobRecord:
    """One job's lifetime, recorded when it leaves the system.

    ``tag`` is the arrival tag that selected the template (or the
    template's name for untagged streams), so downstream analysis can
    group sojourn percentiles by job class.  ``outcome`` is one of
    :data:`JOB_OUTCOMES`: ``completed`` (ran its full demand),
    ``killed`` (forced out mid-run) or ``rejected`` (denied admission
    — no thread ever existed; ``end_us == spawn_us``).  Only
    ``completed`` records carry a meaningful sojourn.
    """

    stream: str
    index: int
    tag: str
    spawn_us: int
    end_us: int
    outcome: str

    @property
    def sojourn_us(self) -> int:
        """Arrival-to-exit latency (0 for rejected arrivals)."""
        return self.end_us - self.spawn_us

    def to_dict(self) -> dict:
        """JSON-safe wire form (the record schema the report reads)."""
        return {
            "stream": self.stream,
            "index": self.index,
            "tag": self.tag,
            "spawn_us": self.spawn_us,
            "end_us": self.end_us,
            "outcome": self.outcome,
            "sojourn_us": self.sojourn_us,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JobRecord":
        """Rebuild from the :meth:`to_dict` form.

        The derived ``sojourn_us`` key is recomputed, not read back.
        """
        return cls(
            stream=str(payload["stream"]),
            index=int(payload["index"]),
            tag=str(payload["tag"]),
            spawn_us=int(payload["spawn_us"]),
            end_us=int(payload["end_us"]),
            outcome=str(payload["outcome"]),
        )


@dataclass
class JobStream:
    """One arrival process feeding one (or a tag map of) template(s).

    Bookkeeping is in job counts: ``spawned`` (threads created),
    ``rejected`` (arrivals denied admission — no thread was created),
    ``completed`` (ran their full demand and exited), ``killed``
    (forced out by a phase script).  ``records`` holds one
    :class:`JobRecord` per job that left the system (completed, killed
    or rejected), in departure order — the raw material for per-tag
    sojourn percentiles and response curves.
    """

    name: str
    template: JobTemplate
    arrivals: ArrivalProcess
    templates: Mapping[str, JobTemplate] = field(default_factory=dict)
    max_arrivals: Optional[int] = None
    stop_us: Optional[int] = None

    spawned: int = 0
    rejected: int = 0
    completed: int = 0
    killed: int = 0
    records: list[JobRecord] = field(default_factory=list)
    #: Job index -> live thread, in spawn order.
    live: dict[int, SimThread] = field(default_factory=dict)
    #: Job index -> (tag, spawn time) for live jobs, finalized into a
    #: :class:`JobRecord` when the job leaves.
    inflight: dict[int, tuple[str, int]] = field(default_factory=dict)

    def arrivals_seen(self) -> int:
        """Arrivals processed so far (spawned + rejected)."""
        return self.spawned + self.rejected

    def template_for(self, tag: Optional[str]) -> JobTemplate:
        """The template a tagged arrival spawns from."""
        if tag is None:
            return self.template
        template = self.templates.get(tag)
        if template is None:
            raise WorkloadError(
                f"stream {self.name!r}: arrival tag {tag!r} has no template; "
                f"known tags: {sorted(self.templates)}"
            )
        return template

    def completed_sojourns_us(self) -> list[int]:
        """Sojourn times of completed jobs, in completion order."""
        return [r.sojourn_us for r in self.records if r.outcome == "completed"]

    def mean_sojourn_us(self) -> float:
        """Mean completed-job sojourn time.

        ``nan`` when no job ever completed — a stream that never
        finished anything must not masquerade as one with zero
        latency.
        """
        sojourns = self.completed_sojourns_us()
        if not sojourns:
            return float("nan")
        return sum(sojourns) / len(sojourns)

    def _finish(self, index: int, tag: str, spawn_us: int, end_us: int,
                outcome: str) -> None:
        self.records.append(
            JobRecord(
                stream=self.name,
                index=index,
                tag=tag,
                spawn_us=spawn_us,
                end_us=end_us,
                outcome=outcome,
            )
        )


class WorkloadEngine:
    """Injects arrival-driven thread churn into a running kernel.

    Parameters
    ----------
    kernel:
        The kernel to inject into.  Arrivals become calendar events on
        its :class:`~repro.sim.events.EventCalendar`, so they interact
        correctly with both time-advancement engines (an arrival ends a
        run-to-horizon batch exactly like any other event).
    allocator:
        Optional controller.  When given, jobs whose template carries a
        ``spec`` are registered with it (real-time specs go through
        admission-on-arrival and may be *rejected*: counted, never
        spawned).  Reclaim is the system's normal path — an exiting
        job's reservation is released by the scheduler immediately and
        the controller drops its state on the next tick.
    """

    def __init__(
        self,
        kernel: "Kernel",
        *,
        allocator: Optional["ProportionAllocator"] = None,
    ) -> None:
        self.kernel = kernel
        self.allocator = allocator
        self.streams: list[JobStream] = []
        self._started = False

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    def add_stream(
        self,
        name: str,
        arrivals: ArrivalProcess,
        template: JobTemplate,
        *,
        templates: Optional[Mapping[str, JobTemplate]] = None,
        max_arrivals: Optional[int] = None,
        stop_us: Optional[int] = None,
    ) -> JobStream:
        """Register an arrival stream (before or after :meth:`start`).

        ``max_arrivals`` bounds how many arrivals are processed;
        ``stop_us`` discards arrivals scheduled after that virtual
        time.  Streams added after :meth:`start` begin immediately.
        """
        if any(s.name == name for s in self.streams):
            raise WorkloadError(f"stream {name!r} already exists")
        all_templates = dict(templates or {})
        for tmpl in [template, *all_templates.values()]:
            if tmpl.spec is not None and self.allocator is None:
                raise WorkloadError(
                    f"stream {name!r}: template {tmpl.name!r} carries a "
                    f"controller spec but the engine has no allocator"
                )
        stream = JobStream(
            name=name,
            template=template,
            arrivals=arrivals,
            templates=all_templates,
            max_arrivals=max_arrivals,
            stop_us=stop_us,
        )
        self.streams.append(stream)
        if self._started:
            self._launch(stream)
        return stream

    def stream(self, name: str) -> JobStream:
        """Look up a stream by name."""
        for stream in self.streams:
            if stream.name == name:
                return stream
        raise WorkloadError(
            f"no stream named {name!r}; known: {[s.name for s in self.streams]}"
        )

    def start(self, script: Optional["PhaseScript"] = None) -> None:
        """Begin injecting arrivals (and install ``script`` if given)."""
        if self._started:
            raise WorkloadError("workload engine already started")
        self._started = True
        for stream in self.streams:
            self._launch(stream)
        if script is not None:
            script.install(self)

    # ------------------------------------------------------------------
    # arrival plumbing
    # ------------------------------------------------------------------
    def _launch(self, stream: JobStream) -> None:
        schedule = stream.arrivals.schedule(self.kernel.now)
        self._arm_next(stream, schedule)

    def _arm_next(self, stream: JobStream, schedule) -> None:
        if (
            stream.max_arrivals is not None
            and stream.arrivals_seen() >= stream.max_arrivals
        ):
            return
        try:
            at_us, tag = next(schedule)
        except StopIteration:
            return
        if stream.stop_us is not None and at_us > stream.stop_us:
            return

        def _arrive() -> None:
            self._spawn(stream, tag, self.kernel.now)
            self._arm_next(stream, schedule)

        self.kernel.events.schedule(at_us, _arrive, label=f"arrival:{stream.name}")

    def _spawn(
        self, stream: JobStream, tag: Optional[str], now: int
    ) -> Optional[SimThread]:
        template = stream.template_for(tag)
        index = stream.arrivals_seen()
        name = f"{stream.name}.{index}"
        pin = template.resolve_pin(index)
        if (
            pin is not None
            and 0 <= pin < self.kernel.n_cpus
            and not self.kernel.cpu_is_online(pin)
        ):
            # The pinned CPU is offline (failed): park the arrival on
            # the lowest online CPU, mirroring the kernel's drain
            # semantics for threads displaced by ``fail_cpu``.  An
            # out-of-range pin still raises — that is a configuration
            # error, not a degraded machine.
            pin = self.kernel.online_cpu_indices()[0]
        spec = template.spec
        record_tag = tag if tag is not None else template.name
        if (
            spec is not None
            and spec.specifies_proportion
            and self.allocator is not None
            and not self.allocator.would_admit(
                spec.proportion_ppt, affinity=pin, name=name
            )
        ):
            # Admission-on-arrival: a denied real-time job never enters
            # the system (no thread is created, no tid is consumed by
            # the scheduler).
            stream.rejected += 1
            stream._finish(index, record_tag, now, now, "rejected")
            return None
        # Jobs with neither a controller spec nor a direct reservation
        # are best-effort: under a bare reservation scheduler the
        # default RESERVATION policy would park them on a permanent
        # zero-proportion reservation (it is the controller that raises
        # those), so they would never run.
        policy = (
            SchedulingPolicy.RESERVATION
            if spec is not None or template.reservation is not None
            else SchedulingPolicy.BEST_EFFORT
        )
        thread = SimThread(
            name,
            self._make_body(stream, template, index, now),
            policy=policy,
            priority=template.priority,
            nice=template.nice,
            tickets=template.tickets,
            importance=template.importance,
            affinity=pin,
        )
        self.kernel.add_thread(thread)
        if spec is not None and self.allocator is not None:
            self.allocator.register(thread, spec)
        elif template.reservation is not None:
            set_reservation = getattr(self.kernel.scheduler, "set_reservation", None)
            if set_reservation is not None:
                set_reservation(thread, *template.reservation)
        stream.spawned += 1
        stream.live[index] = thread
        stream.inflight[index] = (record_tag, now)
        return thread

    def _make_body(
        self, stream: JobStream, template: JobTemplate, index: int, spawned_at: int
    ):
        def body(env):
            consumed = 0
            while True:
                # Template fields are read live so a phase script's
                # retime reshapes jobs already in flight.
                target = template.total_cpu_us
                if consumed >= target:
                    break
                step = target - consumed
                burst = template.burst_us
                if burst < step:
                    step = burst
                yield Compute(step)
                consumed += step
                if consumed >= template.total_cpu_us:
                    break
                think = template.think_us
                if think > 0:
                    yield Sleep(think)
                latency = template.io_latency_us
                if latency > 0:
                    yield WaitIO(latency, tag=stream.name)
            # Natural completion (runs as the generator finishes, at
            # the exiting dispatch's exact virtual time).
            stream.completed += 1
            stream.live.pop(index, None)
            tag, spawn_us = stream.inflight.pop(index)
            stream._finish(index, tag, spawn_us, env.now, "completed")

        return body

    # ------------------------------------------------------------------
    # live-job actions (used directly and by PhaseScript)
    # ------------------------------------------------------------------
    def _victims(
        self, stream: JobStream, count: Optional[int]
    ) -> list[tuple[int, SimThread]]:
        victims = list(stream.live.items())
        if count is not None:
            victims = victims[:count]
        return victims

    def kill(self, stream: JobStream, count: Optional[int] = None) -> int:
        """Force-exit up to ``count`` live jobs (oldest first; all by
        default).  Returns how many were actually killed.

        A job only leaves ``live`` tracking *counted*: on a successful
        :meth:`Kernel.kill_thread` it is counted (and recorded) as
        killed.  ``kill_thread`` returning ``False`` means the thread
        had already exited — natural completion removes its own
        ``live`` entry at the exiting dispatch, and the engine never
        runs between taking the victim snapshot and killing, so a
        ``False`` victim can only be a thread force-killed *outside*
        the engine (``kernel.kill_thread`` called directly).  Such a
        job did not complete; it is accounted as killed rather than
        silently dropped.
        """
        killed = 0
        now = self.kernel.now
        for index, thread in self._victims(stream, count):
            if self.kernel.kill_thread(thread):
                killed += 1
            # else: the victim is EXITED yet still live-tracked.
            # Natural completion pops its own ``live`` entry at the
            # exiting dispatch, and no simulation runs between the
            # victim snapshot above and this call, so a ``False`` here
            # can only be a thread force-killed outside the engine
            # (``kernel.kill_thread`` called directly).  It did not
            # complete — account it as killed either way, so
            # spawned == completed + killed + live stays true.
            stream.killed += 1
            stream.live.pop(index, None)
            tag, spawn_us = stream.inflight.pop(index)
            stream._finish(index, tag, spawn_us, now, "killed")
        return killed

    def repin(self, stream: JobStream, cpu: Optional[int],
              count: Optional[int] = None) -> int:
        """Re-pin up to ``count`` live jobs to ``cpu`` (``None`` unpins)."""
        moved = 0
        for _, thread in self._victims(stream, count):
            thread.pin_to(cpu)
            moved += 1
        return moved

    def set_reservation(
        self,
        stream: JobStream,
        proportion_ppt: int,
        period_us: int,
        count: Optional[int] = None,
    ) -> int:
        """Re-size live jobs' reservations (reservation schedulers only)."""
        set_reservation = getattr(self.kernel.scheduler, "set_reservation", None)
        if set_reservation is None:
            raise WorkloadError(
                f"scheduler {type(self.kernel.scheduler).__name__} has no "
                f"reservations to re-size"
            )
        changed = 0
        for _, thread in self._victims(stream, count):
            set_reservation(thread, proportion_ppt, period_us)
            changed += 1
        return changed

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    def spawned_total(self) -> int:
        return sum(s.spawned for s in self.streams)

    def rejected_total(self) -> int:
        return sum(s.rejected for s in self.streams)

    def completed_total(self) -> int:
        return sum(s.completed for s in self.streams)

    def killed_total(self) -> int:
        return sum(s.killed for s in self.streams)

    def live_total(self) -> int:
        return sum(len(s.live) for s in self.streams)

    def records(self) -> list[JobRecord]:
        """Every stream's job records, in stream order.

        Departure order within a stream is preserved; for a global
        departure order sort by ``end_us`` (ties by stream then index).
        """
        out: list[JobRecord] = []
        for stream in self.streams:
            out.extend(stream.records)
        return out

    def mean_sojourn_us(self) -> float:
        """Mean sojourn across all completed jobs of all streams.

        ``nan`` when no job of any stream ever completed (see
        :meth:`JobStream.mean_sojourn_us`).
        """
        total = 0
        count = 0
        for stream in self.streams:
            for sojourn in stream.completed_sojourns_us():
                total += sojourn
                count += 1
        if count == 0:
            return float("nan")
        return total / count


class PhaseScript:
    """Scripted retiming/retargeting of a running workload.

    Actions are scheduled as one-shot calendar events at absolute
    virtual times when the script is installed (``engine.start(script)``
    or :meth:`install`), so they are ordinary transitions for both
    kernel engines.  Equal-time actions fire in the order they were
    added (the calendar's sequence numbers guarantee it).
    """

    def __init__(self) -> None:
        self._actions: list[tuple[int, str, Callable[["WorkloadEngine", int], None]]] = []
        self._installed = False

    def at(
        self,
        at_us: int,
        action: Callable[["WorkloadEngine", int], None],
        label: str = "phase",
    ) -> "PhaseScript":
        """Run ``action(engine, now)`` at virtual time ``at_us``."""
        if at_us < 0:
            raise WorkloadError(f"phase action time cannot be negative: {at_us}")
        if self._installed:
            raise WorkloadError("phase script already installed")
        self._actions.append((int(at_us), label, action))
        return self

    # -- declarative helpers (all return self for chaining) ------------
    def retime(self, at_us: int, template: JobTemplate, **fields: int) -> "PhaseScript":
        """Mutate a template's timing fields at ``at_us`` (live jobs too)."""
        return self.at(
            at_us,
            lambda engine, now: template.retime(**fields),
            label=f"retime:{template.name}",
        )

    def set_rate(
        self, at_us: int, arrivals: ArrivalProcess, rate_per_s: float
    ) -> "PhaseScript":
        """Change an arrival process's rate at ``at_us``."""
        return self.at(
            at_us,
            lambda engine, now: arrivals.set_rate(rate_per_s),
            label="set_rate",
        )

    def kill(
        self, at_us: int, stream: JobStream, count: Optional[int] = None
    ) -> "PhaseScript":
        """Force-exit live jobs of ``stream`` at ``at_us``."""
        return self.at(
            at_us,
            lambda engine, now: engine.kill(stream, count),
            label=f"kill:{stream.name}",
        )

    def repin(
        self,
        at_us: int,
        stream: JobStream,
        cpu: Optional[int],
        count: Optional[int] = None,
    ) -> "PhaseScript":
        """Re-pin live jobs of ``stream`` to ``cpu`` at ``at_us``."""
        return self.at(
            at_us,
            lambda engine, now: engine.repin(stream, cpu, count),
            label=f"repin:{stream.name}",
        )

    def set_reservation(
        self,
        at_us: int,
        stream: JobStream,
        proportion_ppt: int,
        period_us: int,
        count: Optional[int] = None,
    ) -> "PhaseScript":
        """Re-size live jobs' reservations at ``at_us``."""
        return self.at(
            at_us,
            lambda engine, now: engine.set_reservation(
                stream, proportion_ppt, period_us, count
            ),
            label=f"reserve:{stream.name}",
        )

    # ------------------------------------------------------------------
    def install(self, engine: "WorkloadEngine") -> None:
        """Schedule every action on the engine's kernel calendar."""
        if self._installed:
            raise WorkloadError("phase script already installed")
        self._installed = True
        kernel = engine.kernel
        now = kernel.now
        stale = [at_us for at_us, _, _ in self._actions if at_us < now]
        if stale:
            # A mid-run install must not silently shift the scripted
            # timeline: an already-past action would fire "now" instead
            # of at its scripted time.
            raise WorkloadError(
                f"phase actions at {stale} are already in the past "
                f"(virtual time is {now})"
            )
        for at_us, label, action in self._actions:

            def _fire(action=action) -> None:
                action(engine, kernel.now)

            kernel.events.schedule(at_us, _fire, label=label)


def dispatch_fingerprint(kernel: "Kernel") -> str:
    """SHA-256 digest of the kernel's full dispatch log.

    Requires ``Kernel(record_dispatches=True)``.  Two runs have equal
    fingerprints iff their `(time, cpu, thread, outcome, consumed)`
    dispatch sequences are identical — the conformance check behind the
    golden-trace corpus and the engine-differential scenario tests.

    Entries are hashed field-by-field (``|``-joined, ``;``-terminated),
    so the historical 5-tuple entries hash to exactly the bytes they
    always did, while a topology kernel's 6-tuple entries (migration
    penalty appended) extend the digest rather than breaking it — a
    zero-penalty run therefore fingerprints identically to a kernel
    with no topology at all.
    """
    log = kernel.dispatch_log
    if log is None:
        raise WorkloadError(
            "dispatch fingerprint needs Kernel(record_dispatches=True)"
        )
    digest = hashlib.sha256()
    for entry in log:
        digest.update("|".join(map(str, entry)).encode())
        digest.update(b";")
    return digest.hexdigest()


__all__ = [
    "JOB_OUTCOMES",
    "JobRecord",
    "JobStream",
    "JobTemplate",
    "PhaseScript",
    "WorkloadEngine",
    "WorkloadError",
    "dispatch_fingerprint",
]
