"""I/O-intensive job.

"Applications that process large data sets can be considered consumers
of data that is produced by the I/O subsystem.  As such, they need to
be given sufficient CPU to keep the disks busy."

The prefetcher stands in for the paper's informed-prefetching interface
(TIP / Dynamic Sets): it issues simulated disk reads and deposits the
blocks into a staging buffer that is registered as the application's
progress metric.  Because the *disk* is the bottleneck, giving the
application more CPU than it needs to drain the buffer is wasted — this
is exactly the situation the Figure 4 reclaim rule ("too generous")
exists for, and the workload's tests assert that the controller
converges to an allocation near the disk-limited requirement instead of
the much larger amount a naive constant-pressure policy would grant.
"""

from __future__ import annotations

from typing import Optional

from repro.core.taxonomy import ThreadSpec
from repro.ipc.bounded_buffer import BoundedBuffer
from repro.ipc.roles import Role
from repro.sim.requests import Compute, Get, Put, WaitIO
from repro.sim.thread import SimThread, ThreadEnv
from repro.system import RealRateSystem


class IoIntensiveJob:
    """A disk-bottlenecked consumer fed by a prefetching thread.

    Parameters
    ----------
    block_bytes:
        Size of each disk block.
    disk_latency_us:
        Simulated latency of one disk read (the bottleneck).
    compute_us_per_block:
        CPU the application spends processing each block.
    buffer_capacity_bytes:
        Capacity of the staging buffer (the progress metric).
    """

    def __init__(
        self,
        block_bytes: int = 4_096,
        disk_latency_us: int = 8_000,
        compute_us_per_block: int = 1_000,
        buffer_capacity_bytes: int = 64 * 1024,
    ) -> None:
        if disk_latency_us <= 0:
            raise ValueError(
                f"disk latency must be positive, got {disk_latency_us}"
            )
        if compute_us_per_block <= 0:
            raise ValueError(
                f"compute per block must be positive, got {compute_us_per_block}"
            )
        self.block_bytes = block_bytes
        self.disk_latency_us = disk_latency_us
        self.compute_us_per_block = compute_us_per_block
        self.buffer_capacity_bytes = buffer_capacity_bytes

        self.buffer: Optional[BoundedBuffer] = None
        self.prefetcher: Optional[SimThread] = None
        self.app: Optional[SimThread] = None
        self.blocks_read = 0
        self.blocks_processed = 0

    # ------------------------------------------------------------------
    # thread bodies
    # ------------------------------------------------------------------
    def _prefetcher_body(self, env: ThreadEnv):
        # The prefetcher needs almost no CPU: it issues a read, waits for
        # the disk, and deposits the block.
        while True:
            yield Compute(50)
            yield WaitIO(self.disk_latency_us, tag="disk")
            yield Put(self.buffer, self.block_bytes)
            self.blocks_read += 1

    def _app_body(self, env: ThreadEnv):
        while True:
            yield Get(self.buffer, self.block_bytes)
            yield Compute(self.compute_us_per_block)
            self.blocks_processed += 1

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, system: RealRateSystem, name: str = "io", **kwargs) -> "IoIntensiveJob":
        """Build the prefetcher/application pair inside ``system``."""
        job = cls(**kwargs)
        job.buffer = BoundedBuffer(f"{name}.staging", job.buffer_capacity_bytes)
        # The prefetcher behaves like an in-kernel I/O subsystem thread:
        # a small fixed reservation is plenty since it is latency-bound.
        job.prefetcher = system.spawn_controlled(
            f"{name}.prefetch",
            job._prefetcher_body,
            spec=ThreadSpec(proportion_ppt=20, period_us=10_000),
        )
        job.app = system.spawn_controlled(
            f"{name}.app", job._app_body, spec=ThreadSpec()
        )
        system.link(job.prefetcher, job.buffer, Role.PRODUCER)
        system.link(job.app, job.buffer, Role.CONSUMER)
        return job

    # ------------------------------------------------------------------
    # measurement helpers
    # ------------------------------------------------------------------
    def disk_limited_fraction(self) -> float:
        """CPU fraction actually needed to keep up with the disk.

        One block arrives every ``disk_latency_us`` (plus the tiny issue
        cost), and each needs ``compute_us_per_block`` of CPU.
        """
        return self.compute_us_per_block / (self.disk_latency_us + 50)

    def throughput_blocks_per_s(self, elapsed_us: int) -> float:
        """Blocks processed per second of virtual time."""
        if elapsed_us <= 0:
            return 0.0
        return self.blocks_processed * 1_000_000 / elapsed_us


__all__ = ["IoIntensiveJob"]
