"""repro — a feedback-driven proportion allocator for real-rate scheduling.

A from-scratch Python reproduction of

    "A Feedback-driven Proportion Allocator for Real-Rate Scheduling",
    David C. Steere, Ashvin Goel, Joshua Gruenberg, Dylan McNamee,
    Calton Pu, Jonathan Walpole.  OSDI 1999 (OGI CSE TR 98-014).

The library has two layers:

* a **substrate**: a deterministic discrete-event simulation of a
  single CPU with a proportion/period reservation scheduler
  (:mod:`repro.sim`, :mod:`repro.sched`), symbiotic IPC interfaces
  (:mod:`repro.ipc`) and progress monitors (:mod:`repro.monitor`) —
  standing in for the paper's modified Linux 2.0.35 kernel; and
* the **contribution**: a SWiFT-style feedback toolkit
  (:mod:`repro.swift`) and the adaptive proportion/period controller
  built on it (:mod:`repro.core`), plus the workloads
  (:mod:`repro.workloads`), analysis tools (:mod:`repro.analysis`) and
  experiment drivers (:mod:`repro.experiments`) that reproduce the
  paper's figures.

Quick start
-----------
::

    from repro import build_real_rate_system
    from repro.workloads.pulse import PulsePipeline, PulseSchedule

    system = build_real_rate_system()
    pipeline = PulsePipeline.attach(system)
    system.kernel.run_for(5_000_000)          # five simulated seconds
    print(pipeline.queue.fill_level())

See ``examples/`` for complete programs and ``EXPERIMENTS.md`` for the
figure-by-figure reproduction results.
"""

from repro._version import __version__
from repro.core import (
    AdmissionError,
    AllocationDecision,
    ControllerConfig,
    ControllerDriver,
    ControllerOverheadModel,
    ProportionAllocator,
    QualityException,
    ThreadClass,
    ThreadSpec,
)
from repro.ipc import BoundedBuffer, Pipe, Role, Socket, SymbioticRegistry, TTY
from repro.sched import ReservationScheduler
from repro.sim import Kernel, SimThread
from repro.system import RealRateSystem, build_real_rate_system

__all__ = [
    "AdmissionError",
    "AllocationDecision",
    "BoundedBuffer",
    "ControllerConfig",
    "ControllerDriver",
    "ControllerOverheadModel",
    "Kernel",
    "Pipe",
    "ProportionAllocator",
    "QualityException",
    "RealRateSystem",
    "ReservationScheduler",
    "Role",
    "SimThread",
    "Socket",
    "SymbioticRegistry",
    "TTY",
    "ThreadClass",
    "ThreadSpec",
    "build_real_rate_system",
    "__version__",
]
