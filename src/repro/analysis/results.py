"""Experiment result records and text-table rendering.

Every experiment driver returns an :class:`ExperimentResult` carrying
the figure/table identifier, the headline metrics, the paper's reported
values for comparison, and the raw series needed to draw the figure.
``format_table`` renders a list of ``(label, paper, measured)`` rows as
a plain-text table for the examples and for EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence


@dataclass
class ExperimentResult:
    """A reproduced experiment's outputs."""

    experiment_id: str
    title: str
    metrics: dict[str, float] = field(default_factory=dict)
    paper_values: dict[str, float] = field(default_factory=dict)
    series: dict[str, tuple[list[float], list[float]]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def metric(self, name: str) -> float:
        """Look up a metric, with a clear error when missing."""
        if name not in self.metrics:
            raise KeyError(
                f"experiment {self.experiment_id!r} has no metric {name!r}; "
                f"available: {sorted(self.metrics)}"
            )
        return self.metrics[name]

    def add_series(self, name: str, times: Sequence[float], values: Sequence[float]) -> None:
        """Store a (times, values) series for later plotting/inspection."""
        self.series[name] = (list(times), list(values))

    def comparison_rows(self) -> list[tuple[str, Optional[float], float]]:
        """Rows of (metric, paper value or None, measured value)."""
        rows: list[tuple[str, Optional[float], float]] = []
        for name, measured in self.metrics.items():
            rows.append((name, self.paper_values.get(name), measured))
        return rows

    def summary(self) -> str:
        """Human-readable one-block summary."""
        lines = [f"[{self.experiment_id}] {self.title}"]
        lines.append(format_table(self.comparison_rows()))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def _format_value(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    rows: Sequence[tuple[str, Optional[float], float]],
    headers: tuple[str, str, str] = ("metric", "paper", "measured"),
) -> str:
    """Render (label, paper, measured) rows as an aligned text table."""
    table_rows = [headers] + [
        (label, _format_value(paper), _format_value(measured))
        for label, paper, measured in rows
    ]
    widths = [max(len(str(row[col])) for row in table_rows) for col in range(3)]
    lines = []
    for i, row in enumerate(table_rows):
        line = "  ".join(str(cell).ljust(widths[col]) for col, cell in enumerate(row))
        lines.append("  " + line)
        if i == 0:
            lines.append("  " + "  ".join("-" * w for w in widths))
    return "\n".join(lines)


__all__ = ["ExperimentResult", "format_table"]
