"""Experiment result records, serialization and text-table rendering.

Every experiment driver returns an :class:`ExperimentResult` carrying
the figure/table identifier, the headline metrics, the paper's reported
values for comparison, and the raw series needed to draw the figure.

Results round-trip through JSON (``to_dict``/``from_dict``/``to_json``/
``from_json``) so that sweep workers can return them across process
boundaries and so that ``python -m repro run --json`` can emit versioned
artifacts.  The wire format is schema-versioned
(:data:`RESULT_SCHEMA_VERSION`) and stamped with the package version.

``format_table`` renders a list of ``(label, paper, measured)`` rows as
a plain-text table for the examples and for EXPERIMENTS.md; rows whose
paper value is absent render an em dash aligned with the numeric
column.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from repro._version import __version__

#: Version of the ``ExperimentResult`` wire format.  Bump when the
#: shape of :meth:`ExperimentResult.to_dict` changes incompatibly.
RESULT_SCHEMA_VERSION = 1

#: Placeholder rendered when a row has no paper-reported value.
NO_PAPER_VALUE = "—"  # em dash


@dataclass
class ExperimentResult:
    """A reproduced experiment's outputs."""

    experiment_id: str
    title: str
    metrics: dict[str, float] = field(default_factory=dict)
    paper_values: dict[str, float] = field(default_factory=dict)
    series: dict[str, tuple[list[float], list[float]]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)

    def metric(self, name: str) -> float:
        """Look up a metric, with a clear error when missing."""
        if name not in self.metrics:
            raise KeyError(
                f"experiment {self.experiment_id!r} has no metric {name!r}; "
                f"available: {sorted(self.metrics)}"
            )
        return self.metrics[name]

    def add_series(self, name: str, times: Sequence[float], values: Sequence[float]) -> None:
        """Store a (times, values) series for later plotting/inspection."""
        self.series[name] = (list(times), list(values))

    def comparison_rows(self) -> list[tuple[str, Optional[float], float]]:
        """Rows of (metric, paper value or None, measured value)."""
        rows: list[tuple[str, Optional[float], float]] = []
        for name, measured in self.metrics.items():
            rows.append((name, self.paper_values.get(name), measured))
        return rows

    def summary(self) -> str:
        """Human-readable one-block summary."""
        lines = [f"[{self.experiment_id}] {self.title}"]
        lines.append(format_table(self.comparison_rows()))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """The JSON-safe wire form of this result.

        Includes the schema version and the producing package version so
        artifacts on disk identify themselves.
        """
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "repro_version": __version__,
            "experiment_id": self.experiment_id,
            "title": self.title,
            "metrics": dict(self.metrics),
            "paper_values": dict(self.paper_values),
            "series": {
                name: {"times": list(times), "values": list(values)}
                for name, (times, values) in self.series.items()
            },
            "notes": list(self.notes),
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output."""
        schema = data.get("schema_version")
        if schema != RESULT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported result schema version {schema!r} "
                f"(this library reads version {RESULT_SCHEMA_VERSION})"
            )
        return cls(
            experiment_id=data["experiment_id"],
            title=data["title"],
            metrics=dict(data.get("metrics", {})),
            paper_values=dict(data.get("paper_values", {})),
            series={
                name: (list(entry["times"]), list(entry["values"]))
                for name, entry in data.get("series", {}).items()
            },
            notes=list(data.get("notes", [])),
            metadata=dict(data.get("metadata", {})),
        )

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        """Deterministic JSON text (sorted keys) for artifact files."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


def _format_value(value: Optional[float]) -> str:
    if value is None:
        return NO_PAPER_VALUE
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    rows: Sequence[tuple[str, Optional[float], float]],
    headers: tuple[str, str, str] = ("metric", "paper", "measured"),
) -> str:
    """Render (label, paper, measured) rows as an aligned text table.

    The label column is left-justified; the two value columns are
    right-justified so numbers line up, and an absent paper value
    renders as an em dash in the same right-aligned column.
    """
    table_rows = [headers] + [
        (label, _format_value(paper), _format_value(measured))
        for label, paper, measured in rows
    ]
    widths = [max(len(str(row[col])) for row in table_rows) for col in range(3)]
    lines = []
    for i, row in enumerate(table_rows):
        cells = [
            str(cell).ljust(widths[col]) if col == 0 else str(cell).rjust(widths[col])
            for col, cell in enumerate(row)
        ]
        lines.append("  " + "  ".join(cells))
        if i == 0:
            lines.append("  " + "  ".join("-" * w for w in widths))
    return "\n".join(lines)


__all__ = [
    "ExperimentResult",
    "NO_PAPER_VALUE",
    "RESULT_SCHEMA_VERSION",
    "format_table",
]
