"""Markdown report rendering for result-JSON artifacts.

``python -m repro report artifact.json`` turns the schema-versioned
JSON written by ``run --json`` / ``sweep --json`` into a human-readable
markdown report: the metrics table, per-tag exact-rank sojourn
percentiles, the latency-vs-offered-load response curve (with its knee
and a unicode sparkline "plot"), the SLO-vs-PID controller comparison,
and sparklines of every recorded time series.

Everything is rendered from the artifact alone — no simulation state —
so a report is reproducible from a file checked in years ago, and a
fixed seed produces byte-identical markdown (sections and rows are
emitted in deterministic order, numbers through one fixed formatter).
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Optional, Sequence

from repro.analysis.series import find_knee, sparkline
from repro.analysis.sojourn import response_curve_series

#: Placeholder for absent values (no completions, no paper figure).
_ABSENT = "—"

#: Width of sparkline "plots" in rendered reports.
_SPARK_WIDTH = 48


class ReportError(Exception):
    """An artifact that cannot be rendered (bad file, unknown shape)."""


def _fmt(value: Any) -> str:
    """One deterministic number format for every report cell."""
    if value is None:
        return _ABSENT
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def _fmt_us_as_ms(value: Optional[float]) -> str:
    """Microsecond latency cell rendered in milliseconds."""
    if value is None:
        return _ABSENT
    return _fmt(float(value) / 1_000.0)


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> list[str]:
    """A GitHub-markdown table as a list of lines."""
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return lines


def _metrics_section(data: Mapping[str, Any]) -> list[str]:
    metrics = data.get("metrics") or {}
    if not metrics:
        return []
    paper = data.get("paper_values") or {}
    lines = ["## Metrics", ""]
    if paper:
        rows = [
            [name, _fmt(paper.get(name)), _fmt(metrics[name])]
            for name in sorted(metrics)
        ]
        lines += _table(("metric", "paper", "measured"), rows)
    else:
        rows = [[name, _fmt(metrics[name])] for name in sorted(metrics)]
        lines += _table(("metric", "value"), rows)
    return lines + [""]


_PERCENTILE_HEADERS = (
    "tag", "completed", "killed", "rejected",
    "mean ms", "p50 ms", "p95 ms", "p99 ms", "p99.9 ms",
)


def _percentile_row(stats: Mapping[str, Any]) -> list[str]:
    return [
        str(stats["tag"]),
        _fmt(stats["completed"]),
        _fmt(stats["killed"]),
        _fmt(stats["rejected"]),
        _fmt_us_as_ms(stats.get("mean_us")),
        _fmt_us_as_ms(stats.get("p50_us")),
        _fmt_us_as_ms(stats.get("p95_us")),
        _fmt_us_as_ms(stats.get("p99_us")),
        _fmt_us_as_ms(stats.get("p999_us")),
    ]


def _sojourn_section(metadata: Mapping[str, Any]) -> list[str]:
    percentiles = metadata.get("sojourn_percentiles")
    if not percentiles:
        return []
    # The "all" aggregate leads; tags follow in sorted order.
    tags = sorted(tag for tag in percentiles if tag != "all")
    ordered = (["all"] if "all" in percentiles else []) + tags
    rows = [_percentile_row(percentiles[tag]) for tag in ordered]
    return (
        ["## Sojourn percentiles by tag", "",
         "Exact-rank (nearest-rank) percentiles over completed jobs; "
         "killed and rejected jobs are counted but never contribute a "
         "latency sample.", ""]
        + _table(_PERCENTILE_HEADERS, rows)
        + [""]
    )


def _response_curve_section(metadata: Mapping[str, Any]) -> list[str]:
    points = metadata.get("response_curve")
    if not points:
        return []
    headers = ("offered/s", "completed", "rejected",
               "p50 ms", "p95 ms", "p99 ms", "p99.9 ms")
    rows = [
        [
            _fmt(point["offered_per_s"]),
            _fmt(point["completed"]),
            _fmt(point["rejected"]),
            _fmt_us_as_ms(point.get("p50_us")),
            _fmt_us_as_ms(point.get("p95_us")),
            _fmt_us_as_ms(point.get("p99_us")),
            _fmt_us_as_ms(point.get("p999_us")),
        ]
        for point in points
    ]
    lines = ["## Response curve", ""] + _table(headers, rows) + [""]
    xs, p99_ms = response_curve_series(points, field="p99_us")
    if len(xs) >= 3:
        knee = find_knee(xs, p99_ms)
        lines.append(f"Knee of the p99 curve: **{_fmt(knee)} jobs/s** "
                     f"(max distance from chord).")
        lines.append("")
    if p99_ms:
        lines.append(f"p99 vs load: `{sparkline(p99_ms, _SPARK_WIDTH)}`")
        lines.append("")
    return lines


_CONTROLLER_ROWS = (
    ("completed jobs", "completed", _fmt),
    ("rejected arrivals", "rejected", _fmt),
    ("admit ratio", "admit_ratio", _fmt),
    ("deadline misses", "deadline_misses", _fmt),
    ("final per-job ppt", "final_job_ppt", _fmt),
    ("SLO adjustments", "slo_adjustments", _fmt),
    ("SLO violation ticks", "slo_violation_ticks", _fmt),
)


def _controllers_section(metadata: Mapping[str, Any]) -> list[str]:
    controllers = metadata.get("controllers")
    if not controllers:
        return []
    names = sorted(controllers)
    lines = ["## Controller comparison", "",
             "Same workload, same seed; the passes differ only in the "
             "controller stack.", ""]
    rows = []
    for label, key, fmt in _CONTROLLER_ROWS:
        values = [controllers[name].get(key) for name in names]
        if all(value is None for value in values):
            continue
        rows.append([label] + [fmt(value) for value in values])
    for stat_key, stat_label in (
        ("mean_us", "mean sojourn ms"),
        ("p50_us", "p50 sojourn ms"),
        ("p95_us", "p95 sojourn ms"),
        ("p99_us", "p99 sojourn ms"),
        ("p999_us", "p99.9 sojourn ms"),
    ):
        rows.append(
            [stat_label]
            + [
                _fmt_us_as_ms((controllers[name].get("stats") or {}).get(stat_key))
                for name in names
            ]
        )
    lines += _table(["measure"] + names, rows)
    lines.append("")
    fingerprints = {
        name: controllers[name].get("dispatch_fingerprint") for name in names
    }
    if all(fingerprints.values()):
        for name in names:
            lines.append(f"- `{name}` dispatch fingerprint: "
                         f"`{fingerprints[name]}`")
        lines.append("")
    return lines


def _series_section(data: Mapping[str, Any]) -> list[str]:
    series = data.get("series") or {}
    if not series:
        return []
    lines = ["## Series", ""]
    for name in sorted(series):
        entry = series[name]
        values = entry["values"] if isinstance(entry, Mapping) else entry[1]
        if not values:
            continue
        lines.append(
            f"- `{name}` ({len(values)} samples, "
            f"min {_fmt(min(values))}, max {_fmt(max(values))}): "
            f"`{sparkline(values, _SPARK_WIDTH)}`"
        )
    lines.append("")
    return lines


def _notes_section(data: Mapping[str, Any]) -> list[str]:
    notes = data.get("notes") or []
    if not notes:
        return []
    return ["## Notes", ""] + [f"- {note}" for note in notes] + [""]


def _meta_lines(data: Mapping[str, Any]) -> list[str]:
    metadata = data.get("metadata") or {}
    lines = []
    for label, value in (
        ("experiment", data.get("experiment_id")),
        ("schema version", data.get("schema_version")),
        ("repro version", data.get("repro_version")),
        ("engine", metadata.get("engine")),
        ("seed", metadata.get("seed")),
    ):
        if value is not None:
            lines.append(f"- {label}: `{value}`")
    fingerprint = metadata.get("dispatch_fingerprint")
    if fingerprint:
        lines.append(f"- dispatch fingerprint: `{fingerprint}`")
    return lines


def render_result_report(data: Mapping[str, Any]) -> str:
    """Render one experiment result dict (``ExperimentResult.to_dict``)."""
    if "experiment_id" not in data:
        raise ReportError(
            "not an experiment result artifact (no 'experiment_id'); "
            "expected the JSON written by `python -m repro run --json`"
        )
    lines = [f"# {data.get('title') or data['experiment_id']}", ""]
    lines += _meta_lines(data)
    lines.append("")
    lines += _metrics_section(data)
    lines += _sojourn_section(data.get("metadata") or {})
    lines += _response_curve_section(data.get("metadata") or {})
    lines += _controllers_section(data.get("metadata") or {})
    lines += _series_section(data)
    lines += _notes_section(data)
    while lines and lines[-1] == "":
        lines.pop()
    return "\n".join(lines) + "\n"


def render_sweep_report(artifact: Mapping[str, Any]) -> str:
    """Render a merged sweep artifact (``sweep --json``) point by point."""
    points = artifact.get("points") or []
    grid = artifact.get("grid") or {}
    lines = [f"# Sweep: {artifact.get('experiment', '?')}", ""]
    lines.append(f"- points: `{len(points)}`")
    for axis in sorted(grid):
        values = ", ".join(_fmt(v) for v in grid[axis])
        lines.append(f"- axis `{axis}`: {values}")
    lines.append("")
    for point in points:
        params = ", ".join(
            f"{k}={_fmt(v)}" for k, v in sorted(point["params"].items())
        )
        lines.append(f"---")
        lines.append("")
        lines.append(f"## Point: {params}")
        lines.append("")
        body = render_result_report(point["result"])
        # Demote the point report's headings one level under the point.
        for body_line in body.splitlines():
            if body_line.startswith("#"):
                body_line = "#" + body_line
            lines.append(body_line)
        lines.append("")
    while lines and lines[-1] == "":
        lines.pop()
    return "\n".join(lines) + "\n"


def render_report(artifact: Mapping[str, Any]) -> str:
    """Render any supported artifact (single result or sweep)."""
    if not isinstance(artifact, Mapping):
        raise ReportError(
            f"artifact must be a JSON object, got {type(artifact).__name__}"
        )
    if artifact.get("kind") == "sweep" or "points" in artifact:
        return render_sweep_report(artifact)
    return render_result_report(artifact)


def load_report_artifact(path: str) -> dict[str, Any]:
    """Read an artifact file (``'-'`` reads stdin) with clear errors."""
    import sys

    try:
        if path == "-":
            text = sys.stdin.read()
        else:
            with open(path) as handle:
                text = handle.read()
    except OSError as error:
        raise ReportError(f"cannot read artifact {path!r}: {error}") from error
    try:
        artifact = json.loads(text)
    except json.JSONDecodeError as error:
        raise ReportError(
            f"artifact {path!r} is not valid JSON: {error}"
        ) from error
    if not isinstance(artifact, dict):
        raise ReportError(
            f"artifact {path!r} must contain a JSON object, "
            f"got {type(artifact).__name__}"
        )
    return artifact


__all__ = [
    "ReportError",
    "load_report_artifact",
    "render_report",
    "render_result_report",
    "render_sweep_report",
]
