"""Time-series helpers.

Small, dependency-free utilities shared by the experiment drivers:
converting cumulative byte counters into rates, locating the knee of an
overhead curve, resampling onto a regular grid, and rendering a series
as a unicode sparkline for terminal output.
"""

from __future__ import annotations

from typing import Optional, Sequence

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def rate_from_cumulative(
    times_s: Sequence[float], cumulative: Sequence[float]
) -> tuple[list[float], list[float]]:
    """Convert a cumulative counter into a rate series.

    Returns ``(midpoint_times, rates)`` where each rate is the increase
    between consecutive samples divided by the elapsed time.  Intervals
    with zero elapsed time are skipped.
    """
    if len(times_s) != len(cumulative):
        raise ValueError(
            f"times and values must have the same length, got "
            f"{len(times_s)} and {len(cumulative)}"
        )
    mid_times: list[float] = []
    rates: list[float] = []
    for i in range(1, len(times_s)):
        dt = times_s[i] - times_s[i - 1]
        if dt <= 0:
            continue
        mid_times.append((times_s[i] + times_s[i - 1]) / 2)
        rates.append((cumulative[i] - cumulative[i - 1]) / dt)
    return mid_times, rates


def differentiate_series(
    times_s: Sequence[float], values: Sequence[float]
) -> tuple[list[float], list[float]]:
    """First derivative of a sampled series (same convention as above)."""
    return rate_from_cumulative(times_s, values)


def resample(
    times_s: Sequence[float],
    values: Sequence[float],
    step_s: float,
    start_s: Optional[float] = None,
    end_s: Optional[float] = None,
) -> tuple[list[float], list[float]]:
    """Zero-order-hold resampling onto a regular grid.

    Each output sample takes the most recent input value at or before
    the grid point (samples before the first input take the first
    value).
    """
    if step_s <= 0:
        raise ValueError(f"step must be positive, got {step_s}")
    if len(times_s) != len(values):
        raise ValueError("times and values must have the same length")
    if not times_s:
        return [], []
    start = start_s if start_s is not None else times_s[0]
    end = end_s if end_s is not None else times_s[-1]
    grid: list[float] = []
    out: list[float] = []
    t = start
    index = 0
    current = values[0]
    while t <= end + 1e-12:
        while index < len(times_s) and times_s[index] <= t:
            current = values[index]
            index += 1
        grid.append(t)
        out.append(current)
        t += step_s
    return grid, out


def mean_absolute_deviation(values: Sequence[float], target: float) -> float:
    """Mean |value - target| (0.0 for an empty sequence)."""
    if not values:
        return 0.0
    return sum(abs(v - target) for v in values) / len(values)


def find_knee(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Locate the knee of a monotonically degrading curve.

    Uses the "kneedle"-style maximum-distance-from-chord heuristic: the
    knee is the x whose point lies farthest from the straight line
    joining the first and last points.  Works on the log-x axis used by
    Figure 8 if the caller passes log-scaled xs.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    if len(xs) < 3:
        raise ValueError(f"need at least three points to find a knee, got {len(xs)}")
    x0, y0 = xs[0], ys[0]
    x1, y1 = xs[-1], ys[-1]
    dx, dy = x1 - x0, y1 - y0
    norm = (dx * dx + dy * dy) ** 0.5
    if norm == 0:
        raise ValueError("first and last points coincide; knee is undefined")
    best_x = xs[0]
    best_distance = -1.0
    for x, y in zip(xs, ys):
        distance = abs(dy * (x - x0) - dx * (y - y0)) / norm
        if distance > best_distance:
            best_distance = distance
            best_x = x
    return best_x


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render ``values`` as a one-line unicode sparkline."""
    if not values:
        return ""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    # Downsample by averaging buckets so long series fit in `width`.
    bucketed: list[float] = []
    n = len(values)
    buckets = min(width, n)
    for b in range(buckets):
        lo = b * n // buckets
        hi = max(lo + 1, (b + 1) * n // buckets)
        chunk = values[lo:hi]
        bucketed.append(sum(chunk) / len(chunk))
    low = min(bucketed)
    high = max(bucketed)
    if high == low:
        return _SPARK_CHARS[0] * len(bucketed)
    chars = []
    for value in bucketed:
        index = int((value - low) / (high - low) * (len(_SPARK_CHARS) - 1))
        chars.append(_SPARK_CHARS[index])
    return "".join(chars)


__all__ = [
    "differentiate_series",
    "find_knee",
    "mean_absolute_deviation",
    "rate_from_cumulative",
    "resample",
    "sparkline",
]
