"""Ordinary least-squares linear regression.

Figure 5's caption reports its overhead measurements as a fitted line
("y = .00066x + .00057, with a coefficient of determination of .999"),
so the reproduction needs slope, intercept and R².  Implemented
directly (no numpy dependency in the core library) since the inputs are
tiny.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class LinearFit:
    """Result of a least-squares line fit."""

    slope: float
    intercept: float
    r_squared: float
    n: int

    def predict(self, x: float) -> float:
        """Evaluate the fitted line at ``x``."""
        return self.slope * x + self.intercept


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Fit ``y = slope * x + intercept`` by ordinary least squares.

    Raises ``ValueError`` for fewer than two points or when all x
    values are identical (the slope would be undefined).
    """
    if len(xs) != len(ys):
        raise ValueError(
            f"x and y must have the same length, got {len(xs)} and {len(ys)}"
        )
    n = len(xs)
    if n < 2:
        raise ValueError(f"need at least two points to fit a line, got {n}")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("all x values are identical; slope is undefined")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x

    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    ss_res = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys))
    if ss_tot == 0:
        # A perfectly flat dependent variable is perfectly explained by
        # the (flat) fitted line.
        r_squared = 1.0
    else:
        r_squared = 1.0 - ss_res / ss_tot
    return LinearFit(slope=slope, intercept=intercept, r_squared=r_squared, n=n)


__all__ = ["LinearFit", "linear_fit"]
