"""Step-response metrics.

Figure 6's headline number is "it takes the controller roughly 1/3 of a
second to respond to the doubling in production rate".  Given a series
of (time, value) samples and the time of a step in the demand,
:func:`step_response` extracts the rise time (time to cross a fraction
of the step), the settling time and the overshoot, using standard
control-engineering definitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass(frozen=True)
class StepResponse:
    """Metrics of one step response."""

    step_time_s: float
    initial_value: float
    final_value: float
    rise_time_s: Optional[float]
    settling_time_s: Optional[float]
    overshoot_fraction: float

    @property
    def responded(self) -> bool:
        """Whether the output ever crossed the rise threshold."""
        return self.rise_time_s is not None


def step_response(
    times_s: Sequence[float],
    values: Sequence[float],
    step_time_s: float,
    *,
    target_value: Optional[float] = None,
    rise_fraction: float = 0.9,
    settle_fraction: float = 0.1,
    baseline_window_s: float = 0.5,
    measure_window_s: Optional[float] = None,
) -> StepResponse:
    """Measure the response of a sampled signal to a step at ``step_time_s``.

    Parameters
    ----------
    target_value:
        The value the signal should settle at.  Defaults to the mean of
        the samples in the last quarter of the measurement window.
    rise_fraction:
        Fraction of the step that must be crossed to count as "risen".
    settle_fraction:
        Band (as a fraction of the step size) within which the signal
        must remain to count as settled.
    baseline_window_s:
        How far before the step to average for the initial value.
    measure_window_s:
        How far after the step to look; defaults to the end of the data.
    """
    if len(times_s) != len(values):
        raise ValueError("times and values must have the same length")
    if not times_s:
        raise ValueError("cannot measure a step response on an empty series")
    if not 0 < rise_fraction <= 1:
        raise ValueError(f"rise_fraction must be in (0, 1], got {rise_fraction}")

    end_s = times_s[-1] if measure_window_s is None else step_time_s + measure_window_s
    before = [
        v
        for t, v in zip(times_s, values)
        if step_time_s - baseline_window_s <= t < step_time_s
    ]
    after = [(t, v) for t, v in zip(times_s, values) if step_time_s <= t <= end_s]
    if not before or not after:
        raise ValueError(
            "series does not bracket the step time; cannot measure response"
        )
    initial = sum(before) / len(before)

    if target_value is None:
        tail_start = step_time_s + 0.75 * (end_s - step_time_s)
        tail = [v for t, v in after if t >= tail_start]
        target_value = sum(tail) / len(tail) if tail else after[-1][1]

    step_size = target_value - initial
    if step_size == 0:
        return StepResponse(
            step_time_s=step_time_s,
            initial_value=initial,
            final_value=target_value,
            rise_time_s=0.0,
            settling_time_s=0.0,
            overshoot_fraction=0.0,
        )

    rise_threshold = initial + rise_fraction * step_size
    rise_time: Optional[float] = None
    for t, v in after:
        crossed = v >= rise_threshold if step_size > 0 else v <= rise_threshold
        if crossed:
            rise_time = t - step_time_s
            break

    settle_band = abs(step_size) * settle_fraction
    settling_time: Optional[float] = None
    for i, (t, v) in enumerate(after):
        if all(abs(v2 - target_value) <= settle_band for _, v2 in after[i:]):
            settling_time = t - step_time_s
            break

    if step_size > 0:
        peak = max(v for _, v in after)
        overshoot = max(0.0, (peak - target_value) / abs(step_size))
    else:
        trough = min(v for _, v in after)
        overshoot = max(0.0, (target_value - trough) / abs(step_size))

    return StepResponse(
        step_time_s=step_time_s,
        initial_value=initial,
        final_value=target_value,
        rise_time_s=rise_time,
        settling_time_s=settling_time,
        overshoot_fraction=overshoot,
    )


__all__ = ["StepResponse", "step_response"]
