"""Tail-latency analysis of job-completion records.

The paper's feedback controller targets proportion error; production
systems are judged on *tail latency* — p99 sojourn under offered load.
The workload engine records one :class:`~repro.workloads.engine.JobRecord`
per job that leaves the system; this module turns those records into
the SLO quantities: **exact-rank** p50/p95/p99/p99.9 sojourn
percentiles per tag, and latency-vs-offered-load response-curve points
(sweep the arrival rate until the knee).

Exact rank, not interpolation: with ``n`` sorted samples the ``p``-th
percentile is the ``ceil(p/100 * n)``-th order statistic — an actual
observed latency, never a value between two samples.  Interpolated
percentiles understate the tail exactly where SLOs look, and exact
rank keeps every figure bit-reproducible across platforms (no float
blending of integer microsecond samples).

Everything here consumes the *wire form* of a record (the dict written
by ``JobRecord.to_dict``), so the same functions serve live
``WorkloadEngine`` objects and result-JSON artifacts read back by
``python -m repro report``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

#: Wire-format version of :meth:`SojournStats.to_dict` and
#: :meth:`ResponseCurvePoint.to_dict`; bump when their field sets
#: change (enforced by the wire-format lint check).
SOJOURN_SCHEMA_VERSION = 1

#: The percentiles every SLO table reports, in order.
SLO_PERCENTILES = (50.0, 95.0, 99.0, 99.9)

#: Keys used for the percentile fields of :meth:`SojournStats.to_dict`.
_PERCENTILE_KEYS = ("p50_us", "p95_us", "p99_us", "p999_us")


def exact_rank_percentile(sorted_values: Sequence[float], percent: float) -> float:
    """The exact-rank (nearest-rank) ``percent``-th percentile.

    ``sorted_values`` must be sorted ascending and non-empty.  The
    result is always one of the input samples: the
    ``ceil(percent/100 * n)``-th smallest (the standard nearest-rank
    definition, so p100 is the maximum and p0 clamps to the minimum).
    """
    if not sorted_values:
        raise ValueError("cannot take a percentile of an empty sample set")
    if not 0 <= percent <= 100:
        raise ValueError(f"percent must be in [0, 100], got {percent}")
    rank = math.ceil(percent / 100.0 * len(sorted_values))
    return sorted_values[max(rank, 1) - 1]


@dataclass(frozen=True)
class SojournStats:
    """Exact-rank sojourn summary of one tag's completed jobs.

    Counts cover every outcome seen for the tag; the latency fields
    summarize only the ``completed`` records (killed jobs never
    finished, rejected arrivals never ran).  When ``completed == 0``
    the latency fields are ``None`` — deliberately distinguishable
    from a true zero-latency tag.
    """

    tag: str
    completed: int
    killed: int
    rejected: int
    mean_us: Optional[float]
    min_us: Optional[int]
    max_us: Optional[int]
    p50_us: Optional[int]
    p95_us: Optional[int]
    p99_us: Optional[int]
    p999_us: Optional[int]

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form (stored in result metadata, read by reports)."""
        return {
            "tag": self.tag,
            "completed": self.completed,
            "killed": self.killed,
            "rejected": self.rejected,
            "mean_us": self.mean_us,
            "min_us": self.min_us,
            "max_us": self.max_us,
            "p50_us": self.p50_us,
            "p95_us": self.p95_us,
            "p99_us": self.p99_us,
            "p999_us": self.p999_us,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SojournStats":
        """Rebuild from the :meth:`to_dict` form (artifact round-trip)."""
        return cls(
            tag=str(payload["tag"]),
            completed=int(payload["completed"]),
            killed=int(payload["killed"]),
            rejected=int(payload["rejected"]),
            mean_us=payload.get("mean_us"),
            min_us=payload.get("min_us"),
            max_us=payload.get("max_us"),
            p50_us=payload.get("p50_us"),
            p95_us=payload.get("p95_us"),
            p99_us=payload.get("p99_us"),
            p999_us=payload.get("p999_us"),
        )


def sojourn_stats(
    records: Sequence[Mapping[str, Any]], tag: str = "all"
) -> SojournStats:
    """Summarize record dicts (``JobRecord.to_dict`` form) as one tag."""
    completed = [r for r in records if r["outcome"] == "completed"]
    killed = sum(1 for r in records if r["outcome"] == "killed")
    rejected = sum(1 for r in records if r["outcome"] == "rejected")
    if not completed:
        return SojournStats(
            tag=tag, completed=0, killed=killed, rejected=rejected,
            mean_us=None, min_us=None, max_us=None,
            p50_us=None, p95_us=None, p99_us=None, p999_us=None,
        )
    sojourns = sorted(int(r["sojourn_us"]) for r in completed)
    percentiles = {
        key: exact_rank_percentile(sojourns, percent)
        for key, percent in zip(_PERCENTILE_KEYS, SLO_PERCENTILES)
    }
    return SojournStats(
        tag=tag,
        completed=len(sojourns),
        killed=killed,
        rejected=rejected,
        mean_us=sum(sojourns) / len(sojourns),
        min_us=sojourns[0],
        max_us=sojourns[-1],
        **percentiles,
    )


def sojourn_stats_by_tag(
    records: Sequence[Mapping[str, Any]],
) -> dict[str, SojournStats]:
    """Per-tag exact-rank summaries, plus an ``"all"`` aggregate.

    Tags are emitted in sorted order with the cross-tag aggregate
    first, so tables render deterministically.
    """
    by_tag: dict[str, list[Mapping[str, Any]]] = {}
    for record in records:
        by_tag.setdefault(str(record["tag"]), []).append(record)
    out: dict[str, SojournStats] = {}
    if records:
        out["all"] = sojourn_stats(records, tag="all")
    for tag in sorted(by_tag):
        out[tag] = sojourn_stats(by_tag[tag], tag=tag)
    return out


@dataclass(frozen=True)
class ResponseCurvePoint:
    """One offered-load level of a latency-response sweep."""

    offered_per_s: float
    stats: SojournStats

    def to_dict(self) -> dict[str, Any]:
        return {"offered_per_s": self.offered_per_s, **self.stats.to_dict()}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ResponseCurvePoint":
        """Rebuild from the flattened :meth:`to_dict` form."""
        return cls(
            offered_per_s=float(payload["offered_per_s"]),
            stats=SojournStats.from_dict(payload),
        )


def response_curve_series(
    points: Sequence[Mapping[str, Any]], field: str = "p99_us"
) -> tuple[list[float], list[float]]:
    """``(offered rates, latency ms)`` from response-curve point dicts.

    Points whose ``field`` is ``None`` (no completions at that load —
    the far side of saturation) are skipped, so the series stays
    plottable and knee-findable.
    """
    rates: list[float] = []
    values: list[float] = []
    for point in points:
        value = point.get(field)
        if value is None:
            continue
        rates.append(float(point["offered_per_s"]))
        values.append(float(value) / 1_000.0)
    return rates, values


__all__ = [
    "ResponseCurvePoint",
    "SLO_PERCENTILES",
    "SojournStats",
    "exact_rank_percentile",
    "response_curve_series",
    "sojourn_stats",
    "sojourn_stats_by_tag",
]
