"""Analysis utilities.

Turn the tracer's raw ``(time, value)`` series into the quantities the
paper reports: linear fits with R² (Figure 5), progress rates from
cumulative byte counters and step-response times (Figure 6), overhead
fractions and knee locations (Figure 8), plus small helpers for
rendering results as text tables and ASCII sparklines so the examples
can show the figures' shapes without a plotting dependency.
"""

from repro.analysis.regression import LinearFit, linear_fit
from repro.analysis.report import (
    ReportError,
    load_report_artifact,
    render_report,
)
from repro.analysis.response import StepResponse, step_response
from repro.analysis.results import ExperimentResult, format_table
from repro.analysis.series import (
    differentiate_series,
    find_knee,
    mean_absolute_deviation,
    rate_from_cumulative,
    resample,
    sparkline,
)
from repro.analysis.sojourn import (
    SLO_PERCENTILES,
    ResponseCurvePoint,
    SojournStats,
    exact_rank_percentile,
    response_curve_series,
    sojourn_stats,
    sojourn_stats_by_tag,
)

__all__ = [
    "ExperimentResult",
    "LinearFit",
    "ReportError",
    "ResponseCurvePoint",
    "SLO_PERCENTILES",
    "SojournStats",
    "StepResponse",
    "differentiate_series",
    "exact_rank_percentile",
    "find_knee",
    "format_table",
    "linear_fit",
    "load_report_artifact",
    "mean_absolute_deviation",
    "rate_from_cumulative",
    "render_report",
    "resample",
    "response_curve_series",
    "sojourn_stats",
    "sojourn_stats_by_tag",
    "sparkline",
    "step_response",
]
