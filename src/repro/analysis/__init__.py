"""Analysis utilities.

Turn the tracer's raw ``(time, value)`` series into the quantities the
paper reports: linear fits with R² (Figure 5), progress rates from
cumulative byte counters and step-response times (Figure 6), overhead
fractions and knee locations (Figure 8), plus small helpers for
rendering results as text tables and ASCII sparklines so the examples
can show the figures' shapes without a plotting dependency.
"""

from repro.analysis.regression import LinearFit, linear_fit
from repro.analysis.response import StepResponse, step_response
from repro.analysis.results import ExperimentResult, format_table
from repro.analysis.series import (
    differentiate_series,
    find_knee,
    mean_absolute_deviation,
    rate_from_cumulative,
    resample,
    sparkline,
)

__all__ = [
    "ExperimentResult",
    "LinearFit",
    "StepResponse",
    "differentiate_series",
    "find_knee",
    "format_table",
    "linear_fit",
    "mean_absolute_deviation",
    "rate_from_cumulative",
    "resample",
    "sparkline",
    "step_response",
]
