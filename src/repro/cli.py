"""The ``python -m repro`` command line.

One surface over every registered experiment::

    python -m repro list                 # enumerate experiments
    python -m repro describe smp_scaling # schema: params, bounds, quick
    python -m repro run figure6 --quick --json figure6.json
    python -m repro run smp_scaling --cpus 4 --seed 7 --param duration_s=1.5
    python -m repro sweep smp_scaling --param n_cpus=1,2,4 --jobs 3 \
        --json sweep.json

``run`` executes one experiment (``--param k=v`` overrides one
parameter; ``--cpus`` / ``--seed`` are shorthands for the ``n_cpus`` /
``seed`` parameters; ``--quick`` applies the experiment's quick-mode
overrides) and prints the paper-vs-measured summary.  ``sweep``
expands cartesian parameter grids (values comma-separated, ``":"``
separating elements of a list-valued point), fans the points out over
``--jobs`` worker processes and merges everything into a single
schema-versioned JSON artifact.  ``--json -`` writes any artifact to
stdout.

Sweeps are **crash-safe** (see :mod:`repro.orchestration`): every
settled point is journaled to an append-only ``*.partial.jsonl``, so
an interrupted run (Ctrl-C, killed worker, OOM) resumes from where it
stopped and produces an artifact byte-identical to an uninterrupted
one::

    python -m repro sweep figure8 --quick --param seed=0,1,2,3 \
        --jobs 4 --timeout 120 --json f8.json
    # ^C ... then later:
    python -m repro sweep --resume f8.partial.jsonl --json f8.json

Failing points are retried with capped, deterministically jittered
exponential backoff (``--max-retries``, ``--backoff``,
``--backoff-cap``); points that keep failing become explicit FAILED
rows in the artifact and the command exits non-zero.  Interrupted
runs exit 130 and print the resume command.

``report`` renders a result or sweep JSON artifact as a markdown
report — metrics, per-tag exact-rank sojourn percentiles, the
latency-vs-load response curve with its knee, the SLO-vs-PID
controller comparison and sparkline "plots" of every series::

    python -m repro run flash_crowd_rt --quick --json flash.json
    python -m repro report flash.json --out flash.md

``bench`` times the registered macro scenarios (see
:mod:`repro.bench`) with min-of-K repeats and reports simulated
microseconds per wall-clock second; ``--json`` (optionally with a
path; default ``BENCH_kernel.json``, or ``BENCH_kernel.quick.json``
under ``--quick`` so smoke runs never clobber the tracked baseline)
writes the schema-versioned perf artifact::

    python -m repro bench --quick --json
    python -m repro bench overload64 --repeats 5 --json -
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

import repro.experiments  # noqa: F401 — importing populates the registry
from repro._version import __version__
from repro.analysis.report import (
    ReportError,
    load_report_artifact,
    render_report,
)
from repro.bench import (
    BENCH_REGISTRY,
    DEFAULT_ARTIFACT,
    DEFAULT_REGRESSION_THRESHOLD,
    HISTORY_FILE,
    QUICK_ARTIFACT,
    BenchError,
    append_history,
    bench_to_json,
    compare_to_baseline,
    format_bench_table,
    format_compare_table,
    load_bench_artifact,
    run_bench,
    run_bench_journaled,
)
from repro.core.artifacts import write_atomic
from repro.experiments.registry import (
    REGISTRY,
    ExperimentSpec,
    ParameterError,
    UnknownExperimentError,
)
from repro.experiments.sweep import sweep_to_json
from repro.orchestration import (
    ChaosError,
    ChaosPlan,
    JournalError,
    OrchestrationError,
    OrchestrationInterrupted,
    RetryPolicy,
    orchestrate_sweep,
)

#: Exit status for an interrupted (but resumable) run: 128 + SIGINT,
#: the conventional shell encoding, and distinct from 1 (findings /
#: failed points) and 2 (usage error).
EXIT_INTERRUPTED = 130


def _parse_param_flags(flags: Sequence[str]) -> dict[str, str]:
    """``["a=1", "b=2,3"]`` → ``{"a": "1", "b": "2,3"}`` (order kept)."""
    overrides: dict[str, str] = {}
    for flag in flags:
        name, sep, value = flag.partition("=")
        if not sep or not name:
            raise ParameterError(
                f"--param expects name=value, got {flag!r}"
            )
        overrides[name] = value
    return overrides


def _apply_shorthands(
    spec: ExperimentSpec,
    overrides: dict[str, str],
    cpus: Optional[int],
    seed: Optional[int],
) -> dict[str, str]:
    """Fold ``--cpus`` / ``--seed`` into the override map."""
    if cpus is not None:
        if "n_cpus" not in {p.name for p in spec.params}:
            raise ParameterError(
                f"experiment {spec.name!r} has no n_cpus parameter; "
                f"--cpus does not apply"
            )
        overrides.setdefault("n_cpus", str(cpus))
    if seed is not None:
        if "seed" not in {p.name for p in spec.params}:
            raise ParameterError(
                f"experiment {spec.name!r} has no seed parameter; "
                f"--seed does not apply"
            )
        overrides.setdefault("seed", str(seed))
    return overrides


def _write_artifact(text: str, path: str) -> None:
    if path == "-":
        sys.stdout.write(text + "\n")
    else:
        write_atomic(path, text + "\n")
        print(f"wrote {path}")


def _default_journal_path(json_path: Optional[str], experiment: str) -> str:
    """Where the sweep journal lives when --journal is not given.

    Sits next to the artifact it is building (``f8.json`` →
    ``f8.partial.jsonl``); falls back to the experiment name when the
    artifact goes to stdout or nowhere.
    """
    if json_path is not None and json_path != "-":
        stem, ext = os.path.splitext(json_path)
        return (stem if ext else json_path) + ".partial.jsonl"
    return f"{experiment}.partial.jsonl"


# ----------------------------------------------------------------------
# subcommand handlers
# ----------------------------------------------------------------------
def _cmd_list(args: argparse.Namespace) -> int:
    specs = REGISTRY.specs()
    if args.tag:
        specs = [s for s in specs if args.tag in s.tags]
    if not specs:
        print("no experiments registered" + (f" with tag {args.tag!r}" if args.tag else ""))
        return 1
    width = max(len(s.name) for s in specs)
    for spec in specs:
        tags = f" [{', '.join(spec.tags)}]" if spec.tags else ""
        print(f"{spec.name.ljust(width)}  {spec.description}{tags}")
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    spec = REGISTRY.get(args.experiment)
    print(f"{spec.name} — {spec.description}")
    if spec.tags:
        print(f"tags: {', '.join(spec.tags)}")
    doc = (spec.func.__doc__ or "").strip()
    if doc:
        print(f"\n{doc}")
    print("\nparameters:")
    for param in spec.params:
        quick = (
            f"  [quick: {spec.quick[param.name]!r}]"
            if param.name in spec.quick
            else ""
        )
        print(f"  {param.describe()}{quick}")
    if not spec.params:
        print("  (none)")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    spec = REGISTRY.get(args.experiment)
    overrides = _apply_shorthands(
        spec, _parse_param_flags(args.param), args.cpus, args.seed
    )
    result = spec.run(overrides, quick=args.quick)
    if args.json != "-":
        print(result.summary())
    if args.json is not None:
        _write_artifact(result.to_json(), args.json)
    return 0


def _print_resume_hint(
    interrupt: OrchestrationInterrupted, command: str, json_flag: Optional[str]
) -> None:
    print(f"interrupted: {interrupt}", file=sys.stderr)
    suffix = f" --json {json_flag}" if json_flag is not None else ""
    print(
        f"resume with: python -m repro {command} --resume "
        f"{interrupt.journal_path}{suffix}",
        file=sys.stderr,
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    policy = RetryPolicy(
        max_retries=args.max_retries,
        backoff_base_s=args.backoff,
        backoff_cap_s=args.backoff_cap,
        seed=args.retry_seed,
        timeout_s=args.timeout,
    )
    chaos = None
    if args.chaos is not None:
        chaos = ChaosPlan.parse(
            args.chaos, seed=args.chaos_seed, hang_s=args.chaos_hang
        )

    verbose = args.json != "-"

    def notify(message: str) -> None:
        if verbose:
            print(message, file=sys.stderr)

    if args.resume is not None:
        if args.experiment is not None or args.param:
            raise ParameterError(
                "--resume takes the experiment and grid from the journal "
                "header; drop the positional experiment and --param flags"
            )
        journal_path = args.resume
        name = None
        grid: Optional[dict[str, str]] = None
    else:
        if args.experiment is None:
            raise ParameterError(
                "sweep needs an experiment (or --resume JOURNAL)"
            )
        spec = REGISTRY.get(args.experiment)
        grid = _apply_shorthands(
            spec, _parse_param_flags(args.param), None, args.seed
        )
        if not grid:
            raise ParameterError(
                "sweep needs at least one --param name=v1,v2,... axis"
            )
        name = spec.name
        journal_path = args.journal or _default_journal_path(
            args.json, spec.name
        )

    try:
        report = orchestrate_sweep(
            name,
            grid,
            journal_path=journal_path,
            jobs=args.jobs,
            quick=args.quick,
            resume=args.resume is not None,
            retry_failed=args.retry_failed,
            policy=policy,
            chaos=chaos,
            on_event=notify,
        )
    except OrchestrationInterrupted as interrupt:
        _print_resume_hint(interrupt, "sweep", args.json)
        return EXIT_INTERRUPTED

    artifact = report.artifact
    if verbose:
        points = artifact["points"]
        print(
            f"swept {report.experiment}: {len(points)} point(s) over "
            f"{', '.join(artifact['grid'])} with {args.jobs} job(s)"
            + (f" ({report.resumed} resumed from journal)" if report.resumed
               else "")
        )
        for point in points:
            params = ", ".join(f"{k}={v}" for k, v in point["params"].items())
            if point["result"] is None:
                error = point.get("error") or {}
                print(
                    f"  {params}: FAILED "
                    f"({error.get('kind', '?')}: {error.get('detail', '?')})"
                )
            else:
                n_metrics = len(point["result"]["metrics"])
                print(f"  {params}: {n_metrics} metrics")
    if args.json is not None:
        _write_artifact(sweep_to_json(artifact), args.json)
    if report.failed:
        print(
            f"{len(report.failed)} point(s) FAILED; journal kept at "
            f"{report.journal_path} — retry them with: python -m repro sweep "
            f"--resume {report.journal_path} --retry-failed"
            + (f" --json {args.json}" if args.json is not None else ""),
            file=sys.stderr,
        )
        return 1
    if not args.keep_journal:
        try:
            os.unlink(report.journal_path)
        except OSError:
            pass
    return 0


def _cmd_golden(args: argparse.Namespace) -> int:
    from repro import golden

    if args.scenario is not None:
        try:
            scenarios = [golden.scenario_spec(args.scenario)]
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    else:
        if args.path is not None:
            print(
                "error: --path needs --scenario (each scenario has its own "
                "corpus file)",
                file=sys.stderr,
            )
            return 2
        scenarios = list(golden.GOLDEN_SCENARIOS.values())
    failures = 0
    for spec in scenarios:
        path = args.path if args.path is not None else spec.corpus_path
        if args.regen:
            try:
                corpus = golden.write_corpus(path, spec.name)
            except OSError as error:
                print(
                    f"error: cannot write corpus {path!r}: {error} "
                    f"(run from the repository root, or pass --path)",
                    file=sys.stderr,
                )
                return 2
            print(
                f"regenerated {path}: {len(corpus['entries'])} entries "
                f"({len(golden.GOLDEN_SCHEDULERS)} schedulers x "
                f"{len(golden.GOLDEN_ENGINES)} engines x "
                f"{len(golden.GOLDEN_CPU_COUNTS)} CPU counts)"
            )
            continue
        try:
            corpus = golden.load_corpus(path)
        except (OSError, ValueError, json.JSONDecodeError) as error:
            print(f"error: cannot load corpus {path!r}: {error}",
                  file=sys.stderr)
            return 2
        mismatches = golden.verify_corpus(corpus)
        if mismatches:
            failures += len(mismatches)
            for message in mismatches:
                print(f"golden mismatch: {message}", file=sys.stderr)
            print(
                f"{len(mismatches)} golden-trace mismatch(es) vs {path}; "
                f"if the behaviour change is intentional, refresh with "
                f"`python -m repro golden --regen`",
                file=sys.stderr,
            )
        else:
            print(
                f"golden corpus ok: {len(corpus['entries'])} entries conform "
                f"({path})"
            )
    return 1 if failures else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.staticcheck.cli import run_lint

    return run_lint(args)


def _cmd_report(args: argparse.Namespace) -> int:
    artifact = load_report_artifact(args.artifact)
    markdown = render_report(artifact)
    if args.out == "-":
        sys.stdout.write(markdown)
    else:
        write_atomic(args.out, markdown)
        print(f"wrote {args.out}")
    return 0


def _warn_if_scenario_like(flag: str, value: Optional[str]) -> None:
    """Warn when a --json/--compare value looks like a typo'd scenario.

    ``bench overlaod64 --json`` (note the typo) parses the misspelled
    name as ``--json``'s output path and would happily benchmark *all*
    scenarios, then clobber a file named after the typo.  Exact matches
    are already hard errors; near-misses get a stderr warning so the
    user can interrupt.
    """
    if value is None or value == "-" or value in BENCH_REGISTRY:
        return
    import difflib
    import os

    stem = os.path.basename(value)
    stem = stem[: -len(".json")] if stem.endswith(".json") else stem
    close = difflib.get_close_matches(stem, BENCH_REGISTRY, n=1, cutoff=0.75)
    if close:
        print(
            f"warning: {flag} value {value!r} looks like scenario "
            f"{close[0]!r}; it is being used as a file path "
            f"(use {flag}=PATH to silence this)",
            file=sys.stderr,
        )


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.list:
        width = max(len(name) for name in BENCH_REGISTRY)
        for scenario in BENCH_REGISTRY.values():
            print(f"{scenario.name.ljust(width)}  {scenario.description}")
        return 0
    if args.json in BENCH_REGISTRY:
        # ``bench --json overload64`` parses the scenario name as the
        # output path (--json takes an optional value); catch the
        # footgun instead of silently benchmarking everything.
        raise BenchError(
            f"--json consumed the scenario name {args.json!r} as its output "
            f"path; put scenario names before --json, or use "
            f"--json=PATH"
        )
    if args.compare in BENCH_REGISTRY:
        # Same footgun for ``bench --compare overload64``.
        raise BenchError(
            f"--compare consumed the scenario name {args.compare!r} as its "
            f"baseline path; put scenario names before --compare, or use "
            f"--compare=PATH"
        )
    _warn_if_scenario_like("--json", args.json)
    _warn_if_scenario_like("--compare", args.compare)
    json_path = args.json
    if args.quick and json_path == DEFAULT_ARTIFACT:
        # ``--quick --json`` (bare, or naming the default path — argparse
        # cannot tell the two apart): quick numbers must not overwrite
        # the tracked full-run baseline, so redirect and say so.
        json_path = QUICK_ARTIFACT
        print(
            f"--quick: writing {QUICK_ARTIFACT} "
            f"(tracked {DEFAULT_ARTIFACT} left untouched)"
        )
    baseline = None
    if args.compare is not None:
        # Load before the (slow) run so a bad path fails fast.
        baseline = load_bench_artifact(args.compare)
    try:
        if args.journal is not None or args.resume is not None:
            journal_path = args.resume or args.journal
            results, resumed = run_bench_journaled(
                args.scenario or None,
                quick=args.quick,
                repeats=args.repeats,
                journal_path=journal_path,
                resume=args.resume is not None,
                on_event=lambda message: print(message, file=sys.stderr),
            )
            try:
                os.unlink(journal_path)
            except OSError:
                pass
        else:
            results = run_bench(
                args.scenario or None, quick=args.quick, repeats=args.repeats
            )
    except OrchestrationInterrupted as interrupt:
        print(f"interrupted: {interrupt}", file=sys.stderr)
        print(
            f"resume with the same bench command plus "
            f"--resume {interrupt.journal_path}",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    if json_path != "-":
        print(format_bench_table(results))
    if json_path is not None:
        _write_artifact(
            bench_to_json(results, quick=args.quick, repeats=args.repeats),
            json_path,
        )
    if not args.quick and not args.no_history:
        record = append_history(
            results, args.history, quick=args.quick, repeats=args.repeats
        )
        if json_path != "-":
            print(f"appended run {record['git_sha']} to {args.history}")
    if baseline is not None:
        # When the user named scenarios, only those are expected to be
        # present; a bare ``--compare`` claims full-suite coverage, so
        # any baseline scenario the run failed to produce is a MISSING
        # failure rather than a silent pass.
        comparisons = compare_to_baseline(
            results,
            baseline,
            threshold=args.threshold,
            expected=args.scenario or None,
        )
        print(format_compare_table(comparisons))
        failed = False
        regressed = [c.name for c in comparisons if c.regressed]
        if regressed:
            print(
                f"perf regression (> {args.threshold:.0%} throughput drop) "
                f"vs {args.compare}: {', '.join(regressed)}"
            )
            failed = True
        missing = [c.name for c in comparisons if c.missing]
        if missing:
            print(
                f"baseline scenario(s) missing from this run: "
                f"{', '.join(missing)} (present in {args.compare}; "
                f"refresh the baseline if they were removed on purpose)"
            )
            failed = True
        if failed:
            return 1
    return 0


# ----------------------------------------------------------------------
# parser assembly
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the paper-reproduction experiments.",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="enumerate registered experiments")
    p_list.add_argument("--tag", help="only experiments carrying this tag")
    p_list.set_defaults(handler=_cmd_list)

    p_desc = sub.add_parser(
        "describe", help="show an experiment's parameter schema"
    )
    p_desc.add_argument("experiment")
    p_desc.set_defaults(handler=_cmd_describe)

    def add_run_flags(p: argparse.ArgumentParser, *, sweep: bool) -> None:
        if sweep:
            # Optional so ``sweep --resume JOURNAL`` can omit it (the
            # journal header pins the experiment).
            p.add_argument("experiment", nargs="?", default=None)
        else:
            p.add_argument("experiment")
        p.add_argument(
            "--param", action="append", default=[], metavar="NAME=VALUE",
            help=(
                "sweep axis name=v1,v2,... (':' separates elements of a "
                "list-valued point)" if sweep
                else "parameter override name=value"
            ),
        )
        p.add_argument(
            "--seed", type=int, help="shorthand for --param seed=S"
        )
        p.add_argument(
            "--quick", action="store_true",
            help="apply the experiment's quick-mode parameter overrides",
        )
        p.add_argument(
            "--json", metavar="PATH",
            help="write the JSON artifact to PATH ('-' for stdout)",
        )

    p_run = sub.add_parser("run", help="run one experiment")
    add_run_flags(p_run, sweep=False)
    p_run.add_argument(
        "--cpus", type=int, help="shorthand for --param n_cpus=N"
    )
    p_run.set_defaults(handler=_cmd_run)

    p_sweep = sub.add_parser(
        "sweep", help="run a cartesian parameter grid, optionally in parallel"
    )
    add_run_flags(p_sweep, sweep=True)
    p_sweep.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default 1)",
    )
    p_sweep.add_argument(
        "--journal", metavar="PATH",
        help=(
            "crash-safety journal path (default: the --json path with a "
            ".partial.jsonl suffix, else EXPERIMENT.partial.jsonl)"
        ),
    )
    p_sweep.add_argument(
        "--resume", metavar="JOURNAL",
        help=(
            "resume an interrupted sweep from its journal; the experiment, "
            "grid and --quick come from the journal header"
        ),
    )
    p_sweep.add_argument(
        "--retry-failed", action="store_true",
        help="with --resume, re-run points the journal recorded as FAILED",
    )
    p_sweep.add_argument(
        "--timeout", type=float, metavar="SECONDS",
        help="per-point wall-clock timeout; the worker is killed and the "
        "point retried (default: no timeout)",
    )
    p_sweep.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="retries per failing point before it becomes a FAILED row "
        "(default 2)",
    )
    p_sweep.add_argument(
        "--backoff", type=float, default=0.1, metavar="SECONDS",
        help="base retry backoff; doubles per failure (default 0.1)",
    )
    p_sweep.add_argument(
        "--backoff-cap", type=float, default=5.0, metavar="SECONDS",
        help="backoff ceiling (default 5.0)",
    )
    p_sweep.add_argument(
        "--retry-seed", type=int, default=0, metavar="S",
        help="seed for the deterministic backoff jitter (default 0)",
    )
    p_sweep.add_argument(
        "--keep-journal", action="store_true",
        help="keep the journal after a fully successful sweep "
        "(default: delete it; it is always kept on failure/interrupt)",
    )
    p_sweep.add_argument(
        "--chaos", metavar="SPEC",
        help=(
            "inject seeded faults for testing: comma-separated mode=index "
            "terms, ':' separating indices — e.g. 'kill=1:3,hang=5,abort=4' "
            "(modes: kill, hang, raise, corrupt, nondet, abort)"
        ),
    )
    p_sweep.add_argument(
        "--chaos-seed", type=int, default=0, metavar="S",
        help="seed for chaos payload perturbation (default 0)",
    )
    p_sweep.add_argument(
        "--chaos-hang", type=float, default=30.0, metavar="SECONDS",
        help="how long the 'hang' chaos mode stalls a worker (default 30)",
    )
    p_sweep.set_defaults(handler=_cmd_sweep)

    p_golden = sub.add_parser(
        "golden",
        help="verify (or --regen) the golden-trace conformance corpora",
    )
    p_golden.add_argument(
        "--regen", action="store_true",
        help="re-run the matrix and rewrite the corpus file(s)",
    )
    p_golden.add_argument(
        "--scenario", default=None,
        help="limit to one scenario (default: all pinned scenarios)",
    )
    p_golden.add_argument(
        "--path", default=None,
        help="corpus file (requires --scenario; default: the scenario's "
        "committed location under tests/golden/)",
    )
    p_golden.set_defaults(handler=_cmd_golden)

    p_bench = sub.add_parser(
        "bench", help="time the macro perf scenarios (repro.bench)"
    )
    p_bench.add_argument(
        "scenario", nargs="*",
        help="scenario name(s); default: all registered scenarios",
    )
    p_bench.add_argument(
        "--list", action="store_true", help="enumerate bench scenarios"
    )
    p_bench.add_argument(
        "--quick", action="store_true",
        help="short simulated durations (CI smoke mode)",
    )
    p_bench.add_argument(
        "--repeats", type=int, default=3, metavar="K",
        help="wall-clock repeats per scenario; min is reported (default 3)",
    )
    p_bench.add_argument(
        "--json", metavar="PATH", nargs="?", const=DEFAULT_ARTIFACT,
        help=(
            "write the perf artifact to PATH ('-' for stdout; default "
            f"{DEFAULT_ARTIFACT}, or {QUICK_ARTIFACT} under --quick so "
            "quick numbers never clobber the tracked baseline)"
        ),
    )
    p_bench.add_argument(
        "--compare", metavar="BASELINE", nargs="?", const=DEFAULT_ARTIFACT,
        help=(
            "diff this run against a committed baseline artifact "
            f"(default {DEFAULT_ARTIFACT}); exits non-zero when any "
            "scenario's throughput regressed past --threshold"
        ),
    )
    p_bench.add_argument(
        "--threshold", type=float, default=DEFAULT_REGRESSION_THRESHOLD,
        metavar="FRACTION",
        help=(
            "allowed fractional throughput drop before --compare fails "
            f"(default {DEFAULT_REGRESSION_THRESHOLD:g}; CI uses a looser "
            "value because shared runners are noisy)"
        ),
    )
    p_bench.add_argument(
        "--history", metavar="PATH", default=HISTORY_FILE,
        help=(
            "append-only JSONL perf log written by non-quick runs "
            f"(default {HISTORY_FILE})"
        ),
    )
    p_bench.add_argument(
        "--no-history", action="store_true",
        help="skip appending this run to the history log",
    )
    p_bench.add_argument(
        "--journal", metavar="PATH",
        help=(
            "journal each scenario's timing as it lands, so an "
            "interrupted bench resumes without re-timing finished "
            "scenarios (deleted after a fully successful run)"
        ),
    )
    p_bench.add_argument(
        "--resume", metavar="JOURNAL",
        help=(
            "resume an interrupted --journal bench; pass the same "
            "scenario/--quick/--repeats arguments as the original run"
        ),
    )
    p_bench.set_defaults(handler=_cmd_bench)

    p_report = sub.add_parser(
        "report",
        help="render a result/sweep JSON artifact as a markdown report",
    )
    p_report.add_argument(
        "artifact",
        help="artifact path written by run/sweep --json ('-' reads stdin)",
    )
    p_report.add_argument(
        "--out", metavar="PATH", default="-",
        help="write the markdown to PATH (default '-': stdout)",
    )
    p_report.set_defaults(handler=_cmd_report)

    p_lint = sub.add_parser(
        "lint",
        help="run the project-specific static checks (repro.staticcheck)",
    )
    from repro.staticcheck.cli import add_lint_arguments

    add_lint_arguments(p_lint)
    p_lint.set_defaults(handler=_cmd_lint)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (
        ParameterError,
        UnknownExperimentError,
        BenchError,
        ReportError,
        JournalError,
        OrchestrationError,
        ChaosError,
    ) as error:
        message = error.args[0] if error.args else str(error)
        print(f"error: {message}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # A Ctrl-C outside the orchestrated section (no journal in
        # play); orchestrated runs convert theirs to
        # OrchestrationInterrupted and print a resume command first.
        print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED


__all__ = ["build_parser", "main"]
