"""Symbiotic interfaces (IPC channels).

Section 3.2 of the paper introduces *symbiotic interfaces*: IPC
abstractions (shared-memory queues, pipes, sockets, ttys) that expose
their fill level, size and each endpoint's role (producer or consumer)
to the kernel, so the scheduler can estimate application progress
without understanding application semantics.

This package provides those abstractions for the simulation substrate
and the :class:`~repro.ipc.registry.SymbioticRegistry` that plays the
role of the paper's meta-interface system call: applications (or the
channel constructors acting on their behalf, as the paper's shared
queue library does) register a channel plus each thread's role, and the
controller's monitors read fill levels through the registry.
"""

from repro.ipc.bounded_buffer import BoundedBuffer, Channel
from repro.ipc.mutex import Mutex
from repro.ipc.pipe import Pipe
from repro.ipc.registry import Linkage, SymbioticRegistry
from repro.ipc.roles import Role
from repro.ipc.sock import Socket
from repro.ipc.tty import TTY

__all__ = [
    "BoundedBuffer",
    "Channel",
    "Linkage",
    "Mutex",
    "Pipe",
    "Role",
    "Socket",
    "SymbioticRegistry",
    "TTY",
]
