"""The symbiotic-interface registry (the paper's meta-interface).

"When an application initializes a symbiotic interface (such as by
submitting hints, opening a file, or opening a shared queue), the
interface creates a linkage to the kernel using a meta-interface system
call that registers the queue (or socket, etc.) and the application's
use of that queue (producer or consumer)."

:class:`SymbioticRegistry` is that system call's backing store.  Each
:class:`Linkage` records (thread, channel, role).  The controller's
progress monitors iterate a thread's linkages to compute its progress
pressure, and workload helpers (the shared-queue library, pipe and
socket constructors) create linkages automatically so applications do
not have to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ipc.bounded_buffer import Channel
from repro.ipc.roles import Role
from repro.sim.errors import ChannelError
from repro.sim.thread import SimThread


@dataclass(frozen=True)
class Linkage:
    """One registered (thread, channel, role) association."""

    thread: SimThread
    channel: Channel
    role: Role

    def pressure_sign(self) -> int:
        """The R factor of Figure 3 for this linkage."""
        return self.role.sign


class SymbioticRegistry:
    """Kernel-side store of channel/role registrations."""

    def __init__(self) -> None:
        self._linkages: list[Linkage] = []
        self._channels: dict[str, Channel] = {}
        #: tid -> that thread's linkages, in registration order.  The
        #: controller queries every controlled thread once per tick, so
        #: these lookups must not scan the global linkage list.
        self._by_thread: dict[int, list[Linkage]] = {}
        #: Bumped on every registration change; the controller uses it
        #: to cache per-thread classifications between changes instead
        #: of re-deriving them for every thread every tick.
        self.version = 0

    # ------------------------------------------------------------------
    # registration (the meta-interface system call)
    # ------------------------------------------------------------------
    def register(self, thread: SimThread, channel: Channel, role: Role) -> Linkage:
        """Register ``thread`` as ``role`` of ``channel``.

        Registering the same association twice is an error — it would
        double-count the queue's pressure in the controller.
        """
        own = self._by_thread.get(thread.tid, ())
        for linkage in own:
            if linkage.channel is channel:
                raise ChannelError(
                    f"thread {thread.name!r} is already registered on channel "
                    f"{channel.name!r} as {linkage.role.value}"
                )
        if channel.name in self._channels and self._channels[channel.name] is not channel:
            raise ChannelError(
                f"a different channel named {channel.name!r} is already registered"
            )
        linkage = Linkage(thread=thread, channel=channel, role=role)
        self.version += 1
        self._linkages.append(linkage)
        self._by_thread.setdefault(thread.tid, []).append(linkage)
        self._channels[channel.name] = channel
        return linkage

    def register_pair(
        self,
        producer: SimThread,
        consumer: SimThread,
        channel: Channel,
    ) -> tuple[Linkage, Linkage]:
        """Convenience: register both ends of a producer/consumer queue."""
        return (
            self.register(producer, channel, Role.PRODUCER),
            self.register(consumer, channel, Role.CONSUMER),
        )

    def unregister_thread(self, thread: SimThread) -> int:
        """Drop all linkages for ``thread`` (e.g. on exit); returns count."""
        before = len(self._linkages)
        self.version += 1
        self._linkages = [l for l in self._linkages if l.thread != thread]
        self._by_thread.pop(thread.tid, None)
        return before - len(self._linkages)

    def unregister_channel(self, channel: Channel) -> int:
        """Drop all linkages involving ``channel``; returns count removed."""
        before = len(self._linkages)
        self.version += 1
        self._linkages = [l for l in self._linkages if l.channel is not channel]
        for tid, own in list(self._by_thread.items()):
            kept = [l for l in own if l.channel is not channel]
            if not kept:
                del self._by_thread[tid]
            elif len(kept) != len(own):
                self._by_thread[tid] = kept
        self._channels.pop(channel.name, None)
        return before - len(self._linkages)

    # ------------------------------------------------------------------
    # queries used by the controller's monitors
    # ------------------------------------------------------------------
    def linkages_for(self, thread: SimThread) -> list[Linkage]:
        """All linkages registered for ``thread`` (registration order)."""
        return list(self._by_thread.get(thread.tid, ()))

    def linkages_on(self, channel: Channel) -> list[Linkage]:
        """All linkages registered on ``channel``."""
        return [l for l in self._linkages if l.channel is channel]

    def has_progress_metric(self, thread: SimThread) -> bool:
        """Whether ``thread`` has any registered progress metric (O(1))."""
        return bool(self._by_thread.get(thread.tid))

    def channels(self) -> list[Channel]:
        """All channels with at least one registration."""
        return list(self._channels.values())

    def channel_by_name(self, name: str) -> Optional[Channel]:
        """Look up a registered channel by name."""
        return self._channels.get(name)

    def peers_of(self, thread: SimThread) -> list[SimThread]:
        """Threads sharing a channel with ``thread`` (pipeline neighbours)."""
        peers: list[SimThread] = []
        for linkage in self.linkages_for(thread):
            for other in self.linkages_on(linkage.channel):
                if other.thread != thread and other.thread not in peers:
                    peers.append(other.thread)
        return peers

    def __len__(self) -> int:
        return len(self._linkages)


__all__ = ["Linkage", "SymbioticRegistry"]
