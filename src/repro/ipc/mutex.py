"""Mutexes.

Not a symbiotic interface — mutexes carry no progress information — but
required to reproduce the priority-inversion scenario that motivates
the paper (the Mars Pathfinder resets): a high-priority thread blocks
on a mutex held by a low-priority thread that is starved by
medium-priority work.

Lock/unlock blocking is implemented by the kernel; the mutex only holds
its owner and FIFO waiter list, plus counters used by the inversion
experiment to quantify blocking time.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.thread import SimThread


class Mutex:
    """A simple blocking mutual-exclusion lock."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.owner: Optional["SimThread"] = None
        #: FIFO of blocked acquirers (deque: the kernel hands the lock
        #: to the head with an O(1) ``popleft``).
        self.waiters: deque["SimThread"] = deque()
        self.acquisitions = 0

    def is_locked(self) -> bool:
        """Whether some thread currently holds the mutex."""
        return self.owner is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        holder = self.owner.name if self.owner else None
        return f"Mutex(name={self.name!r}, owner={holder!r}, waiters={len(self.waiters)})"


__all__ = ["Mutex"]
