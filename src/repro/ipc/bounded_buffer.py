"""Bounded buffers (shared-memory queues).

The canonical symbiotic interface of the paper: a byte-counted bounded
buffer connecting a producer and a consumer.  The controller only ever
reads three things from it — capacity, current fill and each thread's
role — which is exactly what the paper's shared-queue library exposes
to the kernel through the meta-interface.

Blocking semantics are implemented by the kernel
(:meth:`repro.sim.kernel.Kernel._handle_put` and friends); the channel
itself only stores bytes and waiter lists, mirroring the split between
an in-kernel buffer implementation and the scheduler.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.sim.errors import ChannelError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.thread import SimThread


class Channel:
    """Base class for byte-stream symbiotic channels.

    Attributes
    ----------
    name:
        Identifier used in traces and the registry.
    capacity_bytes:
        Maximum number of bytes the channel buffers.
    """

    #: Channel kind reported to the registry (overridden by subclasses).
    KIND = "channel"

    def __init__(self, name: str, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ChannelError(
                f"channel {name!r}: capacity must be positive, got "
                f"{capacity_bytes}"
            )
        self.name = name
        self.capacity_bytes = int(capacity_bytes)
        self._fill_bytes = 0
        self.total_put_bytes = 0
        self.total_get_bytes = 0
        self.put_count = 0
        self.get_count = 0
        self.full_events = 0
        self.empty_events = 0
        #: Threads blocked writing to / reading from this channel
        #: (kernel-owned FIFOs; deques so the kernel's wake path pops
        #: from the head in O(1) instead of ``list.pop(0)``'s O(n)).
        self.put_waiters: deque["SimThread"] = deque()
        self.get_waiters: deque["SimThread"] = deque()

    # ------------------------------------------------------------------
    # state inspection (what the symbiotic interface exposes)
    # ------------------------------------------------------------------
    def fill_bytes(self) -> int:
        """Bytes currently buffered."""
        return self._fill_bytes

    def fill_level(self) -> float:
        """Fill as a fraction of capacity, in [0, 1]."""
        return self._fill_bytes / self.capacity_bytes

    def space_free(self) -> int:
        """Bytes of free space."""
        return self.capacity_bytes - self._fill_bytes

    def bytes_available(self) -> int:
        """Bytes available for reading (synonym for :meth:`fill_bytes`)."""
        return self._fill_bytes

    def is_full(self) -> bool:
        """Whether the buffer has no free space."""
        return self._fill_bytes >= self.capacity_bytes

    def is_empty(self) -> bool:
        """Whether the buffer holds no data."""
        return self._fill_bytes == 0

    # ------------------------------------------------------------------
    # data movement (called by the kernel on behalf of threads)
    # ------------------------------------------------------------------
    def commit_put(
        self, nbytes: int, *, now: int = 0, thread: Optional["SimThread"] = None
    ) -> None:
        """Record ``nbytes`` entering the buffer."""
        if nbytes > self.capacity_bytes:
            raise ChannelError(
                f"channel {self.name!r}: put of {nbytes} bytes exceeds "
                f"capacity {self.capacity_bytes}"
            )
        if self._fill_bytes + nbytes > self.capacity_bytes:
            raise ChannelError(
                f"channel {self.name!r}: put of {nbytes} bytes overflows "
                f"fill {self._fill_bytes}/{self.capacity_bytes}"
            )
        self._fill_bytes += nbytes
        self.total_put_bytes += nbytes
        self.put_count += 1
        if self.is_full():
            self.full_events += 1

    def commit_get(
        self, nbytes: int, *, now: int = 0, thread: Optional["SimThread"] = None
    ) -> None:
        """Record ``nbytes`` leaving the buffer."""
        if nbytes > self._fill_bytes:
            raise ChannelError(
                f"channel {self.name!r}: get of {nbytes} bytes underflows "
                f"fill {self._fill_bytes}"
            )
        self._fill_bytes -= nbytes
        self.total_get_bytes += nbytes
        self.get_count += 1
        if self.is_empty():
            self.empty_events += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"fill={self._fill_bytes}/{self.capacity_bytes})"
        )


class BoundedBuffer(Channel):
    """A shared-memory bounded buffer between cooperating threads.

    This is the channel type used by the pulse-response experiments of
    Sections 4.2 (Figures 6 and 7): the producer enqueues blocks, the
    consumer dequeues them, and the controller drives the consumer's
    allocation from the fill level.
    """

    KIND = "shared_queue"

    def __init__(self, name: str, capacity_bytes: int = 64 * 1024) -> None:
        super().__init__(name, capacity_bytes)


__all__ = ["BoundedBuffer", "Channel"]
