"""Sockets.

A simulated socket is a pair of kernel buffers, one per direction.  For
the scheduling experiments only the receive direction of the server
matters (a server is "essentially the consumer of a bounded buffer,
where the producer may or may not be on the same machine"), so
:class:`Socket` exposes the receive buffer as its primary channel and
offers the send buffer for completeness.
"""

from __future__ import annotations

from repro.ipc.bounded_buffer import Channel

#: Default socket buffer size (matches a common SO_RCVBUF default).
DEFAULT_SOCKET_CAPACITY = 32 * 1024


class Socket(Channel):
    """The receive side of a simulated socket.

    ``peer_send_buffer`` models the opposite direction; it is created
    lazily because most workloads only exercise one direction.
    """

    KIND = "socket"

    def __init__(
        self, name: str, capacity_bytes: int = DEFAULT_SOCKET_CAPACITY
    ) -> None:
        super().__init__(name, capacity_bytes)
        self._send_buffer: Channel | None = None

    @property
    def send_buffer(self) -> Channel:
        """The send-direction buffer (created on first use)."""
        if self._send_buffer is None:
            self._send_buffer = Channel(
                f"{self.name}:send", self.capacity_bytes
            )
        return self._send_buffer


__all__ = ["DEFAULT_SOCKET_CAPACITY", "Socket"]
