"""Producer/consumer roles.

The paper's progress-pressure formula (Figure 3) multiplies a queue's
fill-level deviation by ``R``, which is +1 for a consumer of the queue
and -1 for a producer: a full queue means the consumer should speed up
(positive pressure) and the producer should slow down (negative
pressure).
"""

from __future__ import annotations

import enum


class Role(enum.Enum):
    """A thread's relationship to a symbiotic channel."""

    PRODUCER = "producer"
    CONSUMER = "consumer"

    @property
    def sign(self) -> int:
        """The R factor of Figure 3: -1 for producers, +1 for consumers."""
        return -1 if self is Role.PRODUCER else 1

    @property
    def opposite(self) -> "Role":
        """The other end of the channel."""
        return Role.CONSUMER if self is Role.PRODUCER else Role.PRODUCER


__all__ = ["Role"]
