"""Unix-style pipes.

The paper extends the in-kernel pipe implementation so that pipes
register themselves with the meta-interface automatically: "Pipes and
sockets are effectively queues managed by the kernel as part of the
abstraction."  A :class:`Pipe` is therefore just a :class:`Channel`
with the traditional 4 KiB kernel buffer as its default capacity and a
distinct kind tag so monitors can report what they are watching.
"""

from __future__ import annotations

from repro.ipc.bounded_buffer import Channel

#: Classic Unix pipe buffer size.
DEFAULT_PIPE_CAPACITY = 4 * 1024


class Pipe(Channel):
    """A kernel-buffered byte pipe between two threads."""

    KIND = "pipe"

    def __init__(self, name: str, capacity_bytes: int = DEFAULT_PIPE_CAPACITY) -> None:
        super().__init__(name, capacity_bytes)


__all__ = ["DEFAULT_PIPE_CAPACITY", "Pipe"]
