"""TTYs for interactive jobs.

"Interactive jobs are servers that listen to ttys instead of sockets.
Since interactive jobs have specific requirements (periods relative to
human perception), the scheduler only needs to know that the job is
interactive and the ttys in which it is interested."

A :class:`TTY` is a small channel carrying keystroke/event bytes from a
(simulated) human to the interactive thread.  The controller treats
threads registered as consumers of a TTY specially: it pins their
period to a human-perception bound rather than estimating it.
"""

from __future__ import annotations

from repro.ipc.bounded_buffer import Channel

#: Keystroke buffers are tiny; 256 events is generous.
DEFAULT_TTY_CAPACITY = 256

#: Period used for interactive jobs: 30 ms keeps response comfortably
#: below human perception thresholds (the paper's default period).
INTERACTIVE_PERIOD_US = 30_000


class TTY(Channel):
    """A terminal input queue for an interactive job."""

    KIND = "tty"

    def __init__(self, name: str, capacity_bytes: int = DEFAULT_TTY_CAPACITY) -> None:
        super().__init__(name, capacity_bytes)


__all__ = ["DEFAULT_TTY_CAPACITY", "INTERACTIVE_PERIOD_US", "TTY"]
