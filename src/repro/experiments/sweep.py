"""Parameter-grid sweeps with parallel worker processes.

A sweep takes one registered experiment and a grid of parameter values
(``{"n_cpus": "1,2,4", "seed": "0,1,2"}``), expands the cartesian
product into points, runs every point — serially or fanned out over a
:class:`concurrent.futures.ProcessPoolExecutor` — and merges the
per-point results into one schema-versioned artifact.

Results cross the process boundary as
:meth:`~repro.analysis.results.ExperimentResult.to_dict` dictionaries,
and the merged artifact is serialized with sorted keys, so a sweep is
byte-for-byte reproducible regardless of worker count: the simulation
itself is deterministic, point order is the deterministic grid order,
and workers only change *where* a point runs, never its inputs.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Mapping, Optional, Sequence

from repro._version import __version__
from repro.experiments.registry import (
    REGISTRY,
    ExperimentSpec,
    ParameterError,
    _jsonable,
)

#: Version of the merged sweep-artifact wire format.
SWEEP_SCHEMA_VERSION = 1


def expand_grid(
    spec: ExperimentSpec, grid: Mapping[str, Any]
) -> tuple[dict[str, list[Any]], list[dict[str, Any]]]:
    """Expand a raw grid into (parsed axes, cartesian product points).

    Each grid value may be a CLI string — split on ``","`` into sweep
    values, each parsed by the parameter's schema (so a list-typed
    parameter uses ``":"`` inside one value: ``n_cpus=1:2:4,8`` is two
    points) — or an already-typed sequence of sweep values.

    Points are emitted in deterministic order: the last-listed axis
    varies fastest, like nested loops in the order the axes were given.
    """
    axes: dict[str, list[Any]] = {}
    for name, raw in grid.items():
        param = spec.param(name)
        if isinstance(raw, str):
            tokens = [t for t in raw.split(",") if t.strip()]
            if not tokens:
                raise ParameterError(
                    f"parameter {name!r}: no sweep values in {raw!r}"
                )
            axes[name] = [param.parse(token) for token in tokens]
        elif isinstance(raw, Sequence):
            axes[name] = [param.parse(value) for value in raw]
        else:
            axes[name] = [param.parse(raw)]

    points: list[dict[str, Any]] = [{}]
    for name, values in axes.items():
        points = [
            {**point, name: value} for point in points for value in values
        ]
    return axes, points


def _run_point(task: tuple[str, dict[str, Any], bool]) -> dict[str, Any]:
    """Worker entry: run one grid point, return its result as a dict.

    Top-level (picklable) and self-contained: it re-imports the
    experiment modules so it works under both the ``fork`` and
    ``spawn`` multiprocessing start methods.
    """
    name, overrides, quick = task
    import repro.experiments  # noqa: F401 — populate the registry

    return REGISTRY.run(name, overrides, quick=quick).to_dict()


def run_sweep(
    name: str,
    grid: Mapping[str, Any],
    *,
    jobs: int = 1,
    quick: bool = False,
) -> dict[str, Any]:
    """Run the full grid and return the merged artifact dictionary.

    ``jobs`` ≤ 1 runs every point in this process; larger values fan
    points out over that many worker processes.  Both paths produce an
    identical artifact.
    """
    spec = REGISTRY.get(name)
    axes, points = expand_grid(spec, grid)
    tasks = [(name, point, quick) for point in points]

    if jobs <= 1 or len(tasks) <= 1:
        result_dicts: list[Optional[dict[str, Any]]] = [
            _run_point(task) for task in tasks
        ]
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
            result_dicts = list(pool.map(_run_point, tasks))

    return build_sweep_artifact(name, axes, points, result_dicts, quick=quick)


def build_sweep_artifact(
    name: str,
    axes: Mapping[str, Sequence[Any]],
    points: Sequence[Mapping[str, Any]],
    results: "Sequence[Optional[dict[str, Any]]]",
    *,
    quick: bool = False,
    errors: Optional[Mapping[int, dict[str, Any]]] = None,
) -> dict[str, Any]:
    """Merge per-point result dicts into the sweep artifact structure.

    Shared by the in-process :func:`run_sweep` path and the journaled
    orchestration runner so both produce byte-identical artifacts for
    the same grid.  A point that permanently failed carries ``result:
    None`` plus an ``error`` object from ``errors`` (keyed by point
    index); all-success artifacts are byte-for-byte unchanged from the
    pre-orchestration format.
    """
    merged: list[dict[str, Any]] = []
    for index, (point, rd) in enumerate(zip(points, results)):
        entry: dict[str, Any] = {
            "params": {k: _jsonable(v) for k, v in point.items()},
            "result": rd,
        }
        if errors is not None and index in errors:
            entry["error"] = errors[index]
        merged.append(entry)
    return {
        "schema_version": SWEEP_SCHEMA_VERSION,
        "repro_version": __version__,
        "kind": "sweep",
        "experiment": name,
        "quick": quick,
        "grid": {
            axis: [_jsonable(value) for value in values]
            for axis, values in axes.items()
        },
        "points": merged,
    }


def sweep_to_json(artifact: Mapping[str, Any], *, indent: Optional[int] = 2) -> str:
    """Deterministic JSON text for a merged sweep artifact."""
    return json.dumps(artifact, sort_keys=True, indent=indent)


__all__ = [
    "SWEEP_SCHEMA_VERSION",
    "build_sweep_artifact",
    "expand_grid",
    "run_sweep",
    "sweep_to_json",
]
