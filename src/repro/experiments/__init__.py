"""Experiment drivers and the declarative experiment registry.

One module per reproduced figure of the paper, plus extension /
ablation experiments.  Every driver declares itself to the registry
with the :func:`repro.experiments.registry.experiment` decorator,
producing an :class:`~repro.experiments.registry.ExperimentSpec` —
name, description, typed parameter schema with defaults and bounds,
and quick-mode overrides.  Importing this package registers every
experiment (the ten paper reproductions/ablations plus the open-system
churn scenarios); enumerate and run them through
:data:`~repro.experiments.registry.REGISTRY` or the ``python -m repro``
command line (``list`` / ``describe`` / ``run`` / ``sweep``).

Every experiment returns an
:class:`repro.analysis.results.ExperimentResult` containing

* the headline metrics (with the paper's reported values alongside,
  where the paper gives them),
* the raw time series needed to redraw the figure, and
* notes about any deviation from the paper's setup.

The historical ``run_*`` entry points remain as thin back-compat
wrappers around the registered functions.  The benchmark suite
(``benchmarks/``) resolves drivers through the registry and asserts
the *shape* properties the paper claims; the examples print their
summaries.
"""

from repro.experiments.ablation_period import (
    ablation_period_experiment,
    run_ablation_period,
)
from repro.experiments.ablation_pid import ablation_pid_experiment, run_ablation_pid
from repro.experiments.ablation_squish import (
    ablation_squish_experiment,
    run_ablation_squish,
)
from repro.experiments.churn import (
    churn_webfarm_experiment,
    flash_crowd_rt_experiment,
    thundering_herd_experiment,
    tidal_pipeline_experiment,
    trace_replay_experiment,
)
from repro.experiments.faults import (
    cpu_failover_experiment,
    runaway_quarantine_experiment,
    sensor_dropout_experiment,
)
from repro.experiments.figure5 import figure5_experiment, run_figure5
from repro.experiments.figure6 import figure6_experiment, run_figure6
from repro.experiments.figure7 import figure7_experiment, run_figure7
from repro.experiments.figure8 import figure8_experiment, run_figure8
from repro.experiments.inversion import inversion_experiment, run_inversion_comparison
from repro.experiments.registry import (
    REGISTRY,
    DuplicateExperimentError,
    ExperimentRegistry,
    ExperimentSpec,
    Param,
    ParameterError,
    UnknownExperimentError,
    experiment,
)
from repro.experiments.response_curve import response_curve_experiment
from repro.experiments.slo import slo_flash_crowd_experiment
from repro.experiments.smp_scaling import run_smp_scaling, smp_scaling_experiment
from repro.experiments.taxonomy import run_taxonomy, taxonomy_experiment
from repro.experiments.topology import topology_placement_experiment

__all__ = [
    "DuplicateExperimentError",
    "ExperimentRegistry",
    "ExperimentSpec",
    "Param",
    "ParameterError",
    "REGISTRY",
    "UnknownExperimentError",
    "ablation_period_experiment",
    "ablation_pid_experiment",
    "ablation_squish_experiment",
    "churn_webfarm_experiment",
    "cpu_failover_experiment",
    "experiment",
    "flash_crowd_rt_experiment",
    "thundering_herd_experiment",
    "tidal_pipeline_experiment",
    "trace_replay_experiment",
    "figure5_experiment",
    "figure6_experiment",
    "figure7_experiment",
    "figure8_experiment",
    "inversion_experiment",
    "run_ablation_period",
    "run_ablation_pid",
    "run_ablation_squish",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_inversion_comparison",
    "run_smp_scaling",
    "run_taxonomy",
    "response_curve_experiment",
    "runaway_quarantine_experiment",
    "sensor_dropout_experiment",
    "slo_flash_crowd_experiment",
    "smp_scaling_experiment",
    "taxonomy_experiment",
    "topology_placement_experiment",
]
