"""Experiment drivers.

One module per reproduced figure of the paper, plus extension /
ablation experiments.  Every driver exposes a ``run_*`` function that
builds the workload, runs the simulation and returns an
:class:`repro.analysis.results.ExperimentResult` containing

* the headline metrics (with the paper's reported values alongside,
  where the paper gives them),
* the raw time series needed to redraw the figure, and
* notes about any deviation from the paper's setup.

The benchmark suite (``benchmarks/``) calls these drivers and asserts
the *shape* properties the paper claims; the examples print their
summaries.
"""

from repro.experiments.ablation_period import run_ablation_period
from repro.experiments.ablation_pid import run_ablation_pid
from repro.experiments.ablation_squish import run_ablation_squish
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import run_figure7
from repro.experiments.figure8 import run_figure8
from repro.experiments.inversion import run_inversion_comparison
from repro.experiments.smp_scaling import run_smp_scaling
from repro.experiments.taxonomy import run_taxonomy

__all__ = [
    "run_ablation_period",
    "run_ablation_pid",
    "run_ablation_squish",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_inversion_comparison",
    "run_smp_scaling",
    "run_taxonomy",
]
