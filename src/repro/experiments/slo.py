"""SLO-driven controller vs the paper's PID, head to head.

``slo_flash_crowd`` runs the :mod:`flash-crowd <repro.experiments.churn>`
scenario twice with the same seed:

* **pid** — exactly the ``flash_crowd_rt`` configuration: the paper's
  first-level feedback (PID over progress pressure) with every
  real-time job carrying a fixed ``rt_ppt`` reservation;
* **slo** — the same system plus a second-level
  :class:`~repro.swift.slo.SLOController` that watches the crowd's
  windowed p99 sojourn against ``target_p99_ms`` and re-sizes the job
  class's reservation (live jobs and future admissions alike).

Both passes record their full dispatch fingerprints and per-tag
sojourn percentiles, so ``python -m repro report`` renders the
comparison from one artifact — and a fixed seed reproduces the whole
report bit for bit on either kernel engine.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.results import ExperimentResult
from repro.analysis.sojourn import sojourn_stats
from repro.experiments.churn import _ENGINE_PARAM, build_flash_crowd_workload
from repro.experiments.registry import Param, experiment
from repro.sim.clock import seconds
from repro.swift.slo import SLOController, SLOPolicy
from repro.workloads.engine import dispatch_fingerprint


def _run_pass(
    *,
    use_slo: bool,
    target_p99_ms: float,
    slo_period_ms: float,
    duration_s: float,
    **workload_kwargs,
) -> dict:
    """One full simulation; returns the pass's stats dict."""
    system, churn, stream, template, script = build_flash_crowd_workload(
        **workload_kwargs
    )
    controller = None
    if use_slo:
        controller = SLOController(
            system.kernel,
            stream,
            template.spec,
            SLOPolicy(target_us=target_p99_ms * 1_000.0),
            period_us=int(seconds(slo_period_ms / 1_000.0)),
        )
    churn.start(script)
    system.run_for(seconds(duration_s))

    records = [record.to_dict() for record in stream.records]
    stats = sojourn_stats(records, tag=stream.template.name)
    arrivals_total = stream.spawned + stream.rejected
    out = {
        "controller": "slo" if use_slo else "pid",
        "stats": stats.to_dict(),
        "spawned": stream.spawned,
        "completed": stream.completed,
        "rejected": stream.rejected,
        "admit_ratio": (
            stream.spawned / arrivals_total if arrivals_total else 0.0
        ),
        "final_job_ppt": template.spec.proportion_ppt,
        "deadline_misses": int(system.scheduler.deadline_misses()),
        "dispatch_fingerprint": dispatch_fingerprint(system.kernel),
        "records": records,
    }
    if controller is not None:
        out["slo_adjustments"] = len(controller.adjustments)
        out["slo_violation_ticks"] = controller.violations
        out["slo_invocations"] = controller.invocations
    return out


@experiment(
    name="slo_flash_crowd",
    description="Tail-latency SLO controller vs the paper's PID on the flash crowd",
    tags=("churn", "slo", "controller", "real-time"),
    params=(
        Param("n_cpus", kind="int", default=1, minimum=1, maximum=64),
        Param("base_rps", kind="float", default=30.0, minimum=0.1),
        Param("flash_rps", kind="float", default=300.0, minimum=0.1),
        Param("flash_start_s", kind="float", default=0.6, minimum=0.0),
        Param("flash_end_s", kind="float", default=1.2, minimum=0.0),
        Param("rt_ppt", kind="int", default=80, minimum=1, maximum=1000,
              help="starting reserved proportion per job (both passes)"),
        Param("job_cpu_us", kind="int", default=4_000, minimum=1),
        Param("target_p99_ms", kind="float", default=40.0, minimum=0.1,
              help="the SLO: objective on the crowd's p99 sojourn"),
        Param("slo_period_ms", kind="float", default=50.0, minimum=1.0,
              help="second-level controller period"),
        Param("duration_s", kind="float", default=2.0, minimum=0.05),
        Param("seed", kind="int", default=29),
        _ENGINE_PARAM,
    ),
    quick={"duration_s": 0.5, "flash_start_s": 0.15, "flash_end_s": 0.3},
)
def slo_flash_crowd_experiment(
    *,
    n_cpus: int = 1,
    base_rps: float = 30.0,
    flash_rps: float = 300.0,
    flash_start_s: float = 0.6,
    flash_end_s: float = 1.2,
    rt_ppt: int = 80,
    job_cpu_us: int = 4_000,
    target_p99_ms: float = 40.0,
    slo_period_ms: float = 50.0,
    duration_s: float = 2.0,
    seed: Optional[int] = 29,
    engine: str = "horizon",
) -> ExperimentResult:
    """Does chasing p99 beat chasing progress pressure on the flash crowd?

    The pid pass is the paper's system verbatim; the slo pass layers
    the tail-latency loop on top of it.  The interesting trade is
    latency vs yield: when the observed p99 blows past the objective
    the SLO controller buys it back by raising the per-job
    reservation, which also prices more of the flash crowd out at
    admission — fewer jobs served, each inside the objective.
    """
    workload_kwargs = dict(
        n_cpus=n_cpus,
        base_rps=base_rps,
        flash_rps=flash_rps,
        flash_start_s=flash_start_s,
        flash_end_s=flash_end_s,
        rt_ppt=rt_ppt,
        job_cpu_us=job_cpu_us,
        seed=seed,
        engine=engine,
    )
    passes = {
        name: _run_pass(
            use_slo=(name == "slo"),
            target_p99_ms=target_p99_ms,
            slo_period_ms=slo_period_ms,
            duration_s=duration_s,
            **workload_kwargs,
        )
        for name in ("pid", "slo")
    }

    result = ExperimentResult(
        experiment_id="slo_flash_crowd",
        title="SLO-driven tail-latency controller vs paper PID (flash crowd)",
    )
    for name, data in passes.items():
        stats = data["stats"]
        result.metrics[f"{name}_completed"] = float(data["completed"])
        result.metrics[f"{name}_rejected"] = float(data["rejected"])
        result.metrics[f"{name}_admit_ratio"] = data["admit_ratio"]
        result.metrics[f"{name}_deadline_misses"] = float(
            data["deadline_misses"]
        )
        if stats["completed"]:
            result.metrics[f"{name}_mean_sojourn_ms"] = stats["mean_us"] / 1_000.0
            result.metrics[f"{name}_p99_sojourn_ms"] = stats["p99_us"] / 1_000.0
    slo_stats = passes["slo"]["stats"]
    if slo_stats["p99_us"] is not None:
        result.metrics["slo_attained"] = float(
            slo_stats["p99_us"] <= target_p99_ms * 1_000.0
        )
    result.metrics["target_p99_ms"] = float(target_p99_ms)

    # The report's comparison section reads this block; records stay
    # per-pass so percentile tables can be rebuilt from the artifact.
    result.metadata["controllers"] = {
        name: {k: v for k, v in data.items() if k != "records"}
        for name, data in passes.items()
    }
    result.metadata["job_records"] = {
        name: data["records"] for name, data in passes.items()
    }
    result.metadata["engine"] = engine
    result.metadata["seed"] = seed
    # One composite fingerprint (plus the per-pass ones above) keeps
    # the same-seed-same-report determinism contract checkable.
    result.metadata["dispatch_fingerprint"] = "+".join(
        passes[name]["dispatch_fingerprint"] for name in ("pid", "slo")
    )
    result.notes.append(
        "second-level SLO loop: additive-increase/multiplicative-decrease on "
        "the job class's reservation, sensed from windowed exact-rank p99; "
        "the pid pass is flash_crowd_rt verbatim (same seed, same dispatch "
        "fingerprint)."
    )
    return result


__all__ = ["slo_flash_crowd_experiment"]
