"""Ablation — PID gain sensitivity.

The paper asserts that PID control gives "error reduction together with
acceptable stability and damping" but does not explore the gain space.
This ablation sweeps the proportional and integral gains around the
library defaults and reports, for each setting, the pulse workload's
response time, overshoot and steady-state fill deviation, showing the
classic trade-off: higher gains respond faster but overshoot and become
noisy, lower gains are smooth but slow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.response import step_response
from repro.analysis.results import ExperimentResult
from repro.analysis.series import mean_absolute_deviation
from repro.core.config import ControllerConfig
from repro.sim.clock import seconds
from repro.swift.pid import PIDGains
from repro.system import build_real_rate_system
from repro.workloads.pulse import PulseParameters, PulsePipeline, PulseSchedule

#: The gain settings swept by default: (label, kp, ki, kd).
DEFAULT_GAIN_SETTINGS: tuple[tuple[str, float, float, float], ...] = (
    ("low", 0.1, 0.3, 0.0),
    ("default", 0.25, 0.8, 0.005),
    ("high", 0.8, 3.0, 0.01),
    ("integral_only", 0.0, 1.0, 0.0),
)


@dataclass(frozen=True)
class GainOutcome:
    """Metrics for one gain setting."""

    label: str
    kp: float
    ki: float
    kd: float
    response_time_s: float
    overshoot: float
    fill_mad: float


def _evaluate(
    kp: float, ki: float, kd: float, *, pulse_at_s: float = 3.0,
    sim_seconds: float = 8.0,
) -> tuple[float, float, float]:
    config = ControllerConfig(pid_gains=PIDGains(kp=kp, ki=ki, kd=kd))
    system = build_real_rate_system(config)
    params = PulseParameters()
    schedule = PulseSchedule.paper_figure6(
        params.base_rate_bytes_per_cpu_us,
        rising_widths_s=(3.0,),
        falling_widths_s=(),
        gap_s=1.0,
        start_s=pulse_at_s,
        tail_s=0.5,
    )
    pipeline = PulsePipeline.attach(system, schedule=schedule, params=params)
    tracer = system.kernel.tracer
    tracer.add_sampler(
        system.kernel.events, 50_000, "fill",
        lambda now: pipeline.queue.fill_level(),
    )
    system.run_for(seconds(sim_seconds))

    alloc = tracer.series(f"alloc:{pipeline.consumer.name}")
    response = step_response(
        alloc.times_s(), alloc.values(), pulse_at_s, measure_window_s=2.5
    )
    fill = tracer.series("fill")
    fill_mad = mean_absolute_deviation(
        [p.value for p in fill if p.time_s > 2.0], 0.5
    )
    rise = response.rise_time_s if response.rise_time_s is not None else float("inf")
    return rise, response.overshoot_fraction, fill_mad


def run_ablation_pid(
    settings: Sequence[tuple[str, float, float, float]] = DEFAULT_GAIN_SETTINGS,
) -> ExperimentResult:
    """Sweep PID gains on the pulse workload."""
    outcomes: list[GainOutcome] = []
    for label, kp, ki, kd in settings:
        rise, overshoot, fill_mad = _evaluate(kp, ki, kd)
        outcomes.append(
            GainOutcome(
                label=label, kp=kp, ki=ki, kd=kd,
                response_time_s=rise, overshoot=overshoot, fill_mad=fill_mad,
            )
        )

    result = ExperimentResult(
        experiment_id="ablation_pid",
        title="PID gain sensitivity (pulse workload)",
    )
    for outcome in outcomes:
        result.metrics[f"response_time_s:{outcome.label}"] = outcome.response_time_s
        result.metrics[f"overshoot:{outcome.label}"] = outcome.overshoot
        result.metrics[f"fill_mad:{outcome.label}"] = outcome.fill_mad
    result.add_series(
        "response_time_by_setting",
        list(range(len(outcomes))),
        [o.response_time_s for o in outcomes],
    )
    result.notes.append(
        "settings: " + ", ".join(
            f"{o.label}(kp={o.kp}, ki={o.ki}, kd={o.kd})" for o in outcomes
        )
    )
    return result


__all__ = ["DEFAULT_GAIN_SETTINGS", "GainOutcome", "run_ablation_pid"]
