"""Ablation — PID gain sensitivity.

The paper asserts that PID control gives "error reduction together with
acceptable stability and damping" but does not explore the gain space.
This ablation sweeps the proportional and integral gains around the
library defaults and reports, for each setting, the pulse workload's
response time, overshoot and steady-state fill deviation, showing the
classic trade-off: higher gains respond faster but overshoot and become
noisy, lower gains are smooth but slow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.response import step_response
from repro.analysis.results import ExperimentResult
from repro.analysis.series import mean_absolute_deviation
from repro.core.config import ControllerConfig
from repro.experiments.params import ENGINE_PARAM, stamp_reproducibility
from repro.experiments.registry import Param, experiment
from repro.sim.clock import seconds
from repro.sim.kernel import Kernel
from repro.swift.pid import PIDGains
from repro.system import build_real_rate_system
from repro.workloads.pulse import PulseParameters, PulsePipeline, PulseSchedule

#: The gain settings swept by default: (label, kp, ki, kd).
DEFAULT_GAIN_SETTINGS: tuple[tuple[str, float, float, float], ...] = (
    ("low", 0.1, 0.3, 0.0),
    ("default", 0.25, 0.8, 0.005),
    ("high", 0.8, 3.0, 0.01),
    ("integral_only", 0.0, 1.0, 0.0),
)


@dataclass(frozen=True)
class GainOutcome:
    """Metrics for one gain setting."""

    label: str
    kp: float
    ki: float
    kd: float
    response_time_s: float
    overshoot: float
    fill_mad: float


#: Labels of the default gain settings (the schema's choices).
DEFAULT_GAIN_LABELS = tuple(label for label, _, _, _ in DEFAULT_GAIN_SETTINGS)


def _evaluate(
    kp: float, ki: float, kd: float, *, pulse_at_s: float = 3.0,
    sim_seconds: float = 8.0, engine: str = "horizon",
) -> tuple[float, float, float, Kernel]:
    config = ControllerConfig(pid_gains=PIDGains(kp=kp, ki=ki, kd=kd))
    system = build_real_rate_system(
        config, record_dispatches=True, engine=engine
    )
    params = PulseParameters()
    schedule = PulseSchedule.paper_figure6(
        params.base_rate_bytes_per_cpu_us,
        rising_widths_s=(3.0,),
        falling_widths_s=(),
        gap_s=1.0,
        start_s=pulse_at_s,
        tail_s=0.5,
    )
    pipeline = PulsePipeline.attach(system, schedule=schedule, params=params)
    tracer = system.kernel.tracer
    tracer.add_sampler(
        system.kernel.events, 50_000, "fill",
        lambda now: pipeline.queue.fill_level(),
    )
    system.run_for(seconds(sim_seconds))

    alloc = tracer.series(f"alloc:{pipeline.consumer.name}")
    response = step_response(
        alloc.times_s(), alloc.values(), pulse_at_s, measure_window_s=2.5
    )
    fill = tracer.series("fill")
    fill_mad = mean_absolute_deviation(
        [p.value for p in fill if p.time_s > 2.0], 0.5
    )
    rise = response.rise_time_s if response.rise_time_s is not None else float("inf")
    return rise, response.overshoot_fraction, fill_mad, system.kernel


@experiment(
    name="ablation_pid",
    description="PID gain sensitivity (pulse workload)",
    tags=("ablation", "pid"),
    params=(
        Param(
            "labels", kind="str_list", default=DEFAULT_GAIN_LABELS,
            choices=DEFAULT_GAIN_LABELS,
            help="which of the default gain settings to sweep",
        ),
        Param("sim_seconds", kind="float", default=8.0, minimum=1.0,
              help="virtual seconds simulated per gain setting"),
        Param("seed", kind="int", default=None, help="RNG seed (recorded; "
              "the pulse workload is fully deterministic)"),
        ENGINE_PARAM,
    ),
    quick={"labels": ("low", "high"), "sim_seconds": 6.0},
)
def ablation_pid_experiment(
    *,
    labels: Sequence[str] = DEFAULT_GAIN_LABELS,
    sim_seconds: float = 8.0,
    seed: Optional[int] = None,
    engine: str = "horizon",
    settings: Optional[Sequence[tuple[str, float, float, float]]] = None,
) -> ExperimentResult:
    """Sweep PID gains on the pulse workload.

    ``settings`` (label, kp, ki, kd) overrides ``labels`` when given —
    the programmatic escape hatch for gains outside the default grid.
    """
    if settings is None:
        by_label = {s[0]: s for s in DEFAULT_GAIN_SETTINGS}
        unknown = [label for label in labels if label not in by_label]
        if unknown:
            raise ValueError(
                f"unknown gain labels {unknown}; known: {sorted(by_label)}"
            )
        settings = tuple(by_label[label] for label in labels)
    outcomes: list[GainOutcome] = []
    kernels = []
    for label, kp, ki, kd in settings:
        rise, overshoot, fill_mad, kernel = _evaluate(
            kp, ki, kd, sim_seconds=sim_seconds, engine=engine
        )
        kernels.append(kernel)
        outcomes.append(
            GainOutcome(
                label=label, kp=kp, ki=ki, kd=kd,
                response_time_s=rise, overshoot=overshoot, fill_mad=fill_mad,
            )
        )

    result = ExperimentResult(
        experiment_id="ablation_pid",
        title="PID gain sensitivity (pulse workload)",
    )
    for outcome in outcomes:
        result.metrics[f"response_time_s:{outcome.label}"] = outcome.response_time_s
        result.metrics[f"overshoot:{outcome.label}"] = outcome.overshoot
        result.metrics[f"fill_mad:{outcome.label}"] = outcome.fill_mad
    result.add_series(
        "response_time_by_setting",
        list(range(len(outcomes))),
        [o.response_time_s for o in outcomes],
    )
    stamp_reproducibility(result, *kernels, seed=seed)
    result.notes.append(
        "settings: " + ", ".join(
            f"{o.label}(kp={o.kp}, ki={o.ki}, kd={o.kd})" for o in outcomes
        )
    )
    return result


def run_ablation_pid(
    settings: Sequence[tuple[str, float, float, float]] = DEFAULT_GAIN_SETTINGS,
    *,
    sim_seconds: float = 8.0,
    seed: Optional[int] = None,
) -> ExperimentResult:
    """Back-compat wrapper around the registered ``ablation_pid``
    experiment."""
    return ablation_pid_experiment(
        settings=settings, sim_seconds=sim_seconds, seed=seed
    )


__all__ = [
    "DEFAULT_GAIN_LABELS",
    "DEFAULT_GAIN_SETTINGS",
    "GainOutcome",
    "ablation_pid_experiment",
    "run_ablation_pid",
]
