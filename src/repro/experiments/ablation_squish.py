"""Ablation — overload squish policies and importance weighting.

The paper extends plain proportional squishing to a weighted fair share
where an *importance* weight "determines the likelihood that a thread
will get its desired allocation", while insisting that "a more-
important job cannot starve a less important job".

This ablation saturates the CPU with several miscellaneous hogs of
different importances and measures the CPU share each obtains under

* plain fair-share squishing (importance ignored), and
* weighted fair-share squishing,

verifying both the proportionality of the weighted shares and the
no-starvation guarantee.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.results import ExperimentResult
from repro.core.config import ControllerConfig
from repro.core.overload import FairShareSquish, WeightedFairShareSquish
from repro.experiments.params import ENGINE_PARAM, stamp_reproducibility
from repro.experiments.registry import Param, experiment
from repro.sim.clock import seconds
from repro.system import build_real_rate_system
from repro.workloads.cpu_hog import CpuHog

#: Importances of the competing hogs.
DEFAULT_IMPORTANCES = (1.0, 2.0, 4.0)


def _run_with_policy(
    policy_name: str,
    importances: Sequence[float],
    sim_seconds: float,
    config: Optional[ControllerConfig],
    seed: Optional[int],
    engine: str,
    kernels: list,
) -> dict[str, float]:
    cfg = config if config is not None else ControllerConfig()
    if policy_name == "fair":
        policy = FairShareSquish(cfg.min_proportion_ppt)
    elif policy_name == "weighted":
        policy = WeightedFairShareSquish(cfg.min_proportion_ppt)
    else:
        raise ValueError(f"unknown squish policy {policy_name!r}")
    system = build_real_rate_system(
        cfg, squish_policy=policy, record_dispatches=True, engine=engine
    )
    kernels.append(system.kernel)
    hogs = [
        CpuHog.attach(
            system,
            name=f"hog.i{importance:g}",
            importance=importance,
            seed=None if seed is None else seed + index,
        )
        for index, importance in enumerate(importances)
    ]
    system.run_for(seconds(sim_seconds))
    elapsed = system.now
    return {
        f"{policy_name}_share_i{importance:g}": hog.thread.accounting.total_us
        / elapsed
        for importance, hog in zip(importances, hogs)
    }


@experiment(
    name="ablation_squish",
    description="Overload squishing: fair share vs. weighted fair share",
    tags=("ablation", "overload"),
    params=(
        Param("importances", kind="float_list", default=DEFAULT_IMPORTANCES,
              minimum=0.1, help="importance weights of the competing hogs"),
        Param("sim_seconds", kind="float", default=8.0, minimum=0.5,
              help="virtual seconds simulated per policy"),
        Param("seed", kind="int", default=None,
              help="seeds the hogs' burst-length jitter"),
        ENGINE_PARAM,
    ),
    quick={"sim_seconds": 4.0},
)
def ablation_squish_experiment(
    *,
    importances: Sequence[float] = DEFAULT_IMPORTANCES,
    sim_seconds: float = 8.0,
    seed: Optional[int] = None,
    engine: str = "horizon",
    config: Optional[ControllerConfig] = None,
) -> ExperimentResult:
    """Compare fair-share and weighted-fair-share squishing."""
    result = ExperimentResult(
        experiment_id="ablation_squish",
        title="Overload squishing: fair share vs. weighted fair share",
    )
    kernels: list = []
    for policy_name in ("fair", "weighted"):
        result.metrics.update(
            _run_with_policy(
                policy_name, importances, sim_seconds, config, seed,
                engine, kernels,
            )
        )

    # Convenience ratios used by the benchmarks.
    base = importances[0]
    top = importances[-1]
    fair_base = result.metrics[f"fair_share_i{base:g}"]
    fair_top = result.metrics[f"fair_share_i{top:g}"]
    weighted_base = result.metrics[f"weighted_share_i{base:g}"]
    weighted_top = result.metrics[f"weighted_share_i{top:g}"]
    result.metrics["fair_top_to_base_ratio"] = (
        fair_top / fair_base if fair_base > 0 else float("inf")
    )
    result.metrics["weighted_top_to_base_ratio"] = (
        weighted_top / weighted_base if weighted_base > 0 else float("inf")
    )
    result.metrics["importance_ratio"] = top / base
    stamp_reproducibility(result, *kernels, seed=seed)
    result.notes.append(
        "under plain fair share equally-greedy hogs end up with equal shares "
        "regardless of importance; under weighted fair share the shares "
        "follow the importance ratio, but the least important hog still gets "
        "a non-zero share (no starvation)."
    )
    return result


def run_ablation_squish(
    importances: Sequence[float] = DEFAULT_IMPORTANCES,
    *,
    sim_seconds: float = 8.0,
    config: Optional[ControllerConfig] = None,
    seed: Optional[int] = None,
) -> ExperimentResult:
    """Back-compat wrapper around the registered ``ablation_squish``
    experiment."""
    return ablation_squish_experiment(
        importances=importances,
        sim_seconds=sim_seconds,
        seed=seed,
        config=config,
    )


__all__ = [
    "DEFAULT_IMPORTANCES",
    "ablation_squish_experiment",
    "run_ablation_squish",
]
