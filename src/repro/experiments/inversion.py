"""Extension experiment — priority inversion and starvation.

Section 2 motivates the work with the Mars Pathfinder priority-
inversion failure; Section 4.4 claims that under real-rate scheduling
"starvation, and thus priority inversion, cannot occur" because every
thread keeps a non-zero allocation, so a mutex holder always eventually
runs and releases the lock.

This experiment runs the same three-priority mutex-sharing task set
under three schedulers:

1. fixed priorities without priority inheritance (the Pathfinder
   failure mode: the high task's blocking time is unbounded),
2. fixed priorities with priority inheritance (the deployed fix), and
3. the paper's feedback-driven proportion allocator.

It reports each configuration's worst observed latency for the
high-priority task and its deadline-miss rate.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.results import ExperimentResult
from repro.core.config import ControllerConfig
from repro.experiments.params import ENGINE_PARAM, stamp_reproducibility
from repro.experiments.registry import Param, experiment
from repro.sched.priority import FixedPriorityScheduler
from repro.sim.clock import seconds
from repro.sim.kernel import Kernel
from repro.system import build_real_rate_system
from repro.workloads.inversion import InversionScenario


def _run_priority(
    sim_seconds: float, inheritance: bool, engine: str
) -> tuple[InversionScenario, Kernel]:
    scheduler = FixedPriorityScheduler(priority_inheritance=inheritance)
    kernel = Kernel(
        scheduler,
        charge_dispatch_overhead=False,
        record_dispatches=True,
        engine=engine,
    )
    scenario = InversionScenario().attach_priority(kernel)
    kernel.run_for(seconds(sim_seconds))
    return scenario, kernel


def _run_real_rate(
    sim_seconds: float, config: Optional[ControllerConfig], engine: str
) -> tuple[InversionScenario, Kernel]:
    system = build_real_rate_system(
        config, record_dispatches=True, engine=engine
    )
    scenario = InversionScenario().attach_real_rate(system)
    system.run_for(seconds(sim_seconds))
    return scenario, system.kernel


@experiment(
    name="inversion",
    description="Priority inversion: fixed priorities vs. real-rate scheduling",
    tags=("extension", "inversion"),
    params=(
        Param("sim_seconds", kind="float", default=10.0, minimum=0.5,
              help="virtual seconds simulated per scheduler"),
        Param("seed", kind="int", default=None, help="RNG seed (recorded; "
              "the inversion scenario is fully deterministic)"),
        ENGINE_PARAM,
    ),
    quick={"sim_seconds": 4.0},
)
def inversion_experiment(
    *,
    sim_seconds: float = 10.0,
    seed: Optional[int] = None,
    engine: str = "horizon",
    config: Optional[ControllerConfig] = None,
) -> ExperimentResult:
    """Compare the inversion scenario across the three schedulers."""
    no_pi, kernel_a = _run_priority(sim_seconds, inheritance=False, engine=engine)
    with_pi, kernel_b = _run_priority(sim_seconds, inheritance=True, engine=engine)
    real_rate, kernel_c = _run_real_rate(sim_seconds, config, engine)
    now_a, now_b, now_c = kernel_a.now, kernel_b.now, kernel_c.now

    result = ExperimentResult(
        experiment_id="inversion",
        title="Priority inversion: fixed priorities vs. real-rate scheduling",
        metrics={
            "fixed_priority_worst_latency_s": no_pi.effective_worst_latency_us(now_a)
            / 1e6,
            "fixed_priority_iterations": float(no_pi.result.iterations),
            "fixed_priority_miss_rate": no_pi.result.miss_rate,
            "priority_inheritance_worst_latency_s": with_pi.effective_worst_latency_us(
                now_b
            )
            / 1e6,
            "priority_inheritance_iterations": float(with_pi.result.iterations),
            "priority_inheritance_miss_rate": with_pi.result.miss_rate,
            "real_rate_worst_latency_s": real_rate.effective_worst_latency_us(now_c)
            / 1e6,
            "real_rate_iterations": float(real_rate.result.iterations),
            "real_rate_miss_rate": real_rate.result.miss_rate,
            "deadline_s": no_pi.high_period_us / 1e6,
        },
    )
    result.notes.append(
        "under plain fixed priorities the high task's in-flight iteration "
        "never completes once the inversion occurs, so its worst latency is "
        "essentially the remaining experiment duration; inheritance bounds it "
        "by the low task's critical section; real-rate scheduling bounds it "
        "without any mutex-specific mechanism because the low task is never "
        "starved."
    )
    stamp_reproducibility(result, kernel_a, kernel_b, kernel_c, seed=seed)
    return result


def run_inversion_comparison(
    *,
    sim_seconds: float = 10.0,
    config: Optional[ControllerConfig] = None,
    seed: Optional[int] = None,
) -> ExperimentResult:
    """Back-compat wrapper around the registered ``inversion`` experiment."""
    return inversion_experiment(
        sim_seconds=sim_seconds, seed=seed, config=config
    )


__all__ = ["inversion_experiment", "run_inversion_comparison"]
