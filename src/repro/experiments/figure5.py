"""Figure 5 — overhead of the controller vs. number of controlled processes.

"This figure shows the overhead of our user-level controller.  Our
experimental results are linear, y = .00066x + .00057, with a
coefficient of determination of .999. […] For 40 jobs (x = 40), the
overhead is 2.7% of CPU capacity."

The reproduction runs the controller at the paper's 10 ms period over a
population of dummy controlled processes that consume no CPU but are
scheduled, monitored and controlled, sweeping the population size.  Two
overhead figures are produced for each point:

* the **modelled** overhead — the calibrated linear cost model charged
  to the simulation (this is what the rest of the experiments see), and
* the **measured** overhead — the real wall-clock cost of the Python
  controller's update, per invocation, which demonstrates that the
  implementation itself scales linearly in the number of controlled
  threads even though its absolute cost differs from the 1998 C
  prototype.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.regression import linear_fit
from repro.analysis.results import ExperimentResult
from repro.core.config import ControllerConfig
from repro.core.taxonomy import ThreadSpec
from repro.experiments.params import ENGINE_PARAM, stamp_reproducibility
from repro.experiments.registry import Param, experiment
from repro.sim.clock import seconds
from repro.sim.requests import Sleep
from repro.system import build_real_rate_system

#: Paper-reported values for comparison in EXPERIMENTS.md.
PAPER_SLOPE = 0.00066
PAPER_INTERCEPT = 0.00057
PAPER_R_SQUARED = 0.999
PAPER_OVERHEAD_AT_40 = 0.027

#: Default population sweep (the paper's x axis runs 0–40 jobs).
DEFAULT_PROCESS_COUNTS = (0, 5, 10, 15, 20, 25, 30, 35, 40)


def _dummy_body(env):
    """A controlled process that consumes (almost) no CPU.

    The paper's dummies "consume no CPU but are scheduled, monitored,
    and controlled"; sleeping in long stretches reproduces that.
    """
    while True:
        yield Sleep(1_000_000)


@experiment(
    name="figure5",
    description="Controller overhead vs. number of controlled processes",
    tags=("figure", "overhead"),
    params=(
        Param(
            "process_counts", kind="int_list", default=DEFAULT_PROCESS_COUNTS,
            minimum=0, help="population sizes swept",
        ),
        Param(
            "controller_period_us", kind="int", default=10_000, minimum=1_000,
            help="controller invocation period",
        ),
        Param(
            "sim_seconds", kind="float", default=2.0, minimum=0.05,
            help="virtual seconds simulated per point",
        ),
        Param("seed", kind="int", default=None, help="RNG seed (recorded; "
              "this driver's dummy population is fully deterministic)"),
        ENGINE_PARAM,
    ),
    quick={"process_counts": (0, 10, 20, 30), "sim_seconds": 0.5},
)
def figure5_experiment(
    *,
    process_counts: Sequence[int] = DEFAULT_PROCESS_COUNTS,
    controller_period_us: int = 10_000,
    sim_seconds: float = 2.0,
    seed: Optional[int] = None,
    engine: str = "horizon",
    config: Optional[ControllerConfig] = None,
) -> ExperimentResult:
    """Reproduce Figure 5: controller overhead vs. controlled processes."""
    counts: list[float] = []
    modeled_overheads: list[float] = []
    measured_wall_us: list[float] = []
    kernels = []

    for count in process_counts:
        cfg = config if config is not None else ControllerConfig(
            controller_period_us=controller_period_us
        )
        system = build_real_rate_system(
            cfg,
            charge_dispatch_overhead=False,
            record_dispatches=True,
            engine=engine,
        )
        kernels.append(system.kernel)
        for index in range(count):
            system.spawn_controlled(
                f"dummy{index}", _dummy_body, spec=ThreadSpec()
            )
        system.run_for(seconds(sim_seconds))
        counts.append(float(count))
        modeled_overheads.append(system.driver.modeled_overhead_fraction())
        measured_wall_us.append(system.driver.measured_wall_us_per_invocation())

    modeled_fit = linear_fit(counts, modeled_overheads)
    measured_fit = linear_fit(counts, measured_wall_us)

    result = ExperimentResult(
        experiment_id="figure5",
        title="Controller overhead vs. number of controlled processes",
        metrics={
            "slope_overhead_per_process": modeled_fit.slope,
            "intercept_overhead": modeled_fit.intercept,
            "r_squared": modeled_fit.r_squared,
            "overhead_at_40_processes": modeled_fit.predict(40.0),
            "measured_wall_us_slope_per_process": measured_fit.slope,
            "measured_wall_r_squared": measured_fit.r_squared,
        },
        paper_values={
            "slope_overhead_per_process": PAPER_SLOPE,
            "intercept_overhead": PAPER_INTERCEPT,
            "r_squared": PAPER_R_SQUARED,
            "overhead_at_40_processes": PAPER_OVERHEAD_AT_40,
        },
    )
    result.add_series("modeled_overhead_vs_processes", counts, modeled_overheads)
    result.add_series("measured_wall_us_vs_processes", counts, measured_wall_us)
    stamp_reproducibility(result, *kernels, seed=seed)
    result.notes.append(
        "modeled overhead uses the per-process/fixed cost calibrated from the "
        "paper (6.6 us + 5.7 us at a 10 ms period); the measured series is the "
        "wall-clock cost of this Python implementation and demonstrates the "
        "same linearity with a different constant."
    )
    return result


def run_figure5(
    process_counts: Sequence[int] = DEFAULT_PROCESS_COUNTS,
    *,
    controller_period_us: int = 10_000,
    sim_seconds: float = 2.0,
    config: Optional[ControllerConfig] = None,
    seed: Optional[int] = None,
) -> ExperimentResult:
    """Back-compat wrapper; the canonical entry is the registered
    ``figure5`` experiment (see :mod:`repro.experiments.registry`)."""
    return figure5_experiment(
        process_counts=process_counts,
        controller_period_us=controller_period_us,
        sim_seconds=sim_seconds,
        seed=seed,
        config=config,
    )


__all__ = [
    "DEFAULT_PROCESS_COUNTS",
    "PAPER_INTERCEPT",
    "PAPER_OVERHEAD_AT_40",
    "PAPER_SLOPE",
    "figure5_experiment",
    "run_figure5",
]
