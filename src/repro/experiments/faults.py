"""Robustness experiments: fault injection and graceful degradation.

Three registered scenarios exercise the :mod:`repro.faults` subsystem
end to end:

* ``cpu_failover`` — a reserved workload loses a CPU mid-run.  The
  kernel drains the failed CPU through the epoch contract and the
  :class:`~repro.faults.degradation.DegradationManager` squishes (and,
  when oversubscribed enough, sheds/revokes) to fit the surviving
  capacity, then re-admits with backoff after recovery.
* ``runaway_quarantine`` — one thread of a reserved pool turns into a
  compute loop.  Run twice, with and without the
  :class:`~repro.monitor.watchdog.Watchdog`, to measure what quarantine
  buys the well-behaved threads.
* ``sensor_dropout`` — the controller flies blind: the multimedia
  pipeline's decoder loses its progress sensor for a window (and gets a
  corrupted one for another).  Run against a clean twin to measure the
  damage and the recovery.

All faults actuate through the event calendar, so each experiment's
dispatch fingerprint is bit-identical across ``engine="quantum"`` and
``engine="horizon"`` — the chaos-smoke CI job asserts exactly that.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.results import ExperimentResult
from repro.experiments.params import ENGINE_PARAM, stamp_reproducibility
from repro.experiments.registry import Param, experiment
from repro.faults.degradation import DegradationManager
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    CPU_FAIL,
    RUNAWAY_START,
    SENSOR_CORRUPT,
    SENSOR_DROPOUT,
    FaultEvent,
    FaultPlan,
)
from repro.monitor.watchdog import Watchdog
from repro.sched.rbs import ReservationScheduler
from repro.sim.kernel import Kernel
from repro.sim.requests import Compute, Sleep
from repro.sim.thread import SimThread, ThreadEnv
from repro.system import build_real_rate_system
from repro.workloads.pipeline import MultimediaPipeline


def _paced_worker(compute_us: int, sleep_us: int):
    """A periodic thread: compute, then honour its think time, forever."""

    def body(env: ThreadEnv):
        while True:
            yield Compute(compute_us)
            yield Sleep(sleep_us)

    return body


def _conservation_ok(kernel: Kernel) -> bool:
    """The extended conservation identity, including offline time."""
    total = sum(t.accounting.total_us for t in kernel.threads)
    return (
        total + kernel.idle_us + kernel.stolen_us + kernel.offline_us
        == kernel.n_cpus * kernel.now
    )


# ---------------------------------------------------------------------------
# cpu_failover
# ---------------------------------------------------------------------------
@experiment(
    name="cpu_failover",
    description="CPU failure mid-run: drain, degrade gracefully, re-admit on recovery",
    tags=("faults", "robustness", "smp"),
    params=(
        Param("n_cpus", kind="int", default=4, minimum=2, maximum=64),
        Param("fail_cpu", kind="int", default=1, minimum=0,
              help="CPU index taken offline (one thread is pinned to it)"),
        Param("fail_at_s", kind="float", default=0.25, minimum=0.0),
        Param("outage_s", kind="float", default=0.35, minimum=0.01,
              help="how long the CPU stays down"),
        Param("n_reserved", kind="int", default=6, minimum=1),
        Param("rt_ppt", kind="int", default=550, minimum=1, maximum=1000,
              help="per-thread reservation (sized to oversubscribe on failure)"),
        Param("n_best_effort", kind="int", default=2, minimum=0),
        Param("duration_s", kind="float", default=1.0, minimum=0.05),
        Param("seed", kind="int", default=17),
        ENGINE_PARAM,
    ),
    quick={"duration_s": 0.4, "fail_at_s": 0.1, "outage_s": 0.15},
)
def cpu_failover_experiment(
    *,
    n_cpus: int = 4,
    fail_cpu: int = 1,
    fail_at_s: float = 0.25,
    outage_s: float = 0.35,
    n_reserved: int = 6,
    rt_ppt: int = 550,
    n_best_effort: int = 2,
    duration_s: float = 1.0,
    seed: Optional[int] = 17,
    engine: str = "horizon",
) -> ExperimentResult:
    """Does the system degrade gracefully when a CPU dies under load?

    Six 550 ppt reservations on four CPUs total 3300 ppt; losing a CPU
    leaves 3000 ppt of capacity, so the default configuration squishes
    every reservation by roughly a tenth.  Crank ``rt_ppt`` or ``n_reserved`` to push the degradation
    chain into shedding and revocation.  A thread pinned to the failed
    CPU exercises the drain/re-pin path.
    """
    fail_cpu = min(fail_cpu, n_cpus - 1)
    scheduler = ReservationScheduler()
    kernel = Kernel(
        scheduler, n_cpus=n_cpus, engine=engine, record_dispatches=True
    )
    reserved: list[SimThread] = []
    for index in range(n_reserved):
        thread = kernel.spawn(
            f"rt{index}", _paced_worker(compute_us=2_000, sleep_us=3_000)
        )
        scheduler.set_reservation(thread, rt_ppt, 10_000)
        reserved.append(thread)
    # One reserved thread rides the doomed CPU so the drain has work to move.
    reserved[0].pin_to(fail_cpu)
    for index in range(n_best_effort):
        kernel.spawn(f"be{index}", _paced_worker(compute_us=1_500, sleep_us=500))

    manager = DegradationManager(kernel, scheduler)
    fail_at = int(fail_at_s * 1_000_000)
    plan = FaultPlan(
        events=(
            FaultEvent(
                at_us=fail_at,
                kind=CPU_FAIL,
                cpu=fail_cpu,
                duration_us=int(outage_s * 1_000_000),
            ),
        ),
        seed=seed or 0,
    )
    injector = FaultInjector(kernel, plan)
    injector.install()
    kernel.run_until(int(duration_s * 1_000_000))

    by_action: dict[str, int] = {}
    for action in manager.actions:
        by_action[action.action] = by_action.get(action.action, 0) + 1

    result = ExperimentResult(
        experiment_id="cpu_failover",
        title="Graceful degradation across a CPU failure and recovery",
    )
    result.metrics["offline_ms"] = kernel.offline_us / 1_000.0
    result.metrics["squishes"] = float(by_action.get("squish", 0))
    result.metrics["sheds"] = float(by_action.get("shed", 0))
    result.metrics["revocations"] = float(by_action.get("revoke", 0))
    result.metrics["restorations"] = float(
        by_action.get("restore", 0) + by_action.get("readmit", 0)
    )
    result.metrics["pending_restorations"] = float(manager.pending_restorations())
    result.metrics["deadline_misses"] = float(scheduler.deadline_misses())
    result.metrics["drained_threads"] = float(
        sum(1 for r in injector.log if r.kind == CPU_FAIL and r.hit)
    )
    result.metrics["conservation_ok"] = float(_conservation_ok(kernel))
    result.metrics["final_reserved_ppt"] = float(scheduler.total_reserved_ppt())
    result.metrics["pinned_back"] = float(reserved[0].affinity == fail_cpu)
    result.metadata["fault_plan"] = plan.to_dict()
    result.metadata["injections"] = [
        {"at_us": r.at_us, "kind": r.kind, "detail": r.detail, "hit": r.hit}
        for r in injector.log
    ]
    result.metadata["degradation_actions"] = [
        {
            "at_us": a.at_us,
            "action": a.action,
            "thread": a.thread,
            "before_ppt": a.before_ppt,
            "after_ppt": a.after_ppt,
        }
        for a in manager.actions
    ]
    stamp_reproducibility(result, kernel, seed=seed)
    result.notes.append(
        "degradation chain: squish-first (fair-share scale to the surviving "
        "capacity), then shed best-effort, then revoke lowest-value "
        "reservations; re-admission after recovery backs off exponentially."
    )
    return result


# ---------------------------------------------------------------------------
# runaway_quarantine
# ---------------------------------------------------------------------------
def _run_runaway_pass(
    *,
    with_watchdog: bool,
    n_cpus: int,
    n_reserved: int,
    rt_ppt: int,
    runaway_at_us: int,
    runaway_for_us: int,
    duration_us: int,
    seed: int,
    engine: str,
) -> tuple[Kernel, ReservationScheduler, Optional[Watchdog], FaultInjector]:
    scheduler = ReservationScheduler()
    kernel = Kernel(
        scheduler, n_cpus=n_cpus, engine=engine, record_dispatches=True
    )
    for index in range(n_reserved):
        thread = kernel.spawn(
            f"rt{index}", _paced_worker(compute_us=2_000, sleep_us=8_000)
        )
        scheduler.set_reservation(thread, rt_ppt, 10_000)
    watchdog = Watchdog(kernel, scheduler) if with_watchdog else None
    plan = FaultPlan(
        events=(
            FaultEvent(
                at_us=runaway_at_us,
                kind=RUNAWAY_START,
                thread="rt1",
                duration_us=runaway_for_us,
            ),
        ),
        seed=seed,
    )
    injector = FaultInjector(kernel, plan)
    injector.install()
    kernel.run_until(duration_us)
    return kernel, scheduler, watchdog, injector


@experiment(
    name="runaway_quarantine",
    description="Watchdog quarantines a runaway reservation; innocents keep their deadlines",
    tags=("faults", "robustness", "watchdog"),
    params=(
        Param("n_cpus", kind="int", default=1, minimum=1, maximum=64),
        Param("n_reserved", kind="int", default=4, minimum=2),
        Param("rt_ppt", kind="int", default=220, minimum=1, maximum=1000),
        Param("runaway_at_s", kind="float", default=0.1, minimum=0.0),
        Param("runaway_for_s", kind="float", default=0.4, minimum=0.01),
        Param("duration_s", kind="float", default=0.8, minimum=0.05),
        Param("seed", kind="int", default=23),
        ENGINE_PARAM,
    ),
    quick={"duration_s": 0.5, "runaway_for_s": 0.25},
)
def runaway_quarantine_experiment(
    *,
    n_cpus: int = 1,
    n_reserved: int = 4,
    rt_ppt: int = 220,
    runaway_at_s: float = 0.1,
    runaway_for_s: float = 0.4,
    duration_s: float = 0.8,
    seed: Optional[int] = 23,
    engine: str = "horizon",
) -> ExperimentResult:
    """What does quarantine buy the well-behaved reservations?

    The runaway thread stops honouring its think time at
    ``runaway_at_s`` and pounds the CPU for ``runaway_for_s``.  Without
    the watchdog it keeps its reservation (and its deadline-miss streak
    displaces nobody — but its demand spills into the best-effort time
    the other threads rely on for overage).  With the watchdog it is
    demoted to best-effort after a few detection windows and
    re-promoted, with backoff, once its term is served.
    """
    kwargs = dict(
        n_cpus=n_cpus,
        n_reserved=n_reserved,
        rt_ppt=rt_ppt,
        runaway_at_us=int(runaway_at_s * 1_000_000),
        runaway_for_us=int(runaway_for_s * 1_000_000),
        duration_us=int(duration_s * 1_000_000),
        seed=seed or 0,
        engine=engine,
    )
    kernel_on, sched_on, watchdog, _ = _run_runaway_pass(
        with_watchdog=True, **kwargs
    )
    kernel_off, sched_off, _, _ = _run_runaway_pass(
        with_watchdog=False, **kwargs
    )
    assert watchdog is not None

    def victim_cpu(kernel: Kernel) -> int:
        return next(
            t.accounting.total_us for t in kernel.threads if t.name == "rt1"
        )

    result = ExperimentResult(
        experiment_id="runaway_quarantine",
        title="Runaway reservation vs the watchdog's quarantine loop",
    )
    result.metrics["quarantines"] = float(watchdog.quarantine_count())
    if watchdog.history:
        first = watchdog.history[0]
        result.metrics["detection_latency_ms"] = (
            first.quarantined_at_us - kwargs["runaway_at_us"]
        ) / 1_000.0
        result.metrics["repromoted"] = float(
            sum(1 for r in watchdog.history if r.repromoted)
        )
    result.metrics["victim_cpu_ms_watchdog"] = victim_cpu(kernel_on) / 1_000.0
    result.metrics["victim_cpu_ms_unprotected"] = victim_cpu(kernel_off) / 1_000.0
    result.metrics["misses_watchdog"] = float(sched_on.deadline_misses())
    result.metrics["misses_unprotected"] = float(sched_off.deadline_misses())
    result.metrics["conservation_ok"] = float(
        _conservation_ok(kernel_on) and _conservation_ok(kernel_off)
    )
    result.metadata["quarantines"] = [
        {
            "thread": r.name,
            "verdict": r.verdict,
            "quarantined_at_us": r.quarantined_at_us,
            "release_at_us": r.release_at_us,
            "offense": r.offense,
            "repromoted": r.repromoted,
        }
        for r in watchdog.history
    ]
    stamp_reproducibility(result, kernel_on, kernel_off, seed=seed)
    result.notes.append(
        "runaway detection: deadline-miss streaks with zero voluntary "
        "blocking; quarantine demotes to best-effort and re-promotes after "
        "a per-offense doubling backoff."
    )
    return result


# ---------------------------------------------------------------------------
# sensor_dropout
# ---------------------------------------------------------------------------
def _run_pipeline_pass(
    *,
    faulted: bool,
    dropout_at_us: int,
    dropout_for_us: int,
    corrupt_at_us: int,
    corrupt_for_us: int,
    corrupt_magnitude: float,
    duration_us: int,
    seed: int,
    engine: str,
):
    system = build_real_rate_system(engine=engine, record_dispatches=True)
    pipeline = MultimediaPipeline.attach(system)
    injector = None
    if faulted:
        plan = FaultPlan(
            events=(
                FaultEvent(
                    at_us=dropout_at_us,
                    kind=SENSOR_DROPOUT,
                    thread="pipeline.decode",
                    duration_us=dropout_for_us,
                ),
                FaultEvent(
                    at_us=corrupt_at_us,
                    kind=SENSOR_CORRUPT,
                    thread="pipeline.decode",
                    duration_us=corrupt_for_us,
                    magnitude=corrupt_magnitude,
                ),
            ),
            seed=seed,
        )
        injector = FaultInjector(system.kernel, plan, allocator=system.allocator)
        injector.install()
    system.run_for(duration_us)
    return system, pipeline, injector


@experiment(
    name="sensor_dropout",
    description="Controller sensor faults: progress-sample dropout and corruption windows",
    tags=("faults", "robustness", "controller"),
    params=(
        Param("dropout_at_s", kind="float", default=0.3, minimum=0.0),
        Param("dropout_for_s", kind="float", default=0.3, minimum=0.01),
        Param("corrupt_at_s", kind="float", default=0.9, minimum=0.0),
        Param("corrupt_for_s", kind="float", default=0.3, minimum=0.01),
        Param("corrupt_magnitude", kind="float", default=1.5, minimum=0.0,
              help="uniform noise amplitude added to the raw pressure signal"),
        Param("duration_s", kind="float", default=1.5, minimum=0.05),
        Param("seed", kind="int", default=31),
        ENGINE_PARAM,
    ),
    quick={
        "duration_s": 0.6,
        "dropout_at_s": 0.1,
        "dropout_for_s": 0.15,
        "corrupt_at_s": 0.35,
        "corrupt_for_s": 0.15,
    },
)
def sensor_dropout_experiment(
    *,
    dropout_at_s: float = 0.3,
    dropout_for_s: float = 0.3,
    corrupt_at_s: float = 0.9,
    corrupt_for_s: float = 0.3,
    corrupt_magnitude: float = 1.5,
    duration_s: float = 1.5,
    seed: Optional[int] = 31,
    engine: str = "horizon",
) -> ExperimentResult:
    """How much does the pipeline lose when the decoder's sensor lies?

    During dropout the decoder reads as a metric-less thread (zero
    pressure), so the controller stops feeding the pipeline's hungriest
    stage and the downstream queue drains; during corruption the PID
    chases seeded noise.  The clean twin runs the identical pipeline
    with no injector, so the frame deficit and the allocation wobble
    are directly attributable to the sensor faults.
    """
    kwargs = dict(
        dropout_at_us=int(dropout_at_s * 1_000_000),
        dropout_for_us=int(dropout_for_s * 1_000_000),
        corrupt_at_us=int(corrupt_at_s * 1_000_000),
        corrupt_for_us=int(corrupt_for_s * 1_000_000),
        corrupt_magnitude=corrupt_magnitude,
        duration_us=int(duration_s * 1_000_000),
        seed=seed or 0,
        engine=engine,
    )
    clean_system, clean_pipeline, _ = _run_pipeline_pass(faulted=False, **kwargs)
    hurt_system, hurt_pipeline, injector = _run_pipeline_pass(
        faulted=True, **kwargs
    )
    assert injector is not None

    result = ExperimentResult(
        experiment_id="sensor_dropout",
        title="Progress-sensor dropout and corruption on the multimedia pipeline",
    )
    result.metrics["frames_clean"] = float(clean_pipeline.frames_delivered)
    result.metrics["frames_faulted"] = float(hurt_pipeline.frames_delivered)
    result.metrics["frame_deficit"] = float(
        clean_pipeline.frames_delivered - hurt_pipeline.frames_delivered
    )
    result.metrics["injections_hit"] = float(injector.hits())
    result.metrics["quality_exceptions_clean"] = float(
        len(clean_system.allocator.quality_exceptions)
    )
    result.metrics["quality_exceptions_faulted"] = float(
        len(hurt_system.allocator.quality_exceptions)
    )
    result.metrics["misses_clean"] = float(clean_system.scheduler.deadline_misses())
    result.metrics["misses_faulted"] = float(hurt_system.scheduler.deadline_misses())
    result.metrics["conservation_ok"] = float(
        _conservation_ok(clean_system.kernel) and _conservation_ok(hurt_system.kernel)
    )
    result.metadata["injections"] = [
        {"at_us": r.at_us, "kind": r.kind, "detail": r.detail, "hit": r.hit}
        for r in injector.log
    ]
    result.metadata["decode_share_clean"] = clean_pipeline.cpu_shares()[
        "pipeline.decode"
    ]
    result.metadata["decode_share_faulted"] = hurt_pipeline.cpu_shares()[
        "pipeline.decode"
    ]
    stamp_reproducibility(
        result, clean_system.kernel, hurt_system.kernel, seed=seed
    )
    result.notes.append(
        "dropout makes the decoder read as metric-less (zero pressure); "
        "corruption adds seeded uniform noise to the raw R*F signal the PID "
        "consumes; both windows restore the original sampler on expiry."
    )
    return result


__all__ = [
    "cpu_failover_experiment",
    "runaway_quarantine_experiment",
    "sensor_dropout_experiment",
]
