"""Shared parameter declarations and reproducibility stamps.

Every registered experiment must expose the two reproducibility knobs
(``engine`` — which kernel time-advancement engine to run — and
``seed``) and stamp the dispatch fingerprint of every kernel it built
into its result metadata, so any run can be diffed bit-for-bit against
any other (the experiment-registry lint check enforces all three).
Declaring the parameters once keeps their help text, bounds and
defaults identical across the registry.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.experiments.registry import Param
from repro.workloads.engine import dispatch_fingerprint

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.results import ExperimentResult
    from repro.sim.kernel import Kernel

#: Which kernel time-advancement engine to run.  The quantum-sliced
#: oracle is exposed so conformance tests (and curious users) can diff
#: the two engines' dispatch logs.
ENGINE_PARAM = Param(
    "engine", kind="str", default="horizon", choices=("horizon", "quantum"),
    help="kernel time-advancement engine (quantum = differential oracle)",
)

#: Deterministic-replay seed.  Experiments whose drivers draw no random
#: numbers still expose it (recorded in metadata) so every registry
#: entry is invoked the same way.
SEED_PARAM = Param(
    "seed", kind="int", default=None,
    help="RNG seed (recorded in metadata; deterministic drivers ignore it)",
)


def stamp_reproducibility(
    result: "ExperimentResult",
    *kernels: "Kernel",
    seed: Optional[int] = None,
) -> None:
    """Stamp engine + dispatch fingerprint(s) into ``result.metadata``.

    Multi-point experiments pass every kernel they built (in sweep
    order); the fingerprints are joined with ``"+"`` into one composite
    identity, the same convention the response-curve and SLO
    experiments established.  Kernels must have been built with
    ``record_dispatches=True``.
    """
    if not kernels:
        raise ValueError("stamp_reproducibility needs at least one kernel")
    result.metadata["engine"] = kernels[0].engine
    result.metadata["dispatch_fingerprint"] = "+".join(
        dispatch_fingerprint(kernel) for kernel in kernels
    )
    result.metadata["seed"] = seed


__all__ = ["ENGINE_PARAM", "SEED_PARAM", "stamp_reproducibility"]
