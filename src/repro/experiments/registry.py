"""Declarative experiment registry.

Experiments declare themselves once with the :func:`experiment`
decorator::

    @experiment(
        name="figure8",
        description="Dispatch overhead vs. dispatcher frequency",
        tags=("figure", "overhead"),
        params=(
            Param("sim_seconds", kind="float", default=2.0, minimum=0.05),
            Param("seed", kind="int", default=None),
        ),
        quick={"sim_seconds": 0.4},
    )
    def figure8_experiment(*, sim_seconds=2.0, seed=None):
        ...

The decorator builds an :class:`ExperimentSpec` — name, description,
tags, a typed parameter schema with defaults/bounds and quick-mode
overrides — and registers it in the module-level :data:`REGISTRY`.
Everything downstream (the ``python -m repro`` CLI, the sweep runner,
the benchmarks and the figure-reproduction example) enumerates and runs
experiments through the registry instead of importing ``run_*``
functions by hand; the historical ``run_*`` entry points remain as thin
back-compat wrappers around the registered functions.

Parameter values arriving from the command line are strings; each
:class:`Param` knows how to parse its ``kind`` (``int``, ``float``,
``bool``, ``str`` and their ``*_list`` forms) and to validate bounds
and choices, so a spec can be driven identically from Python and from
``--param name=value`` flags.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Optional, Sequence

from repro.analysis.results import ExperimentResult

#: Parameter kinds understood by :meth:`Param.parse`.
SCALAR_KINDS = ("int", "float", "bool", "str")
LIST_KINDS = ("int_list", "float_list", "str_list")


class RegistryError(Exception):
    """Base class for experiment-registry failures."""


class DuplicateExperimentError(RegistryError):
    """Two experiments tried to register under the same name."""


class UnknownExperimentError(RegistryError, KeyError):
    """Lookup of a name no experiment registered."""


class ParameterError(RegistryError, ValueError):
    """A parameter value failed parsing or validation."""


_BOOL_WORDS = {
    "1": True, "true": True, "yes": True, "on": True,
    "0": False, "false": False, "no": False, "off": False,
}

_SCALAR_PARSERS: dict[str, Callable[[str], Any]] = {
    "int": lambda text: int(text, 0),
    "float": float,
    "str": str,
}

_SCALAR_TYPES: dict[str, tuple[type, ...]] = {
    "int": (int,),
    "float": (int, float),
    "bool": (bool,),
    "str": (str,),
}


@dataclass(frozen=True)
class Param:
    """One typed parameter of an experiment.

    ``kind`` names the value type; ``*_list`` kinds accept tuples of
    the element type.  ``minimum``/``maximum`` bound scalars and every
    element of a list; ``choices`` restricts to an explicit set.  A
    ``default`` of ``None`` means "not set" and skips validation.
    """

    name: str
    kind: str = "float"
    default: Any = None
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    choices: Optional[tuple[Any, ...]] = None
    help: str = ""

    def __post_init__(self) -> None:
        if self.kind not in SCALAR_KINDS + LIST_KINDS:
            raise ValueError(
                f"parameter {self.name!r}: unknown kind {self.kind!r}; "
                f"expected one of {SCALAR_KINDS + LIST_KINDS}"
            )

    # ------------------------------------------------------------------
    @property
    def element_kind(self) -> str:
        """The scalar kind of this parameter's values/elements."""
        return self.kind.removesuffix("_list")

    def _parse_scalar(self, text: str) -> Any:
        text = text.strip()
        if self.element_kind == "bool":
            try:
                return _BOOL_WORDS[text.lower()]
            except KeyError:
                raise ParameterError(
                    f"parameter {self.name!r}: {text!r} is not a boolean "
                    f"(use true/false)"
                ) from None
        try:
            return _SCALAR_PARSERS[self.element_kind](text)
        except ValueError:
            raise ParameterError(
                f"parameter {self.name!r}: {text!r} is not a valid "
                f"{self.element_kind}"
            ) from None

    def _coerce_element(self, element: Any) -> Any:
        """One value of this parameter's element kind, from a string or
        an already-typed value (with a clean error on a type mismatch)."""
        if isinstance(element, str):
            return self._parse_scalar(element)
        is_bool = isinstance(element, bool)
        type_ok = isinstance(element, _SCALAR_TYPES[self.element_kind]) and (
            self.element_kind == "bool" or not is_bool
        )
        if not type_ok:
            raise ParameterError(
                f"parameter {self.name!r}: {element!r} is not a valid "
                f"{self.element_kind}"
            )
        if self.element_kind == "float":
            return float(element)
        return element

    def parse(self, raw: Any) -> Any:
        """Coerce ``raw`` (a CLI string or an already-typed value).

        List kinds accept ``","`` or ``":"`` as element separators so a
        list-valued point can be written inside a comma-separated sweep
        grid (``--param n_cpus=1:2:4,8``); a typed sequence is coerced
        element-wise, and a bare scalar becomes a one-element list.
        """
        if raw is None:
            value: Any = None
        elif self.kind in LIST_KINDS:
            if isinstance(raw, str):
                tokens = [t for t in raw.replace(":", ",").split(",") if t.strip()]
                value = tuple(self._coerce_element(t) for t in tokens)
            elif isinstance(raw, Sequence):
                value = tuple(self._coerce_element(e) for e in raw)
            else:
                value = (self._coerce_element(raw),)
        else:
            value = self._coerce_element(raw)
        self.validate(value)
        return value

    def validate(self, value: Any) -> None:
        """Check bounds/choices; raise :class:`ParameterError` on violation."""
        if value is None:
            return
        elements = value if self.kind in LIST_KINDS else (value,)
        if self.kind in LIST_KINDS and len(elements) == 0:
            raise ParameterError(f"parameter {self.name!r}: empty list")
        for element in elements:
            if self.choices is not None and element not in self.choices:
                raise ParameterError(
                    f"parameter {self.name!r}: {element!r} not in "
                    f"choices {self.choices}"
                )
            if self.minimum is not None and element < self.minimum:
                raise ParameterError(
                    f"parameter {self.name!r}: {element!r} below "
                    f"minimum {self.minimum}"
                )
            if self.maximum is not None and element > self.maximum:
                raise ParameterError(
                    f"parameter {self.name!r}: {element!r} above "
                    f"maximum {self.maximum}"
                )

    def describe(self) -> str:
        """One-line schema description for ``describe``/``--help`` output."""
        parts = [self.kind, f"default={self.default!r}"]
        if self.minimum is not None:
            parts.append(f"min={self.minimum}")
        if self.maximum is not None:
            parts.append(f"max={self.maximum}")
        if self.choices is not None:
            parts.append(f"choices={list(self.choices)}")
        text = f"{self.name} ({', '.join(parts)})"
        if self.help:
            text += f" — {self.help}"
        return text


def _jsonable(value: Any) -> Any:
    """Tuples become lists so parameter values survive a JSON round-trip."""
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    if isinstance(value, list):
        return [_jsonable(v) for v in value]
    return value


def point_key(params: Mapping[str, Any]) -> str:
    """Canonical identity of one grid point's parameter assignment.

    Sorted keys and compact separators make the key independent of
    axis declaration order and whitespace, and ``_jsonable`` folds
    tuples into lists so a point keyed before a JSON round-trip equals
    the same point keyed after one.  The orchestration journal uses
    this as the resume identity: a journaled key matches exactly the
    points whose parameters are identical.
    """
    return json.dumps(
        {name: _jsonable(value) for name, value in params.items()},
        sort_keys=True,
        separators=(",", ":"),
    )


@dataclass(frozen=True)
class ExperimentSpec:
    """A registered experiment: metadata, parameter schema, entry point."""

    name: str
    description: str
    func: Callable[..., ExperimentResult]
    params: tuple[Param, ...] = ()
    tags: tuple[str, ...] = ()
    quick: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        seen: set[str] = set()
        normalized: list[Param] = []
        for param in self.params:
            if param.name in seen:
                raise RegistryError(
                    f"experiment {self.name!r}: duplicate parameter "
                    f"{param.name!r}"
                )
            seen.add(param.name)
            # Defaults go through the same parse/validate path as user
            # values, so e.g. integer literals in a float_list default
            # normalise to floats and bad defaults fail at registration.
            default = param.parse(param.default)
            if default != param.default:
                param = dataclasses.replace(param, default=default)
            normalized.append(param)
        object.__setattr__(self, "params", tuple(normalized))
        quick: dict[str, Any] = {}
        for key, value in self.quick.items():
            if key not in seen:
                raise RegistryError(
                    f"experiment {self.name!r}: quick override for unknown "
                    f"parameter {key!r}"
                )
            quick[key] = self.param(key).parse(value)
        object.__setattr__(self, "quick", quick)

    # ------------------------------------------------------------------
    def param(self, name: str) -> Param:
        """Look up one parameter's schema by name."""
        for param in self.params:
            if param.name == name:
                return param
        raise ParameterError(
            f"experiment {self.name!r} has no parameter {name!r}; "
            f"available: {[p.name for p in self.params]}"
        )

    def defaults(self) -> dict[str, Any]:
        """The full default parameter assignment."""
        return {p.name: p.default for p in self.params}

    def coerce(self, overrides: Mapping[str, Any]) -> dict[str, Any]:
        """Parse and validate a partial assignment (CLI strings allowed)."""
        return {
            name: self.param(name).parse(raw) for name, raw in overrides.items()
        }

    def resolve(
        self,
        overrides: Optional[Mapping[str, Any]] = None,
        *,
        quick: bool = False,
    ) -> dict[str, Any]:
        """Defaults, overlaid with quick-mode values, overlaid with
        explicit overrides (which always win)."""
        values = self.defaults()
        if quick:
            values.update(self.quick)
        if overrides:
            values.update(self.coerce(overrides))
        return values

    def run(
        self,
        overrides: Optional[Mapping[str, Any]] = None,
        *,
        quick: bool = False,
    ) -> ExperimentResult:
        """Run the experiment with the resolved parameter assignment.

        The assignment (and quick-mode flag) is stamped into the
        result's ``metadata`` so every artifact records how it was
        produced.
        """
        values = self.resolve(overrides, quick=quick)
        result = self.func(**values)
        result.metadata.setdefault("experiment", self.name)
        result.metadata["params"] = {
            name: _jsonable(value) for name, value in values.items()
        }
        if quick:
            result.metadata["quick"] = True
        return result


class ExperimentRegistry:
    """Name → :class:`ExperimentSpec` mapping with duplicate detection."""

    def __init__(self) -> None:
        self._specs: dict[str, ExperimentSpec] = {}

    def register(self, spec: ExperimentSpec) -> ExperimentSpec:
        if spec.name in self._specs:
            raise DuplicateExperimentError(
                f"experiment {spec.name!r} is already registered "
                f"(by {self._specs[spec.name].func.__module__})"
            )
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> ExperimentSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise UnknownExperimentError(
                f"no experiment named {name!r}; known: {self.names()}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._specs)

    def specs(self) -> list[ExperimentSpec]:
        return [self._specs[name] for name in self.names()]

    def run(
        self,
        name: str,
        overrides: Optional[Mapping[str, Any]] = None,
        *,
        quick: bool = False,
    ) -> ExperimentResult:
        return self.get(name).run(overrides, quick=quick)

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[ExperimentSpec]:
        return iter(self.specs())

    def __len__(self) -> int:
        return len(self._specs)


#: The process-wide registry; populated by importing
#: :mod:`repro.experiments`.
REGISTRY = ExperimentRegistry()


def experiment(
    name: str,
    *,
    description: Optional[str] = None,
    params: Sequence[Param] = (),
    tags: Sequence[str] = (),
    quick: Optional[Mapping[str, Any]] = None,
    registry: Optional[ExperimentRegistry] = None,
) -> Callable[[Callable[..., ExperimentResult]], Callable[..., ExperimentResult]]:
    """Register the decorated function as an experiment.

    The function is returned unchanged (so it stays directly callable);
    its spec is attached as ``func.spec`` and recorded in ``registry``
    (default: the module-level :data:`REGISTRY`).  ``description``
    defaults to the first line of the function's docstring.
    """

    def decorate(func: Callable[..., ExperimentResult]) -> Callable[..., ExperimentResult]:
        desc = description
        if desc is None:
            doc = (func.__doc__ or "").strip()
            desc = doc.splitlines()[0] if doc else name
        spec = ExperimentSpec(
            name=name,
            description=desc,
            func=func,
            params=tuple(params),
            tags=tuple(tags),
            quick=dict(quick or {}),
        )
        (registry if registry is not None else REGISTRY).register(spec)
        func.spec = spec  # type: ignore[attr-defined]
        return func

    return decorate


__all__ = [
    "DuplicateExperimentError",
    "ExperimentRegistry",
    "ExperimentSpec",
    "Param",
    "ParameterError",
    "REGISTRY",
    "RegistryError",
    "UnknownExperimentError",
    "experiment",
    "point_key",
]
