"""Ablation — the period-estimation heuristic and dispatch quantisation.

Two related studies the paper gestures at but does not report:

1. **Period adaptation** (Section 3.3): for a real-rate thread whose
   proportion is small, the heuristic grows the period to reduce
   quantisation error; when fill-level oscillation is large relative to
   the buffer, it shrinks the period to reduce jitter.  The paper
   disables this mechanism in its experiments; here we enable it on a
   low-rate pipeline and report how the period moves.

2. **Enforcement granularity** (Section 4.3): the prototype can only
   enforce allocations in whole dispatch intervals, so threads overrun
   their reservations by up to one interval per period.  We measure the
   consumer's allocation overrun with the paper-faithful dispatcher and
   with the proposed microsecond-accurate enforcement.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.results import ExperimentResult
from repro.core.config import ControllerConfig
from repro.experiments.params import ENGINE_PARAM, stamp_reproducibility
from repro.experiments.registry import Param, experiment
from repro.sim.clock import seconds
from repro.system import build_real_rate_system
from repro.workloads.pulse import PulseParameters, PulsePipeline, PulseSchedule


def _low_rate_params() -> PulseParameters:
    """A pipeline whose consumer needs only a few percent of the CPU."""
    return PulseParameters(
        producer_proportion_ppt=50,
        producer_period_us=20_000,
        consumer_period_us=10_000,
        queue_capacity_bytes=3_000,
        base_rate_bytes_per_cpu_us=0.01,
    )


@experiment(
    name="ablation_period",
    description="Period adaptation and enforcement granularity",
    tags=("ablation", "period"),
    params=(
        Param("sim_seconds", kind="float", default=10.0, minimum=0.5,
              help="virtual seconds simulated per part"),
        Param("seed", kind="int", default=None, help="RNG seed (recorded; "
              "the low-rate pipeline is fully deterministic)"),
        ENGINE_PARAM,
    ),
    quick={"sim_seconds": 4.0},
)
def ablation_period_experiment(
    *,
    sim_seconds: float = 10.0,
    seed: Optional[int] = None,
    engine: str = "horizon",
    config: Optional[ControllerConfig] = None,
) -> ExperimentResult:
    """Exercise period adaptation and enforcement-granularity effects."""
    # --- Part 1: period adaptation on a low-rate consumer -------------
    adapt_config = ControllerConfig(adapt_period=True)
    system = build_real_rate_system(
        adapt_config, record_dispatches=True, engine=engine
    )
    kernels = [system.kernel]
    params = _low_rate_params()
    schedule = PulseSchedule([], default_rate=params.base_rate_bytes_per_cpu_us)
    # The consumer must not specify a period or the heuristic is bypassed.
    params.consumer_period_us = adapt_config.default_period_us
    pipeline = PulsePipeline.attach(system, schedule=schedule, params=params)
    # Remove the spec period by re-registering with a metric-only spec.
    system.allocator.unregister(pipeline.consumer)
    from repro.core.taxonomy import ThreadSpec  # local import to avoid cycle noise

    system.allocator.register(pipeline.consumer, ThreadSpec())
    system.run_for(seconds(sim_seconds))
    adapted_period_us = system.scheduler.reservation(pipeline.consumer).period_us
    consumer_ppt = system.allocator.current_allocation_ppt(pipeline.consumer)

    # --- Part 2: enforcement granularity -------------------------------
    overruns: dict[str, float] = {}
    for label, enforce in (("dispatch_granularity", False), ("exact", True)):
        sys2 = build_real_rate_system(
            config,
            enforce_within_slice=enforce,
            record_dispatches=True,
            engine=engine,
        )
        kernels.append(sys2.kernel)
        pipe2 = PulsePipeline.attach(
            sys2,
            schedule=PulseSchedule([], default_rate=0.01),
            params=PulseParameters(),
        )
        sys2.run_for(seconds(sim_seconds))
        elapsed = sys2.now
        allocated_ppt = sys2.allocator.current_allocation_ppt(pipe2.consumer)
        used_fraction = pipe2.consumer.accounting.total_us / elapsed
        # Average allocated fraction over the run is approximated by the
        # final value; the interesting quantity is used vs. allocated.
        overruns[label] = used_fraction - allocated_ppt / 1000

    result = ExperimentResult(
        experiment_id="ablation_period",
        title="Period adaptation and enforcement granularity",
        metrics={
            "adapted_period_us": float(adapted_period_us),
            "default_period_us": float(adapt_config.default_period_us),
            "low_rate_consumer_ppt": float(consumer_ppt),
            "overrun_dispatch_granularity": overruns["dispatch_granularity"],
            "overrun_exact_enforcement": overruns["exact"],
        },
    )
    stamp_reproducibility(result, *kernels, seed=seed)
    result.notes.append(
        "with a small proportion the heuristic grows the period above the "
        "30 ms default to reduce quantisation error; exact enforcement "
        "removes most of the overrun that dispatch-granularity enforcement "
        "allows."
    )
    return result


def run_ablation_period(
    *,
    sim_seconds: float = 10.0,
    config: Optional[ControllerConfig] = None,
    seed: Optional[int] = None,
) -> ExperimentResult:
    """Back-compat wrapper around the registered ``ablation_period``
    experiment."""
    return ablation_period_experiment(
        sim_seconds=sim_seconds, seed=seed, config=config
    )


__all__ = ["ablation_period_experiment", "run_ablation_period"]
