"""Latency-vs-offered-load response curves.

Classic queueing methodology the paper never plots: sweep the offered
arrival rate across a range, run the identical open-system workload at
each level, and watch the sojourn percentiles walk up the hockey
stick.  Each sweep level is a *fresh* deterministic system (same seed,
same templates), so neighbouring points differ only in the Poisson
rate — the curve is a property of the scheduler, not of carried-over
state.  The knee (max distance from the chord of the p99 curve) marks
where the machine stops absorbing load and the tail takes off.

Three workload shapes cover the taxonomy's interesting corners:
``batch`` (pure compute under the controller), ``io`` (compute
interleaved with simulated I/O), and ``rt`` (per-arrival admission of
real-time reservations — past the knee this one *rejects* rather than
queues, which is the paper's philosophy showing up as a flat curve
with a falling admit ratio).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.results import ExperimentResult
from repro.analysis.sojourn import (
    ResponseCurvePoint,
    response_curve_series,
    sojourn_stats,
)
from repro.analysis.series import find_knee
from repro.core.taxonomy import ThreadSpec
from repro.experiments.churn import _ENGINE_PARAM
from repro.experiments.registry import Param, experiment
from repro.sim.clock import seconds
from repro.system import build_real_rate_system
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.engine import (
    JobTemplate,
    WorkloadEngine,
    dispatch_fingerprint,
)

#: Default sweep levels (arrivals per second).
DEFAULT_RATES = (20.0, 40.0, 80.0, 120.0, 160.0, 240.0)


def _make_template(workload: str, job_cpu_us: int) -> JobTemplate:
    """The per-arrival job shape for one sweep workload."""
    if workload == "batch":
        return JobTemplate(
            "batch",
            total_cpu_us=job_cpu_us,
            burst_us=1_500,
            think_us=0,
            spec=ThreadSpec(),
        )
    if workload == "io":
        return JobTemplate(
            "io",
            total_cpu_us=job_cpu_us,
            burst_us=1_000,
            think_us=0,
            io_latency_us=1_200,
            spec=ThreadSpec(),
        )
    if workload == "rt":
        return JobTemplate(
            "rt",
            total_cpu_us=job_cpu_us,
            burst_us=800,
            think_us=500,
            spec=ThreadSpec(proportion_ppt=80, period_us=10_000),
        )
    raise ValueError(f"unknown workload {workload!r}")


def _run_level(
    *,
    rate_per_s: float,
    workload: str,
    n_cpus: int,
    job_cpu_us: int,
    duration_s: float,
    seed: Optional[int],
    engine: str,
) -> tuple[ResponseCurvePoint, float, str]:
    """One sweep level; returns (curve point, admit ratio, fingerprint)."""
    system = build_real_rate_system(
        n_cpus=n_cpus, record_dispatches=True, engine=engine
    )
    churn = WorkloadEngine(system.kernel, allocator=system.allocator)
    template = _make_template(workload, job_cpu_us)
    stream = churn.add_stream(
        "sweep", PoissonArrivals(rate_per_s, seed=seed or 0), template
    )
    churn.start()
    system.run_for(seconds(duration_s))

    records = [record.to_dict() for record in stream.records]
    stats = sojourn_stats(records, tag=template.name)
    arrivals_total = stream.spawned + stream.rejected
    admit_ratio = stream.spawned / arrivals_total if arrivals_total else 0.0
    point = ResponseCurvePoint(offered_per_s=rate_per_s, stats=stats)
    return point, admit_ratio, dispatch_fingerprint(system.kernel)


@experiment(
    name="response_curve",
    description="Sojourn-percentile response curve over an offered-load sweep",
    tags=("churn", "slo", "sweep"),
    params=(
        Param("rates", kind="float_list", default=DEFAULT_RATES, minimum=0.1,
              help="offered arrival rates to sweep (jobs/s)"),
        Param("workload", kind="str", default="batch",
              choices=("batch", "io", "rt"),
              help="per-arrival job shape (rt adds admission control)"),
        Param("n_cpus", kind="int", default=1, minimum=1, maximum=64),
        Param("job_cpu_us", kind="int", default=3_000, minimum=1),
        Param("duration_s", kind="float", default=1.5, minimum=0.05,
              help="simulated seconds per sweep level"),
        Param("seed", kind="int", default=41),
        _ENGINE_PARAM,
    ),
    quick={"duration_s": 0.4, "rates": (30.0, 90.0, 180.0)},
)
def response_curve_experiment(
    *,
    rates: Sequence[float] = DEFAULT_RATES,
    workload: str = "batch",
    n_cpus: int = 1,
    job_cpu_us: int = 3_000,
    duration_s: float = 1.5,
    seed: Optional[int] = 41,
    engine: str = "horizon",
) -> ExperimentResult:
    """Sweep the arrival rate; report percentile latency vs offered load.

    Every level runs a fresh system from the same seed, so the points
    are independently reproducible and the whole sweep carries one
    composite dispatch fingerprint (the per-level fingerprints joined
    in sweep order).
    """
    levels = sorted(float(rate) for rate in rates)
    points: list[ResponseCurvePoint] = []
    admit_ratios: list[float] = []
    fingerprints: list[str] = []
    for rate in levels:
        point, admit_ratio, fingerprint = _run_level(
            rate_per_s=rate,
            workload=workload,
            n_cpus=n_cpus,
            job_cpu_us=job_cpu_us,
            duration_s=duration_s,
            seed=seed,
            engine=engine,
        )
        points.append(point)
        admit_ratios.append(admit_ratio)
        fingerprints.append(fingerprint)

    result = ExperimentResult(
        experiment_id="response_curve",
        title=f"Latency response curve ({workload} jobs, {n_cpus} CPU)",
    )
    point_dicts = [point.to_dict() for point in points]
    xs, p99_ms = response_curve_series(point_dicts, field="p99_us")
    _, p50_ms = response_curve_series(point_dicts, field="p50_us")
    if xs:
        result.add_series("p99_sojourn_ms", xs, p99_ms)
        result.add_series("p50_sojourn_ms", xs, p50_ms)
        result.metrics["max_p99_sojourn_ms"] = max(p99_ms)
    if len(xs) >= 3:
        knee = find_knee(xs, p99_ms)
        result.metrics["knee_offered_per_s"] = knee
    result.add_series("admit_ratio", levels, admit_ratios)
    result.metrics["levels"] = float(len(levels))
    completed_total = sum(point.stats.completed for point in points)
    result.metrics["jobs_completed_total"] = float(completed_total)

    result.metadata["response_curve"] = point_dicts
    result.metadata["workload"] = workload
    result.metadata["seed"] = seed
    result.metadata["engine"] = engine
    result.metadata["dispatch_fingerprint"] = "+".join(fingerprints)
    result.notes.append(
        "each sweep level is a fresh system with the same seed, so points "
        "differ only in offered rate; knee = max distance from the chord of "
        "the p99 curve (saturation onset)."
    )
    return result


__all__ = ["DEFAULT_RATES", "response_curve_experiment"]
