"""Figure 2 (behavioural) — the controller's four thread classes.

Figure 2 is a taxonomy table rather than a measurement, but it makes
concrete, testable claims about how the controller treats each class:

* **real-time** threads keep exactly the proportion and period they
  specified;
* **aperiodic real-time** threads keep their specified proportion and
  receive the 30 ms default period;
* **real-rate** threads converge to the allocation their progress
  metric implies;
* **miscellaneous** threads receive whatever is left, never starve, and
  never prevent the other classes from meeting their needs.

This experiment runs one representative of each class simultaneously
and reports each thread's class, allocation and achieved CPU share.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.results import ExperimentResult
from repro.core.config import ControllerConfig
from repro.core.taxonomy import ThreadClass, ThreadSpec
from repro.experiments.params import ENGINE_PARAM, stamp_reproducibility
from repro.experiments.registry import Param, experiment
from repro.sim.clock import seconds
from repro.sim.requests import Compute, Sleep
from repro.system import build_real_rate_system
from repro.workloads.cpu_hog import CpuHog
from repro.workloads.pulse import PulseParameters, PulsePipeline, PulseSchedule


def _aperiodic_body(env):
    """A thread with a known proportion but no natural period.

    It alternates bursts of work with short sleeps, as a signal-
    processing helper might.
    """
    while True:
        yield Compute(3_000)
        yield Sleep(7_000)


@experiment(
    name="taxonomy",
    description="Thread taxonomy behaviour (Figure 2's four classes)",
    tags=("figure", "taxonomy"),
    params=(
        Param("sim_seconds", kind="float", default=10.0, minimum=0.5,
              help="virtual seconds simulated"),
        Param("n_cpus", kind="int", default=1, minimum=1, maximum=64,
              help="CPUs in the simulated kernel"),
        Param("seed", kind="int", default=None,
              help="seeds the miscellaneous hog's burst-length jitter"),
        ENGINE_PARAM,
    ),
    quick={"sim_seconds": 4.0},
)
def taxonomy_experiment(
    *,
    sim_seconds: float = 10.0,
    n_cpus: int = 1,
    seed: Optional[int] = None,
    engine: str = "horizon",
    config: Optional[ControllerConfig] = None,
) -> ExperimentResult:
    """Run one thread of each Figure 2 class and report the outcome."""
    system = build_real_rate_system(
        config, n_cpus=n_cpus, record_dispatches=True, engine=engine
    )

    # Real-time + real-rate: the pulse pipeline provides one of each
    # (producer = real-time reservation, consumer = real-rate).
    schedule = PulseSchedule([], default_rate=0.01)
    pipeline = PulsePipeline.attach(
        system, schedule=schedule, params=PulseParameters()
    )
    # Aperiodic real-time: proportion specified, period left to the
    # controller.
    aperiodic = system.spawn_controlled(
        "aperiodic", _aperiodic_body, spec=ThreadSpec(proportion_ppt=150)
    )
    # Miscellaneous: the CPU hog.
    hog = CpuHog.attach(system, seed=seed)

    system.run_for(seconds(sim_seconds))

    allocator = system.allocator
    scheduler = system.scheduler
    decisions = {d.thread.name: d for d in system.driver.last_decisions}
    elapsed = system.now

    def share(thread) -> float:
        return thread.accounting.total_us / elapsed

    result = ExperimentResult(
        experiment_id="taxonomy",
        title="Thread taxonomy behaviour (Figure 2)",
        metrics={
            "real_time_allocation_ppt": float(
                allocator.current_allocation_ppt(pipeline.producer)
            ),
            "real_time_period_us": float(
                scheduler.reservation(pipeline.producer).period_us
            ),
            "aperiodic_allocation_ppt": float(
                allocator.current_allocation_ppt(aperiodic)
            ),
            "aperiodic_period_us": float(
                scheduler.reservation(aperiodic).period_us
            ),
            "real_rate_allocation_ppt": float(
                allocator.current_allocation_ppt(pipeline.consumer)
            ),
            "misc_allocation_ppt": float(
                allocator.current_allocation_ppt(hog.thread)
            ),
            "real_time_cpu_share": share(pipeline.producer),
            "real_rate_cpu_share": share(pipeline.consumer),
            "aperiodic_cpu_share": share(aperiodic),
            "misc_cpu_share": share(hog.thread),
            "queue_fill_level": pipeline.queue.fill_level(),
        },
    )
    result.notes.append(
        "classes observed at the last controller update: "
        + ", ".join(
            f"{name}={decision.thread_class.value}"
            for name, decision in sorted(decisions.items())
        )
    )
    for name, decision in decisions.items():
        result.metrics[f"class_is_real_time:{name}"] = float(
            decision.thread_class is ThreadClass.REAL_TIME
        )
    stamp_reproducibility(result, system.kernel, seed=seed)
    return result


def run_taxonomy(
    *,
    sim_seconds: float = 10.0,
    config: Optional[ControllerConfig] = None,
    seed: Optional[int] = None,
) -> ExperimentResult:
    """Back-compat wrapper around the registered ``taxonomy`` experiment."""
    return taxonomy_experiment(
        sim_seconds=sim_seconds, seed=seed, config=config
    )


__all__ = ["run_taxonomy", "taxonomy_experiment"]
