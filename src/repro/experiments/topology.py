"""Topology-aware placement — an extension experiment beyond the paper.

The paper's prototype is a single 400 MHz CPU; placement does not
exist there.  The SMP extension gave the kernel a flat placement
policy (least-loaded balancing), which happily bounces a thread
between sockets every round — free in a flat model, expensive on real
hardware.  This experiment gives the kernel a
:class:`~repro.sim.topology.CpuTopology` (sockets x cores x SMT
threads with per-domain migration penalties, charged in virtual time)
and runs the *same* reserved workload, same seed, twice:

* **flat** — :class:`~repro.sched.placement.LeastLoadedPlacement`,
  blind to the topology, paying whatever migration penalties its
  round-to-round churn incurs;
* **aware** — a topology-aware policy
  (:class:`~repro.sched.placement.CacheWarmPlacement` by default, or
  :class:`~repro.sched.placement.NumaPackPlacement` via the
  ``placement`` parameter) on an identical kernel.

Both passes report deadline misses, migration counts and the virtual
microseconds charged to migrations; the reproduced claim is that
topology-aware placement cuts migrations (and the stolen time they
cost) without giving up the reservation guarantees.  Mid-run re-pin
events exercise the epoch contract under both engines, and the
dispatch fingerprint is stamped so the engine-equivalence matrix can
assert ``quantum`` and ``horizon`` agree bit-for-bit.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.analysis.results import ExperimentResult
from repro.experiments.params import ENGINE_PARAM, stamp_reproducibility
from repro.experiments.registry import Param, experiment
from repro.sched.placement import (
    CacheWarmPlacement,
    LeastLoadedPlacement,
    NumaPackPlacement,
    PlacementPolicy,
)
from repro.sched.rbs import ReservationScheduler
from repro.sim.kernel import Kernel
from repro.sim.requests import Compute, Sleep
from repro.sim.thread import ThreadEnv
from repro.sim.topology import CpuTopology

#: Placement choices selectable via the ``placement`` parameter.
AWARE_POLICIES = ("cache_warm", "numa_pack")


def _jittered_worker(compute_us: int, sleep_us: int, jitter: tuple[int, ...]):
    """A periodic thread whose think time cycles a pre-seeded jitter.

    The jitter tuple is drawn once, outside the kernel, from the
    experiment seed — both passes (and both engines) replay the exact
    same sequence, so every behavioural difference is the placement
    policy's.
    """

    def body(env: ThreadEnv):
        index = 0
        while True:
            yield Compute(compute_us)
            yield Sleep(sleep_us + jitter[index % len(jitter)])
            index += 1

    return body


def _run_pass(
    *,
    topology: CpuTopology,
    placement: PlacementPolicy,
    n_groups: int,
    group_size: int,
    rt_ppt: int,
    n_best_effort: int,
    duration_us: int,
    seed: int,
    engine: str,
) -> tuple[Kernel, ReservationScheduler]:
    scheduler = ReservationScheduler()
    scheduler.placement = placement
    kernel = Kernel(
        scheduler,
        n_cpus=topology.n_cpus,
        topology=topology,
        engine=engine,
        record_dispatches=True,
    )
    rng = random.Random(seed)
    pinned = []
    for group in range(n_groups):
        for index in range(group_size):
            jitter = tuple(rng.randrange(0, 1_500) for _ in range(16))
            thread = kernel.spawn(
                f"pool{group}.{index}",
                _jittered_worker(
                    compute_us=1_800 + 400 * group, sleep_us=2_500,
                    jitter=jitter,
                ),
            )
            scheduler.set_reservation(thread, rt_ppt, 10_000)
            pinned.append(thread)
    for index in range(n_best_effort):
        jitter = tuple(rng.randrange(0, 900) for _ in range(16))
        kernel.spawn(
            f"be.{index}",
            _jittered_worker(compute_us=1_200, sleep_us=600, jitter=jitter),
        )
    # Mid-run re-pins stress the epoch contract (affinity changes bump
    # the scheduler epoch, invalidating cached placements and horizon
    # batches on both engines) and force at least one migration per
    # pass, so the counters are exercised even by the aware policy.
    victim = pinned[0]
    last_cpu = topology.n_cpus - 1
    kernel.events.schedule(
        duration_us * 2 // 5, lambda: victim.pin_to(last_cpu),
        label="topology.pin",
    )
    kernel.events.schedule(
        duration_us * 3 // 5, lambda: victim.pin_to(None),
        label="topology.unpin",
    )
    kernel.run_until(duration_us)
    return kernel, scheduler


def _conservation_ok(kernel: Kernel) -> bool:
    """Extended conservation with migration penalties counted as stolen."""
    total = sum(t.accounting.total_us for t in kernel.threads)
    return (
        total + kernel.idle_us + kernel.stolen_us + kernel.offline_us
        == kernel.n_cpus * kernel.now
    )


@experiment(
    name="topology_placement",
    description="Flat vs topology-aware placement: migrations, migration cost, deadline misses",
    tags=("extension", "smp", "topology", "placement"),
    params=(
        Param("topology", kind="str", default="2x2x2",
              help="sockets x cores x SMT spec, e.g. 2x4x2"),
        Param("smt_migration_us", kind="int", default=25, minimum=0,
              help="penalty for moving between SMT siblings"),
        Param("core_migration_us", kind="int", default=80, minimum=0,
              help="penalty for moving across cores of one socket"),
        Param("socket_migration_us", kind="int", default=200, minimum=0,
              help="penalty for moving across sockets"),
        Param("placement", kind="str", default="cache_warm",
              choices=AWARE_POLICIES,
              help="topology-aware policy run against the flat baseline"),
        Param("n_groups", kind="int", default=2, minimum=1,
              help="reservation groups (dotted name prefixes)"),
        Param("group_size", kind="int", default=3, minimum=1,
              help="reserved threads per group"),
        Param("rt_ppt", kind="int", default=180, minimum=1, maximum=1000),
        Param("n_best_effort", kind="int", default=2, minimum=0),
        Param("duration_s", kind="float", default=1.0, minimum=0.05),
        Param("seed", kind="int", default=41),
        ENGINE_PARAM,
    ),
    quick={"duration_s": 0.4},
)
def topology_placement_experiment(
    *,
    topology: str = "2x2x2",
    smt_migration_us: int = 25,
    core_migration_us: int = 80,
    socket_migration_us: int = 200,
    placement: str = "cache_warm",
    n_groups: int = 2,
    group_size: int = 3,
    rt_ppt: int = 180,
    n_best_effort: int = 2,
    duration_s: float = 1.0,
    seed: Optional[int] = 41,
    engine: str = "horizon",
) -> ExperimentResult:
    """Does topology awareness cut migration cost without hurting deadlines?

    With the default 2x2x2 topology (8 CPUs: 2 sockets x 2 cores x 2
    SMT threads) the flat policy's load-balancing churn crosses sockets
    freely; the cache-warm policy keeps each thread on (or near) its
    last CPU, so its ``migration_us`` collapses while the reservation
    deadline misses stay essentially unchanged.
    """
    topo = CpuTopology.from_spec(
        topology,
        smt_migration_us=smt_migration_us,
        core_migration_us=core_migration_us,
        socket_migration_us=socket_migration_us,
    )
    aware_policy: PlacementPolicy
    if placement == "cache_warm":
        aware_policy = CacheWarmPlacement(topo)
    elif placement == "numa_pack":
        aware_policy = NumaPackPlacement(topo)
    else:  # registry validates choices; defensive for direct callers
        raise ValueError(
            f"placement must be one of {AWARE_POLICIES}, got {placement!r}"
        )
    kwargs = dict(
        topology=topo,
        n_groups=n_groups,
        group_size=group_size,
        rt_ppt=rt_ppt,
        n_best_effort=n_best_effort,
        duration_us=int(duration_s * 1_000_000),
        seed=seed or 0,
        engine=engine,
    )
    flat_kernel, flat_sched = _run_pass(
        placement=LeastLoadedPlacement(), **kwargs
    )
    aware_kernel, aware_sched = _run_pass(placement=aware_policy, **kwargs)

    result = ExperimentResult(
        experiment_id="topology_placement",
        title="Flat vs topology-aware placement on a sockets/SMT kernel",
    )
    for label, kernel, scheduler in (
        ("flat", flat_kernel, flat_sched),
        ("aware", aware_kernel, aware_sched),
    ):
        result.metrics[f"misses_{label}"] = float(scheduler.deadline_misses())
        result.metrics[f"migrations_{label}"] = float(kernel.migrations)
        result.metrics[f"migration_ms_{label}"] = kernel.migration_us / 1_000.0
        result.metrics[f"idle_ms_{label}"] = kernel.idle_us / 1_000.0
        result.metrics[f"conservation_ok_{label}"] = float(
            _conservation_ok(kernel)
        )
    result.metrics["migration_ms_saved"] = (
        flat_kernel.migration_us - aware_kernel.migration_us
    ) / 1_000.0
    result.metrics["migrations_saved"] = float(
        flat_kernel.migrations - aware_kernel.migrations
    )
    result.metadata["topology"] = topo.spec()
    result.metadata["aware_placement"] = placement
    result.metadata["per_cpu_migrations_flat"] = [
        state.migrations for state in flat_kernel.cpu_states
    ]
    result.metadata["per_cpu_migrations_aware"] = [
        state.migrations for state in aware_kernel.cpu_states
    ]
    stamp_reproducibility(result, flat_kernel, aware_kernel, seed=seed)
    result.notes.append(
        "extension beyond the paper: the single-CPU prototype has no "
        "placement; the reproduced claim is that distance-aware placement "
        "(last CPU, then SMT sibling, then socket) eliminates most "
        "migration-penalty time charged by the topology model while the "
        "reservation misses stay essentially unchanged from the flat "
        "baseline."
    )
    return result


__all__ = ["topology_placement_experiment"]
