"""Figure 6 — controller responsiveness on an otherwise idle system.

"The producer generated rising pulses of various widths, doubling its
rate of production in bytes/cycle for a period of time before falling
back to the original rate. […] the allocation roughly follows the
square wave set by the production rate, and the fill level changes more
drastically the farther it is from 1/2.  The effect on fill level from
pulses with smaller width is smaller […] From our data, it takes the
controller roughly 1/3 of a second to respond to the doubling in
production rate."

The reproduction runs the pulse pipeline (producer with a fixed
reservation, consumer under real-rate control) through the paper's
rising/falling pulse schedule and reports:

* the producer's and consumer's progress rates over time (top graph of
  Figure 6),
* the queue fill level over time (bottom graph),
* the controller's response time to the widest rising pulse, and
* the tracking error between producer and consumer progress rates.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.response import step_response
from repro.analysis.results import ExperimentResult
from repro.analysis.series import mean_absolute_deviation, rate_from_cumulative
from repro.core.config import ControllerConfig
from repro.experiments.params import ENGINE_PARAM, stamp_reproducibility
from repro.experiments.registry import Param, experiment
from repro.sim.clock import seconds
from repro.system import RealRateSystem, build_real_rate_system
from repro.workloads.pulse import PulseParameters, PulsePipeline, PulseSchedule

#: The paper's headline responsiveness number (seconds).
PAPER_RESPONSE_TIME_S = 1.0 / 3.0

#: Sampling period for the reported progress-rate series (microseconds).
RATE_SAMPLE_PERIOD_US = 200_000

#: Sampling period for the fill-level series (microseconds).
FILL_SAMPLE_PERIOD_US = 50_000


def small_figure6_schedule(base_rate: float) -> PulseSchedule:
    """A shrunken pulse schedule for quick-mode runs and fast tests."""
    return PulseSchedule.paper_figure6(
        base_rate,
        rising_widths_s=(1.5,),
        falling_widths_s=(1.5,),
        gap_s=1.5,
        start_s=2.0,
        tail_s=1.0,
    )


def _instrument(system: RealRateSystem, pipeline: PulsePipeline) -> None:
    tracer = system.kernel.tracer
    tracer.add_sampler(
        system.kernel.events, FILL_SAMPLE_PERIOD_US, "fill",
        lambda now: pipeline.queue.fill_level(),
    )
    tracer.add_sampler(
        system.kernel.events, RATE_SAMPLE_PERIOD_US, "put_bytes",
        lambda now: pipeline.queue.total_put_bytes,
    )
    tracer.add_sampler(
        system.kernel.events, RATE_SAMPLE_PERIOD_US, "get_bytes",
        lambda now: pipeline.queue.total_get_bytes,
    )


def _collect(
    system: RealRateSystem,
    pipeline: PulsePipeline,
    schedule: PulseSchedule,
    result: ExperimentResult,
) -> None:
    """Shared post-processing between Figures 6 and 7."""
    tracer = system.kernel.tracer

    put = tracer.series("put_bytes")
    get = tracer.series("get_bytes")
    producer_times, producer_rates = rate_from_cumulative(
        put.times_s(), put.values()
    )
    consumer_times, consumer_rates = rate_from_cumulative(
        get.times_s(), get.values()
    )
    fill = tracer.series("fill")
    alloc = tracer.series(f"alloc:{pipeline.consumer.name}")

    result.add_series("producer_rate_bytes_per_s", producer_times, producer_rates)
    result.add_series("consumer_rate_bytes_per_s", consumer_times, consumer_rates)
    result.add_series("queue_fill_level", fill.times_s(), fill.values())
    result.add_series("consumer_allocation_ppt", alloc.times_s(), alloc.values())

    # Response time of the consumer's allocation to the widest rising pulse.
    widest = max(
        (w for w in schedule.pulse_windows if w[2]),
        key=lambda w: w[1] - w[0],
    )
    response = step_response(
        alloc.times_s(),
        alloc.values(),
        widest[0] / 1_000_000,
        measure_window_s=min(2.5, (widest[1] - widest[0]) / 1_000_000),
    )
    result.metrics["response_time_s"] = (
        response.rise_time_s if response.rise_time_s is not None else float("inf")
    )
    result.metrics["response_overshoot"] = response.overshoot_fraction

    # Tracking: mean absolute difference between producer and consumer
    # progress rates after the initial fill of the queue.
    mismatches = [
        abs(p - c)
        for t, p, c in zip(producer_times, producer_rates, consumer_rates)
        if t > 2.0
    ]
    mean_rate = (
        sum(r for t, r in zip(producer_times, producer_rates) if t > 2.0)
        / max(1, len(mismatches))
    )
    result.metrics["mean_rate_mismatch_bytes_per_s"] = (
        sum(mismatches) / len(mismatches) if mismatches else 0.0
    )
    result.metrics["mean_producer_rate_bytes_per_s"] = mean_rate
    result.metrics["tracking_error_fraction"] = (
        result.metrics["mean_rate_mismatch_bytes_per_s"] / mean_rate
        if mean_rate > 0
        else 0.0
    )

    # Fill-level behaviour: deviation from the 1/2 set point, and the
    # per-pulse peak deviation (wider pulses push the fill further).
    steady_fill = [p.value for p in fill if p.time_s > 2.0]
    result.metrics["fill_mean_abs_deviation"] = mean_absolute_deviation(
        steady_fill, 0.5
    )
    rising = [w for w in schedule.pulse_windows if w[2]]
    for index, (start_us, end_us, _) in enumerate(rising):
        window = fill.window(start_us, end_us + 1_500_000)
        if window:
            peak = max(abs(p.value - 0.5) for p in window)
            result.metrics[f"fill_peak_deviation_pulse{index}"] = peak
    result.metrics["quality_exceptions"] = float(
        len(system.allocator.quality_exceptions)
    )


@experiment(
    name="figure6",
    description="Controller responsiveness on an otherwise idle system",
    tags=("figure", "responsiveness"),
    params=(
        Param(
            "small_schedule", kind="bool", default=False,
            help="use a single shortened rising/falling pulse pair",
        ),
        Param(
            "extra_seconds", kind="float", default=1.0, minimum=0.0,
            help="tail simulated past the end of the pulse schedule",
        ),
        Param("n_cpus", kind="int", default=1, minimum=1, maximum=64,
              help="CPUs in the simulated kernel"),
        Param("seed", kind="int", default=None, help="RNG seed (recorded; "
              "the pulse pipeline is fully deterministic)"),
        ENGINE_PARAM,
    ),
    quick={"small_schedule": True},
)
def figure6_experiment(
    *,
    small_schedule: bool = False,
    extra_seconds: float = 1.0,
    n_cpus: int = 1,
    seed: Optional[int] = None,
    engine: str = "horizon",
    config: Optional[ControllerConfig] = None,
    params: Optional[PulseParameters] = None,
    schedule: Optional[PulseSchedule] = None,
) -> ExperimentResult:
    """Reproduce Figure 6: the pulse pipeline on an otherwise idle system."""
    params = params if params is not None else PulseParameters()
    if schedule is None:
        if small_schedule:
            schedule = small_figure6_schedule(params.base_rate_bytes_per_cpu_us)
        else:
            schedule = PulseSchedule.paper_figure6(
                params.base_rate_bytes_per_cpu_us
            )
    system = build_real_rate_system(
        config, n_cpus=n_cpus, record_dispatches=True, engine=engine
    )
    pipeline = PulsePipeline.attach(system, schedule=schedule, params=params)
    _instrument(system, pipeline)
    system.run_for(schedule.end_us() + seconds(extra_seconds))

    result = ExperimentResult(
        experiment_id="figure6",
        title="Controller responsiveness (idle system)",
        paper_values={"response_time_s": PAPER_RESPONSE_TIME_S},
    )
    _collect(system, pipeline, schedule, result)
    stamp_reproducibility(result, system.kernel, seed=seed)
    result.notes.append(
        "byte rates depend on the simulated CPU's quantisation overrun and so "
        "differ in absolute value from the paper's; the reproduced claims are "
        "the square-wave tracking, the sub-second response time and the "
        "fill-level excursions growing with pulse width."
    )
    return result


def run_figure6(
    *,
    config: Optional[ControllerConfig] = None,
    params: Optional[PulseParameters] = None,
    schedule: Optional[PulseSchedule] = None,
    extra_seconds: float = 1.0,
    seed: Optional[int] = None,
) -> ExperimentResult:
    """Back-compat wrapper around the registered ``figure6`` experiment."""
    return figure6_experiment(
        config=config,
        params=params,
        schedule=schedule,
        extra_seconds=extra_seconds,
        seed=seed,
    )


__all__ = [
    "PAPER_RESPONSE_TIME_S",
    "figure6_experiment",
    "run_figure6",
    "small_figure6_schedule",
    "_collect",
    "_instrument",
]
