"""SMP scaling — an extension experiment beyond the paper.

The paper's evaluation runs on a single-CPU prototype; its feedback
allocator only ever budgets against one CPU's worth of capacity.  This
experiment asks the question a production deployment would: does the
same progress-based feedback scheme scale when the kernel has N CPUs
and the controller budgets against ``N * PROPORTION_SCALE``?

A fixed web-server farm (default: 8 servers whose aggregate offered
load needs ~1.8 CPUs) is run unchanged on kernels with 1 through 8
CPUs.  For each CPU count we record

* the served throughput (requests/second) — the scaling curve,
* the speedup relative to the smallest CPU count in the sweep
  (reported as ``speedup_baseline_cpus``),
* the peak total granted proportion, which must stay within the
  capacity ``n_cpus * PROPORTION_SCALE`` (and in fact within the scaled
  overload threshold), and
* per-CPU busy fractions, showing the placement policy actually
  spreading the farm.

The expected shape: the 1-CPU run saturates (throughput well below the
offered load, servers squished by the overload policy), and throughput
climbs with the CPU count until the farm's demand fits, after which it
plateaus at the offered load — the classic throughput-vs-processors
knee.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.results import ExperimentResult
from repro.core.config import PROPORTION_SCALE, ControllerConfig
from repro.experiments.params import ENGINE_PARAM, stamp_reproducibility
from repro.experiments.registry import Param, experiment
from repro.sim.clock import seconds
from repro.system import build_real_rate_system
from repro.workloads.webfarm import WebFarm

#: Default CPU counts swept.
DEFAULT_CPU_COUNTS = (1, 2, 4, 8)


@experiment(
    name="smp_scaling",
    description="Web-farm throughput vs CPU count (SMP extension)",
    tags=("extension", "smp", "scaling"),
    params=(
        Param(
            "n_cpus", kind="int_list", default=DEFAULT_CPU_COUNTS,
            minimum=1, maximum=64,
            help="CPU counts swept (a single value measures one point)",
        ),
        Param("n_servers", kind="int", default=8, minimum=1,
              help="independent request/server pairs in the farm"),
        Param("requests_per_second", kind="float", default=150.0, minimum=1.0,
              help="offered load per server"),
        Param("service_cpu_us", kind="int", default=1_500, minimum=1,
              help="CPU per request"),
        Param("duration_s", kind="float", default=3.0, minimum=0.1,
              help="virtual seconds simulated per CPU count"),
        Param("pin", kind="bool", default=False,
              help="pin server i to CPU i % n_cpus"),
        Param("seed", kind="int", default=None,
              help="seeds per-server arrival jitter (None = periodic)"),
        ENGINE_PARAM,
    ),
    quick={"n_cpus": (1, 2), "duration_s": 1.0},
)
def smp_scaling_experiment(
    *,
    n_cpus: Sequence[int] = DEFAULT_CPU_COUNTS,
    n_servers: int = 8,
    requests_per_second: float = 150.0,
    service_cpu_us: int = 1_500,
    duration_s: float = 3.0,
    pin: bool = False,
    seed: Optional[int] = None,
    engine: str = "horizon",
    config: Optional[ControllerConfig] = None,
) -> ExperimentResult:
    """Sweep the web farm over kernels with increasing CPU counts."""
    if isinstance(n_cpus, int):
        n_cpus = (n_cpus,)
    cpu_counts = tuple(n_cpus)
    if not cpu_counts:
        raise ValueError("need at least one CPU count to sweep")
    offered_rps = n_servers * float(requests_per_second)

    throughputs: list[float] = []
    peak_granted: list[float] = []
    kernels = []
    result = ExperimentResult(
        experiment_id="smp_scaling",
        title="Web-farm throughput vs CPU count (SMP extension)",
    )

    for count in cpu_counts:
        system = build_real_rate_system(
            config, n_cpus=count, record_dispatches=True, engine=engine
        )
        kernels.append(system.kernel)
        farm = WebFarm.attach(
            system,
            n_servers=n_servers,
            requests_per_second=requests_per_second,
            service_cpu_us=service_cpu_us,
            pin=pin,
            seed=seed,
        )
        system.run_for(seconds(duration_s))

        served_rps = farm.served_rps(system.now)
        total_alloc = system.kernel.tracer.series("alloc:total")
        peak = max(total_alloc.values()) if len(total_alloc) else 0.0
        throughputs.append(served_rps)
        peak_granted.append(peak)

        result.metrics[f"served_rps_{count}cpu"] = served_rps
        result.metrics[f"peak_granted_ppt_{count}cpu"] = peak
        result.metrics[f"capacity_ppt_{count}cpu"] = float(
            count * PROPORTION_SCALE
        )
        for state in system.kernel.cpu_states:
            result.metrics[
                f"busy_fraction_{count}cpu_cpu{state.index}"
            ] = state.busy_fraction(system.now)

    result.metrics["offered_rps"] = offered_rps
    result.metrics["demand_cpus"] = (
        offered_rps * service_cpu_us / 1_000_000
    )
    # Speedups are relative to the smallest CPU count swept, whatever
    # order cpu_counts came in.
    baseline_index = min(range(len(cpu_counts)), key=lambda i: cpu_counts[i])
    base = throughputs[baseline_index]
    result.metrics["speedup_baseline_cpus"] = float(cpu_counts[baseline_index])
    for count, rps in zip(cpu_counts, throughputs):
        result.metrics[f"speedup_{count}cpu"] = rps / base if base > 0 else 0.0

    result.add_series(
        "served_rps_vs_cpus", [float(n) for n in cpu_counts], throughputs
    )
    result.add_series(
        "peak_granted_ppt_vs_cpus", [float(n) for n in cpu_counts], peak_granted
    )
    stamp_reproducibility(result, *kernels, seed=seed)
    result.notes.append(
        "extension beyond the paper: the single-CPU prototype cannot run this; "
        "the reproduced claim is that feedback-driven proportion allocation "
        "scales to aggregate capacity n_cpus * PROPORTION_SCALE, with "
        "throughput rising until the farm's demand fits and plateauing at the "
        "offered load."
    )
    return result


def run_smp_scaling(
    *,
    config: Optional[ControllerConfig] = None,
    cpu_counts: Sequence[int] = DEFAULT_CPU_COUNTS,
    n_servers: int = 8,
    requests_per_second: float = 150.0,
    service_cpu_us: int = 1_500,
    duration_s: float = 3.0,
    pin: bool = False,
    seed: Optional[int] = None,
) -> ExperimentResult:
    """Back-compat wrapper around the registered ``smp_scaling``
    experiment (whose sweep parameter is named ``n_cpus``)."""
    return smp_scaling_experiment(
        n_cpus=cpu_counts,
        n_servers=n_servers,
        requests_per_second=requests_per_second,
        service_cpu_us=service_cpu_us,
        duration_s=duration_s,
        pin=pin,
        seed=seed,
        config=config,
    )


__all__ = ["DEFAULT_CPU_COUNTS", "run_smp_scaling", "smp_scaling_experiment"]
