"""Figure 7 — controller response under competing load.

"This figure shows the same pipeline run concurrently with a CPU hog.
Since the total desired allocation exceeds the capacity of the CPU, the
controller must squish the load and consumer threads.  It cannot squish
the producer since the producer has specified a fixed reservation."

The reproduction adds a miscellaneous CPU hog to the Figure 6 pipeline
and reports, in addition to the Figure 6 series, the hog's and the
producer's allocations, the total allocation (which must stay at or
below the overload threshold), and the anti-correlation between the
consumer's and the hog's allocations (the "high frequency oscillation
in allocation between the load and the consumer" the paper describes).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.results import ExperimentResult
from repro.core.config import ControllerConfig
from repro.experiments.figure6 import _collect, _instrument, small_figure6_schedule
from repro.experiments.params import ENGINE_PARAM, stamp_reproducibility
from repro.experiments.registry import Param, experiment
from repro.sim.clock import seconds
from repro.system import build_real_rate_system
from repro.workloads.cpu_hog import CpuHog
from repro.workloads.pulse import PulseParameters, PulsePipeline, PulseSchedule


def _correlation(xs: list[float], ys: list[float]) -> float:
    """Pearson correlation coefficient (0.0 when degenerate)."""
    n = min(len(xs), len(ys))
    if n < 2:
        return 0.0
    xs, ys = xs[:n], ys[:n]
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    syy = sum((y - mean_y) ** 2 for y in ys)
    if sxx == 0 or syy == 0:
        return 0.0
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    return sxy / (sxx * syy) ** 0.5


@experiment(
    name="figure7",
    description="Controller response under load (pulse pipeline + CPU hog)",
    tags=("figure", "responsiveness", "overload"),
    params=(
        Param(
            "small_schedule", kind="bool", default=False,
            help="use a single shortened rising/falling pulse pair",
        ),
        Param("hog_importance", kind="float", default=1.0, minimum=0.0,
              help="importance weight of the competing hog"),
        Param(
            "extra_seconds", kind="float", default=1.0, minimum=0.0,
            help="tail simulated past the end of the pulse schedule",
        ),
        Param("n_cpus", kind="int", default=1, minimum=1, maximum=64,
              help="CPUs in the simulated kernel"),
        Param("seed", kind="int", default=None,
              help="seeds the hog's burst-length jitter"),
        ENGINE_PARAM,
    ),
    quick={"small_schedule": True},
)
def figure7_experiment(
    *,
    small_schedule: bool = False,
    hog_importance: float = 1.0,
    extra_seconds: float = 1.0,
    n_cpus: int = 1,
    seed: Optional[int] = None,
    engine: str = "horizon",
    config: Optional[ControllerConfig] = None,
    params: Optional[PulseParameters] = None,
    schedule: Optional[PulseSchedule] = None,
) -> ExperimentResult:
    """Reproduce Figure 7: the pulse pipeline with a competing CPU hog."""
    params = params if params is not None else PulseParameters()
    if schedule is None:
        if small_schedule:
            schedule = small_figure6_schedule(params.base_rate_bytes_per_cpu_us)
        else:
            schedule = PulseSchedule.paper_figure6(
                params.base_rate_bytes_per_cpu_us
            )
    system = build_real_rate_system(
        config, n_cpus=n_cpus, record_dispatches=True, engine=engine
    )
    pipeline = PulsePipeline.attach(system, schedule=schedule, params=params)
    hog = CpuHog.attach(system, importance=hog_importance, seed=seed)
    _instrument(system, pipeline)
    system.run_for(schedule.end_us() + seconds(extra_seconds))

    result = ExperimentResult(
        experiment_id="figure7",
        title="Controller response under load (pulse pipeline + CPU hog)",
    )
    _collect(system, pipeline, schedule, result)

    tracer = system.kernel.tracer
    consumer_alloc = tracer.series(f"alloc:{pipeline.consumer.name}")
    hog_alloc = tracer.series(f"alloc:{hog.thread.name}")
    producer_alloc = tracer.series(f"alloc:{pipeline.producer.name}")
    result.add_series(
        "hog_allocation_ppt", hog_alloc.times_s(), hog_alloc.values()
    )
    result.add_series(
        "producer_allocation_ppt", producer_alloc.times_s(), producer_alloc.values()
    )

    threshold = system.allocator.config.overload_threshold_ppt
    n = min(len(consumer_alloc), len(hog_alloc), len(producer_alloc))
    totals = [
        consumer_alloc[i].value + hog_alloc[i].value + producer_alloc[i].value
        for i in range(n)
    ]
    result.metrics["max_total_allocation_ppt"] = max(totals) if totals else 0.0
    result.metrics["overload_threshold_ppt"] = float(threshold)
    result.metrics["producer_allocation_min_ppt"] = (
        min(producer_alloc.values()) if len(producer_alloc) else 0.0
    )
    result.metrics["producer_allocation_max_ppt"] = (
        max(producer_alloc.values()) if len(producer_alloc) else 0.0
    )
    result.metrics["hog_cpu_fraction"] = (
        hog.thread.accounting.total_us / system.now if system.now else 0.0
    )
    result.metrics["consumer_cpu_fraction"] = (
        pipeline.consumer.accounting.total_us / system.now if system.now else 0.0
    )
    result.metrics["consumer_hog_allocation_correlation"] = _correlation(
        consumer_alloc.values()[: n], hog_alloc.values()[: n]
    )
    stamp_reproducibility(result, system.kernel, seed=seed)
    result.notes.append(
        "the hog's allocation mirrors the consumer's (strongly negative "
        "correlation): when the producer speeds up, the consumer's growing "
        "pressure takes allocation away from the constant-pressure hog, which "
        "is the behaviour Figure 7 illustrates."
    )
    return result


def run_figure7(
    *,
    config: Optional[ControllerConfig] = None,
    params: Optional[PulseParameters] = None,
    schedule: Optional[PulseSchedule] = None,
    hog_importance: float = 1.0,
    extra_seconds: float = 1.0,
    seed: Optional[int] = None,
) -> ExperimentResult:
    """Back-compat wrapper around the registered ``figure7`` experiment."""
    return figure7_experiment(
        config=config,
        params=params,
        schedule=schedule,
        hog_importance=hog_importance,
        extra_seconds=extra_seconds,
        seed=seed,
    )


__all__ = ["figure7_experiment", "run_figure7"]
