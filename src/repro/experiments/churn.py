"""Open-system churn scenarios.

Five experiments drive the :class:`~repro.workloads.engine.WorkloadEngine`
through production-shaped traffic — jobs arriving, changing their needs
and exiting while the feedback controller adapts:

* ``churn_webfarm`` — a persistent web farm sharing the machine with a
  Poisson stream of short-lived batch jobs (arrival-driven spawn and
  reclaim-on-exit under the controller);
* ``tidal_pipeline`` — I/O-staged jobs whose arrival rate follows a
  phase-scripted tide (rate retiming of a live arrival process);
* ``thundering_herd`` — waves of simultaneous arrivals from a replayed
  trace (run-queue and placement stress at the spike);
* ``flash_crowd_rt`` — real-time jobs with per-arrival admission
  control facing a 10x flash crowd (admission-on-arrival, capacity
  reclaimed the instant a job exits);
* ``trace_replay`` — a tagged arrival trace (built-in sample or
  ``trace_file=...``) mixing web, batch and real-time job classes.

Every scenario takes an ``engine`` parameter and must produce
**bit-identical dispatch logs** under ``engine="quantum"`` and
``engine="horizon"`` — each result records
``metadata["dispatch_fingerprint"]`` (the SHA-256 of the full dispatch
log) and ``tests/test_experiments_churn.py`` diffs the two engines on
every scenario.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.results import ExperimentResult
from repro.analysis.sojourn import sojourn_stats_by_tag
from repro.core.taxonomy import ThreadSpec
from repro.experiments.params import ENGINE_PARAM
from repro.experiments.registry import Param, experiment
from repro.sim.clock import seconds
from repro.system import RealRateSystem, build_real_rate_system
from repro.workloads.arrivals import PoissonArrivals, TraceArrivals
from repro.workloads.engine import (
    JobTemplate,
    PhaseScript,
    WorkloadEngine,
    dispatch_fingerprint,
)
from repro.workloads.webfarm import WebFarm

#: Back-compat alias; the canonical declaration moved to
#: :mod:`repro.experiments.params` so every experiment shares it.
_ENGINE_PARAM = ENGINE_PARAM

#: Sampling period for the live-thread-count trace series.
_LIVE_SAMPLE_US = 10_000


def _sample_live(system: RealRateSystem, engine: WorkloadEngine) -> None:
    """Trace the number of live churn jobs every 10 ms."""
    system.kernel.tracer.add_sampler(
        system.kernel.events,
        _LIVE_SAMPLE_US,
        "churn:live",
        lambda now: float(engine.live_total()),
    )


def _churn_metrics(
    result: ExperimentResult, system: RealRateSystem, engine: WorkloadEngine
) -> None:
    """Fold the engine's churn bookkeeping into the result.

    Alongside the counts, the per-job completion records are stamped
    into ``metadata["job_records"]`` (the wire form ``python -m repro
    report`` reads) and summarized as exact-rank sojourn percentiles
    per tag in ``metadata["sojourn_percentiles"]``; the headline
    percentiles also land in ``metrics``.  Latency metrics are only
    emitted when at least one job completed — a run with no
    completions has *no* sojourn figures, not zero-latency ones.
    """
    result.metrics["jobs_spawned"] = float(engine.spawned_total())
    result.metrics["jobs_completed"] = float(engine.completed_total())
    result.metrics["jobs_rejected"] = float(engine.rejected_total())
    result.metrics["jobs_killed"] = float(engine.killed_total())
    result.metrics["jobs_live_at_end"] = float(engine.live_total())
    records = [record.to_dict() for record in engine.records()]
    stats = sojourn_stats_by_tag(records)
    overall = stats.get("all")
    if overall is not None and overall.completed > 0:
        result.metrics["mean_sojourn_ms"] = overall.mean_us / 1_000.0
        result.metrics["sojourn_p50_ms"] = overall.p50_us / 1_000.0
        result.metrics["sojourn_p95_ms"] = overall.p95_us / 1_000.0
        result.metrics["sojourn_p99_ms"] = overall.p99_us / 1_000.0
        result.metrics["sojourn_p999_ms"] = overall.p999_us / 1_000.0
    result.metadata["job_records"] = records
    result.metadata["sojourn_percentiles"] = {
        tag: tag_stats.to_dict() for tag, tag_stats in stats.items()
    }
    live = system.kernel.tracer.series("churn:live")
    if len(live):
        result.metrics["peak_live_jobs"] = max(live.values())
        result.add_series("live_jobs", live.times_s(), live.values())
    result.metadata["engine"] = system.kernel.engine
    result.metadata["dispatch_fingerprint"] = dispatch_fingerprint(system.kernel)


# ----------------------------------------------------------------------
# churn_webfarm
# ----------------------------------------------------------------------
@experiment(
    name="churn_webfarm",
    description="Web farm sharing the machine with Poisson batch-job churn",
    tags=("churn", "smp", "controller"),
    params=(
        Param("n_cpus", kind="int", default=4, minimum=1, maximum=64),
        Param("n_servers", kind="int", default=2, minimum=1,
              help="persistent web servers (the farm)"),
        Param("requests_per_second", kind="float", default=150.0, minimum=1.0,
              help="offered load per server"),
        Param("jobs_per_second", kind="float", default=60.0, minimum=0.1,
              help="Poisson arrival rate of churn jobs"),
        Param("job_cpu_us", kind="int", default=5_000, minimum=1,
              help="CPU demand per churn job"),
        Param("think_us", kind="int", default=800, minimum=0,
              help="sleep between job compute bursts"),
        Param("duration_s", kind="float", default=2.0, minimum=0.05),
        Param("seed", kind="int", default=17),
        _ENGINE_PARAM,
    ),
    quick={"duration_s": 0.3, "jobs_per_second": 40.0},
)
def churn_webfarm_experiment(
    *,
    n_cpus: int = 4,
    n_servers: int = 2,
    requests_per_second: float = 150.0,
    jobs_per_second: float = 60.0,
    job_cpu_us: int = 5_000,
    think_us: int = 800,
    duration_s: float = 2.0,
    seed: Optional[int] = 17,
    engine: str = "horizon",
) -> ExperimentResult:
    """A web farm keeps serving while batch jobs churn around it.

    The farm's servers are persistent real-rate threads; the churn
    stream spawns finite miscellaneous jobs under the controller, so
    every arrival re-runs classification and every exit reclaims its
    allocation on the next tick.  The interesting observable is that
    the farm's throughput tracks the offered load despite the churn.
    """
    system = build_real_rate_system(
        n_cpus=n_cpus, record_dispatches=True, engine=engine
    )
    farm = WebFarm.attach(
        system,
        n_servers=n_servers,
        requests_per_second=requests_per_second,
        service_cpu_us=1_500,
        seed=seed,
    )
    churn = WorkloadEngine(system.kernel, allocator=system.allocator)
    template = JobTemplate(
        "batch",
        total_cpu_us=job_cpu_us,
        burst_us=1_500,
        think_us=think_us,
        spec=ThreadSpec(),
    )
    churn.add_stream(
        "churn", PoissonArrivals(jobs_per_second, seed=seed or 0), template
    )
    _sample_live(system, churn)
    churn.start()
    system.run_for(seconds(duration_s))

    result = ExperimentResult(
        experiment_id="churn_webfarm",
        title="Web farm under arrival-driven batch churn",
    )
    result.metrics["served_rps"] = farm.served_rps(system.now)
    result.metrics["offered_rps"] = n_servers * float(requests_per_second)
    _churn_metrics(result, system, churn)
    result.metadata["seed"] = seed
    result.notes.append(
        "open-system extension: the paper's closed workloads never exercise "
        "admission/reclaim under churn; the farm's served rate tracking the "
        "offered load shows the controller re-converging across arrivals."
    )
    return result


# ----------------------------------------------------------------------
# tidal_pipeline
# ----------------------------------------------------------------------
@experiment(
    name="tidal_pipeline",
    description="I/O-staged jobs under a phase-scripted tidal arrival rate",
    tags=("churn", "controller", "phases"),
    params=(
        Param("n_cpus", kind="int", default=1, minimum=1, maximum=64),
        Param("low_rps", kind="float", default=40.0, minimum=0.1),
        Param("high_rps", kind="float", default=160.0, minimum=0.1),
        Param("phase_s", kind="float", default=0.5, minimum=0.01,
              help="half-period of the tide (low->high switch interval)"),
        Param("job_cpu_us", kind="int", default=3_000, minimum=1),
        Param("io_latency_us", kind="int", default=1_200, minimum=0),
        Param("duration_s", kind="float", default=2.0, minimum=0.05),
        Param("seed", kind="int", default=23),
        _ENGINE_PARAM,
    ),
    quick={"duration_s": 0.4, "phase_s": 0.1},
)
def tidal_pipeline_experiment(
    *,
    n_cpus: int = 1,
    low_rps: float = 40.0,
    high_rps: float = 160.0,
    phase_s: float = 0.5,
    job_cpu_us: int = 3_000,
    io_latency_us: int = 1_200,
    duration_s: float = 2.0,
    seed: Optional[int] = 23,
    engine: str = "horizon",
) -> ExperimentResult:
    """Arrival rate rises and falls like a tide while jobs flow through.

    Jobs interleave compute bursts with simulated I/O (a two-stage
    pipeline per job); a :class:`PhaseScript` flips the Poisson rate
    between ``low_rps`` and ``high_rps`` every ``phase_s`` seconds and
    halves the per-job compute demand at mid-run (a live retime that
    also reshapes jobs already in flight).
    """
    system = build_real_rate_system(
        n_cpus=n_cpus, record_dispatches=True, engine=engine
    )
    churn = WorkloadEngine(system.kernel, allocator=system.allocator)
    template = JobTemplate(
        "stage",
        total_cpu_us=job_cpu_us,
        burst_us=1_000,
        io_latency_us=io_latency_us,
        spec=ThreadSpec(),
    )
    arrivals = PoissonArrivals(low_rps, seed=seed or 0)
    stream = churn.add_stream("tide", arrivals, template)
    script = PhaseScript()
    phase_us = seconds(phase_s)
    duration_us = seconds(duration_s)
    high = False
    for at_us in range(phase_us, duration_us, phase_us):
        high = not high
        script.set_rate(at_us, arrivals, high_rps if high else low_rps)
    script.retime(duration_us // 2, template, total_cpu_us=max(1, job_cpu_us // 2))
    _sample_live(system, churn)
    churn.start(script)
    system.run_for(duration_us)

    result = ExperimentResult(
        experiment_id="tidal_pipeline",
        title="Tidal arrival-rate pipeline churn",
    )
    result.metrics["low_rps"] = float(low_rps)
    result.metrics["high_rps"] = float(high_rps)
    _churn_metrics(result, system, churn)
    result.metrics["throughput_jps"] = (
        stream.completed * 1_000_000 / system.now if system.now else 0.0
    )
    result.metadata["seed"] = seed
    result.notes.append(
        "phase scripts retime a live arrival process and live jobs "
        "(mid-run demand halving) — the controller must track both tides."
    )
    return result


# ----------------------------------------------------------------------
# thundering_herd
# ----------------------------------------------------------------------
@experiment(
    name="thundering_herd",
    description="Waves of simultaneous job arrivals (herd spikes)",
    tags=("churn", "smp", "controller"),
    params=(
        Param("n_cpus", kind="int", default=2, minimum=1, maximum=64),
        Param("herd_size", kind="int", default=40, minimum=1,
              help="jobs arriving at the same instant per wave"),
        Param("n_waves", kind="int", default=4, minimum=1),
        Param("wave_interval_s", kind="float", default=0.5, minimum=0.01),
        Param("job_cpu_us", kind="int", default=3_000, minimum=1),
        Param("duration_s", kind="float", default=2.2, minimum=0.05),
        Param("seed", kind="int", default=None, help="RNG seed (recorded; "
              "the herd trace is fully deterministic)"),
        _ENGINE_PARAM,
    ),
    quick={"herd_size": 15, "n_waves": 2, "wave_interval_s": 0.15,
           "duration_s": 0.5},
)
def thundering_herd_experiment(
    *,
    n_cpus: int = 2,
    herd_size: int = 40,
    n_waves: int = 4,
    wave_interval_s: float = 0.5,
    job_cpu_us: int = 3_000,
    duration_s: float = 2.2,
    seed: Optional[int] = None,
    engine: str = "horizon",
) -> ExperimentResult:
    """Every wave drops ``herd_size`` jobs on the system at one instant.

    The herd is a replayed trace with repeated timestamps — the
    calendar fires ``herd_size`` spawn events back to back at the same
    virtual time, so the scheduler's add path, the placement round and
    the controller's next tick all see the spike at once.
    """
    wave_us = seconds(wave_interval_s)
    trace = TraceArrivals.from_times(
        w * wave_us for w in range(n_waves) for _ in range(herd_size)
    )
    system = build_real_rate_system(
        n_cpus=n_cpus, record_dispatches=True, engine=engine
    )
    churn = WorkloadEngine(system.kernel, allocator=system.allocator)
    template = JobTemplate(
        "herd",
        total_cpu_us=job_cpu_us,
        burst_us=1_000,
        think_us=300,
        spec=ThreadSpec(),
    )
    churn.add_stream("herd", trace, template)
    _sample_live(system, churn)
    churn.start()
    system.run_for(seconds(duration_s))

    result = ExperimentResult(
        experiment_id="thundering_herd",
        title="Thundering-herd arrival waves",
    )
    result.metrics["herd_size"] = float(herd_size)
    result.metrics["n_waves"] = float(n_waves)
    _churn_metrics(result, system, churn)
    result.metadata["seed"] = seed
    result.notes.append(
        "all arrivals of a wave share one virtual timestamp; the spike is "
        "absorbed by the run-queue and drained before the next wave iff "
        "capacity allows (compare peak_live_jobs across waves)."
    )
    return result


# ----------------------------------------------------------------------
# flash_crowd_rt
# ----------------------------------------------------------------------
def build_flash_crowd_workload(
    *,
    n_cpus: int,
    base_rps: float,
    flash_rps: float,
    flash_start_s: float,
    flash_end_s: float,
    rt_ppt: int,
    job_cpu_us: int,
    seed: Optional[int],
    engine: str,
):
    """Assemble the flash-crowd scenario, ready to start.

    Shared between ``flash_crowd_rt`` and the SLO-controller
    head-to-head (``slo_flash_crowd``), so the two experiments drive
    bit-identical workloads: same system wiring, same templates, same
    phase script, same tracer samplers.  Returns ``(system, churn,
    stream, template, script)`` — the caller starts the engine (after
    attaching any extra controller) and runs the kernel.
    """
    if flash_end_s < flash_start_s:
        raise ValueError(
            f"flash_end_s ({flash_end_s}) must not precede flash_start_s "
            f"({flash_start_s})"
        )
    system = build_real_rate_system(
        n_cpus=n_cpus, record_dispatches=True, engine=engine
    )
    churn = WorkloadEngine(system.kernel, allocator=system.allocator)
    template = JobTemplate(
        "rt",
        total_cpu_us=job_cpu_us,
        burst_us=800,
        think_us=500,
        spec=ThreadSpec(proportion_ppt=rt_ppt, period_us=10_000),
    )
    arrivals = PoissonArrivals(base_rps, seed=seed or 0)
    stream = churn.add_stream("crowd", arrivals, template)
    script = PhaseScript()
    script.set_rate(seconds(flash_start_s), arrivals, flash_rps)
    script.set_rate(seconds(flash_end_s), arrivals, base_rps)
    scheduler = system.scheduler
    system.kernel.tracer.add_sampler(
        system.kernel.events,
        _LIVE_SAMPLE_US,
        "churn:reserved_ppt",
        lambda now: float(scheduler.total_reserved_ppt()),
    )
    _sample_live(system, churn)
    return system, churn, stream, template, script


@experiment(
    name="flash_crowd_rt",
    description="Real-time jobs with admission control under a flash crowd",
    tags=("churn", "admission", "real-time"),
    params=(
        Param("n_cpus", kind="int", default=1, minimum=1, maximum=64),
        Param("base_rps", kind="float", default=30.0, minimum=0.1),
        Param("flash_rps", kind="float", default=300.0, minimum=0.1),
        Param("flash_start_s", kind="float", default=0.6, minimum=0.0),
        Param("flash_end_s", kind="float", default=1.2, minimum=0.0),
        Param("rt_ppt", kind="int", default=80, minimum=1, maximum=1000,
              help="reserved proportion per job (parts per thousand)"),
        Param("job_cpu_us", kind="int", default=4_000, minimum=1),
        Param("duration_s", kind="float", default=2.0, minimum=0.05),
        Param("seed", kind="int", default=29),
        _ENGINE_PARAM,
    ),
    quick={"duration_s": 0.5, "flash_start_s": 0.15, "flash_end_s": 0.3},
)
def flash_crowd_rt_experiment(
    *,
    n_cpus: int = 1,
    base_rps: float = 30.0,
    flash_rps: float = 300.0,
    flash_start_s: float = 0.6,
    flash_end_s: float = 1.2,
    rt_ppt: int = 80,
    job_cpu_us: int = 4_000,
    duration_s: float = 2.0,
    seed: Optional[int] = 29,
    engine: str = "horizon",
) -> ExperimentResult:
    """A flash crowd of real-time jobs hits per-arrival admission.

    Every arrival asks for a hard reservation (``rt_ppt`` over a 10 ms
    period) and passes through
    :meth:`ProportionAllocator.would_admit` — the same partitioned
    test ``register`` enforces, so during the flash most arrivals are
    *rejected* rather than degrading admitted jobs.  Capacity freed by
    a completing job is reusable by the very next arrival.
    """
    system, churn, _stream, _template, script = build_flash_crowd_workload(
        n_cpus=n_cpus,
        base_rps=base_rps,
        flash_rps=flash_rps,
        flash_start_s=flash_start_s,
        flash_end_s=flash_end_s,
        rt_ppt=rt_ppt,
        job_cpu_us=job_cpu_us,
        seed=seed,
        engine=engine,
    )
    churn.start(script)
    system.run_for(seconds(duration_s))

    result = ExperimentResult(
        experiment_id="flash_crowd_rt",
        title="Flash crowd of real-time reservations",
    )
    _churn_metrics(result, system, churn)
    arrivals_total = churn.spawned_total() + churn.rejected_total()
    result.metrics["admit_ratio"] = (
        churn.spawned_total() / arrivals_total if arrivals_total else 0.0
    )
    reserved = system.kernel.tracer.series("churn:reserved_ppt")
    if len(reserved):
        result.metrics["peak_reserved_ppt"] = max(reserved.values())
        result.add_series("reserved_ppt", reserved.times_s(), reserved.values())
    result.metadata["seed"] = seed
    result.notes.append(
        "admission-on-arrival: the flash crowd is shed by rejecting "
        "reservations the partitioned test cannot place, never by squishing "
        "admitted real-time jobs; exits free capacity immediately."
    )
    return result


# ----------------------------------------------------------------------
# trace_replay
# ----------------------------------------------------------------------
def _default_trace() -> str:
    """The built-in sample trace: web+batch+rt arrivals over ~0.75 s."""
    entries: list[tuple[int, str]] = []
    entries += [(k * 18_000, "web") for k in range(40)]
    entries += [(5_000 + k * 90_000, "batch") for k in range(8)]
    entries += [(240_000 + k * 4_000, "rt") for k in range(12)]
    entries.sort()
    lines = ["# built-in sample trace: offset_us tag"]
    lines += [f"{offset} {tag}" for offset, tag in entries]
    return "\n".join(lines) + "\n"


DEFAULT_TRACE = _default_trace()


@experiment(
    name="trace_replay",
    description="Replay a tagged arrival trace (web/batch/rt job mix)",
    tags=("churn", "trace"),
    params=(
        Param("trace_file", kind="str", default="",
              help="trace path ('' = the built-in sample trace); lines are "
                   "'offset_us tag' with tags web, batch, rt"),
        Param("n_cpus", kind="int", default=1, minimum=1, maximum=64),
        Param("duration_s", kind="float", default=1.0, minimum=0.05),
        Param("seed", kind="int", default=None, help="RNG seed (recorded; "
              "trace replay is fully deterministic)"),
        _ENGINE_PARAM,
    ),
    quick={"duration_s": 0.4},
)
def trace_replay_experiment(
    *,
    trace_file: str = "",
    n_cpus: int = 1,
    duration_s: float = 1.0,
    seed: Optional[int] = None,
    engine: str = "horizon",
) -> ExperimentResult:
    """Drive the system with a recorded arrival trace.

    Tags select the job class per arrival: ``web`` (short interactive-
    sized), ``batch`` (long compute) and ``rt`` (admission-controlled
    reservations).  With ``trace_file=''`` a built-in sample trace is
    replayed; any file in the same ``offset_us tag`` format works.
    """
    if trace_file:
        trace = TraceArrivals.from_file(trace_file)
    else:
        trace = TraceArrivals.parse(DEFAULT_TRACE)
    system = build_real_rate_system(
        n_cpus=n_cpus, record_dispatches=True, engine=engine
    )
    churn = WorkloadEngine(system.kernel, allocator=system.allocator)
    templates = {
        "web": JobTemplate(
            "web", total_cpu_us=1_200, burst_us=400, think_us=400,
            spec=ThreadSpec(),
        ),
        "batch": JobTemplate(
            "batch", total_cpu_us=12_000, burst_us=2_000, spec=ThreadSpec(),
        ),
        "rt": JobTemplate(
            "rt", total_cpu_us=5_000, burst_us=1_000, think_us=1_000,
            spec=ThreadSpec(proportion_ppt=100, period_us=10_000),
        ),
    }
    churn.add_stream("trace", trace, templates["web"], templates=templates)
    _sample_live(system, churn)
    churn.start()
    system.run_for(seconds(duration_s))

    result = ExperimentResult(
        experiment_id="trace_replay",
        title="Tagged arrival-trace replay",
    )
    result.metrics["trace_arrivals"] = float(len(trace.entries))
    _churn_metrics(result, system, churn)
    result.metadata["seed"] = seed
    result.metadata["trace_file"] = trace_file or "<built-in>"
    result.notes.append(
        "replayed traces make production traffic shapes reproducible "
        "bit-for-bit; the same trace must fingerprint identically on both "
        "kernel engines."
    )
    return result


__all__ = [
    "DEFAULT_TRACE",
    "build_flash_crowd_workload",
    "churn_webfarm_experiment",
    "flash_crowd_rt_experiment",
    "thundering_herd_experiment",
    "tidal_pipeline_experiment",
    "trace_replay_experiment",
]
