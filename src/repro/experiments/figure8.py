"""Figure 8 — dispatch overhead vs. dispatcher frequency.

"We measured the amount of CPU available to applications by running a
program that attempts to use as much CPU as it can. […] The number
plotted is the amount of CPU the program was able to grab, normalized
to the amount it can grab on a kernel with a time-slice of 10 msec.
The graph shows the results of the higher overhead for smaller quanta,
with a knee around 4000 Hz (250 µsec).  At this point the overhead is
around 2.7%."

The reproduction sweeps the simulator's dispatch interval, runs a
CPU-grabber thread under each setting with the calibrated per-dispatch
cost charged, and reports the normalised available-CPU curve, the knee
frequency (maximum distance from the chord on a log-frequency axis, the
same visual criterion one applies to the paper's plot) and the overhead
at the knee.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.analysis.results import ExperimentResult
from repro.analysis.series import find_knee
from repro.core.config import ControllerConfig
from repro.experiments.params import ENGINE_PARAM, stamp_reproducibility
from repro.experiments.registry import Param, experiment
from repro.sim.clock import US_PER_SEC, seconds
from repro.sim.cpu import CPUModel
from repro.sim.kernel import Kernel
from repro.sim.requests import Compute
from repro.sched.rbs import ReservationScheduler
from repro.sim.thread import SchedulingPolicy, SimThread

#: Paper-reported values.
PAPER_KNEE_HZ = 4_000.0
PAPER_OVERHEAD_AT_KNEE = 0.027

#: The frequencies swept (the paper's x axis runs from 100 Hz to 10 kHz).
DEFAULT_FREQUENCIES_HZ = (100, 200, 500, 1_000, 2_000, 4_000, 6_000, 8_000, 10_000)

#: The normalisation baseline: a 10 ms time slice (100 Hz).
BASELINE_FREQUENCY_HZ = 100

#: Dispatch-cost model calibrated to the paper's curve: 2.7% overhead at
#: 4 kHz and roughly 15% at 10 kHz (the curve degrades super-linearly
#: above the knee because tiny quanta thrash the cache).
CALIBRATED_BASE_COST_US = 5.18
CALIBRATED_QUADRATIC_COST_US = 0.098


def _grabber_body(env):
    """A program that attempts to use as much CPU as it can."""
    while True:
        yield Compute(50_000)


def _available_fraction(
    frequency_hz: float, sim_seconds: float, cpu: CPUModel, engine: str
) -> tuple[float, Kernel]:
    """Fraction of the CPU a greedy thread obtains at a dispatch frequency."""
    dispatch_interval_us = max(1, int(round(US_PER_SEC / frequency_hz)))
    scheduler = ReservationScheduler()
    kernel = Kernel(
        scheduler,
        cpu=cpu,
        dispatch_interval_us=dispatch_interval_us,
        charge_dispatch_overhead=True,
        record_dispatches=True,
        engine=engine,
    )
    grabber = SimThread("grabber", _grabber_body, policy=SchedulingPolicy.BEST_EFFORT)
    kernel.add_thread(grabber)
    kernel.run_for(seconds(sim_seconds))
    return grabber.accounting.total_us / kernel.now, kernel


@experiment(
    name="figure8",
    description="Dispatch overhead vs. dispatcher frequency",
    tags=("figure", "overhead"),
    params=(
        Param(
            "frequencies_hz", kind="float_list", default=DEFAULT_FREQUENCIES_HZ,
            minimum=1.0, help="dispatcher frequencies swept",
        ),
        Param("sim_seconds", kind="float", default=2.0, minimum=0.05,
              help="virtual seconds simulated per frequency"),
        Param("dispatch_cost_us", kind="float", default=CALIBRATED_BASE_COST_US,
              minimum=0.0, help="fixed per-dispatch cost"),
        Param(
            "dispatch_cost_quadratic_us", kind="float",
            default=CALIBRATED_QUADRATIC_COST_US, minimum=0.0,
            help="super-linear per-dispatch cost term",
        ),
        Param("seed", kind="int", default=None, help="RNG seed (recorded; "
              "the grabber workload is fully deterministic)"),
        ENGINE_PARAM,
    ),
    quick={
        "frequencies_hz": (100, 1_000, 2_000, 4_000, 8_000, 10_000),
        "sim_seconds": 0.5,
    },
)
def figure8_experiment(
    *,
    frequencies_hz: Sequence[float] = DEFAULT_FREQUENCIES_HZ,
    sim_seconds: float = 2.0,
    dispatch_cost_us: float = CALIBRATED_BASE_COST_US,
    dispatch_cost_quadratic_us: float = CALIBRATED_QUADRATIC_COST_US,
    seed: Optional[int] = None,
    engine: str = "horizon",
    config: Optional[ControllerConfig] = None,
) -> ExperimentResult:
    """Reproduce Figure 8: available CPU vs. dispatcher frequency."""
    if BASELINE_FREQUENCY_HZ not in frequencies_hz:
        frequencies_hz = (BASELINE_FREQUENCY_HZ, *frequencies_hz)
    cpu = CPUModel(
        dispatch_cost_us=dispatch_cost_us,
        dispatch_cost_quadratic_us=dispatch_cost_quadratic_us,
    )

    fractions: dict[float, float] = {}
    kernels = []
    for frequency in frequencies_hz:
        fractions[frequency], kernel = _available_fraction(
            frequency, sim_seconds, cpu, engine
        )
        kernels.append(kernel)

    baseline = fractions[BASELINE_FREQUENCY_HZ]
    frequencies = sorted(fractions)
    normalised = [fractions[f] / baseline for f in frequencies]

    knee_log = find_knee([math.log10(f) for f in frequencies], normalised)
    knee_hz = 10 ** knee_log
    knee_index = min(
        range(len(frequencies)), key=lambda i: abs(frequencies[i] - knee_hz)
    )
    overhead_at_knee = 1.0 - fractions[frequencies[knee_index]]

    result = ExperimentResult(
        experiment_id="figure8",
        title="Dispatch overhead vs. dispatcher frequency",
        metrics={
            "knee_frequency_hz": knee_hz,
            "overhead_at_knee": overhead_at_knee,
            "available_at_10khz_normalised": normalised[-1],
            "available_at_baseline": baseline,
        },
        paper_values={
            "knee_frequency_hz": PAPER_KNEE_HZ,
            "overhead_at_knee": PAPER_OVERHEAD_AT_KNEE,
        },
    )
    result.add_series(
        "available_cpu_normalised_vs_hz", list(frequencies), normalised
    )
    result.add_series(
        "available_cpu_fraction_vs_hz",
        list(frequencies),
        [fractions[f] for f in frequencies],
    )
    stamp_reproducibility(result, *kernels, seed=seed)
    result.notes.append(
        "per-dispatch cost calibrated so a 4 kHz dispatcher loses ~2.7% of "
        "the CPU (the paper's knee) and a 10 kHz dispatcher ~15%; the "
        "reproduced claim is the shape of the curve and the knee's location "
        "on a log-frequency axis."
    )
    return result


def run_figure8(
    frequencies_hz: Sequence[float] = DEFAULT_FREQUENCIES_HZ,
    *,
    sim_seconds: float = 2.0,
    dispatch_cost_us: float = CALIBRATED_BASE_COST_US,
    dispatch_cost_quadratic_us: float = CALIBRATED_QUADRATIC_COST_US,
    config: Optional[ControllerConfig] = None,
    seed: Optional[int] = None,
) -> ExperimentResult:
    """Back-compat wrapper around the registered ``figure8`` experiment."""
    return figure8_experiment(
        frequencies_hz=frequencies_hz,
        sim_seconds=sim_seconds,
        dispatch_cost_us=dispatch_cost_us,
        dispatch_cost_quadratic_us=dispatch_cost_quadratic_us,
        seed=seed,
        config=config,
    )


__all__ = [
    "DEFAULT_FREQUENCIES_HZ",
    "PAPER_KNEE_HZ",
    "PAPER_OVERHEAD_AT_KNEE",
    "figure8_experiment",
    "run_figure8",
]
