"""CPU topology: sockets, cores, SMT siblings and migration cost.

The paper's prototype schedules a flat CPU set; a production-scale
deployment cares *where* a thread runs because migrating it off a warm
cache costs real time.  :class:`CpuTopology` models the machine shape
the way ``lscpu`` reports it — sockets containing physical cores
containing SMT hardware threads — and attaches a per-domain migration
penalty in **virtual microseconds**:

* re-dispatch on the same CPU: free (the warm-cache case);
* migration to the SMT sibling of the last CPU: ``smt_migration_us``
  (shared L1/L2, only pipeline state is lost);
* migration to another core of the same socket:
  ``core_migration_us`` (L1/L2 refill from the shared LLC);
* migration across sockets: ``socket_migration_us`` (LLC refill over
  the interconnect — the NUMA-remote worst case).

CPU indices are laid out socket-major, exactly like the kernel's
canonical enumeration of a homogeneous machine::

    cpu = socket * (cores_per_socket * threads_per_core) \
          + core * threads_per_core + smt

so ``CpuTopology.from_spec("2x4x2")`` — 2 sockets x 4 cores x 2 SMT
threads — numbers CPUs 0..7 on socket 0 and 8..15 on socket 1, with
(0, 1), (2, 3), ... as sibling pairs.

The topology is *immutable after construction* and all queries are
pure O(1) table lookups: the kernel charges a penalty on every
cross-CPU dispatch and the topology-aware placement policies rank
every candidate CPU per thread per round, so nothing here may allocate
or branch on mutable state (the run-to-horizon engine's cached
placement maps rely on placement being a pure function of
epoch-covered inputs plus this frozen shape).
"""

from __future__ import annotations

from typing import Iterator

#: Migration-distance classes returned by :meth:`CpuTopology.distance_class`.
SAME_CPU = 0
SMT_SIBLING = 1
SAME_SOCKET = 2
CROSS_SOCKET = 3


class CpuTopology:
    """Immutable socket/core/SMT shape with per-domain migration cost.

    Parameters
    ----------
    sockets, cores_per_socket, threads_per_core:
        The machine shape; every dimension must be at least 1.
    smt_migration_us, core_migration_us, socket_migration_us:
        Virtual-microsecond penalty charged (as stolen time, to no
        thread) when a thread is dispatched on a CPU in the given
        domain relative to the CPU it last ran on.  All default to 0,
        so a topology can be used purely structurally (placement
        quality without a cost model) — and a zero-penalty topology
        provably never moves a dispatch-log timestamp.
    """

    def __init__(
        self,
        sockets: int,
        cores_per_socket: int,
        threads_per_core: int,
        *,
        smt_migration_us: int = 0,
        core_migration_us: int = 0,
        socket_migration_us: int = 0,
    ) -> None:
        for label, value in (
            ("sockets", sockets),
            ("cores_per_socket", cores_per_socket),
            ("threads_per_core", threads_per_core),
        ):
            if value < 1:
                raise ValueError(f"{label} must be at least 1, got {value}")
        for label, value in (
            ("smt_migration_us", smt_migration_us),
            ("core_migration_us", core_migration_us),
            ("socket_migration_us", socket_migration_us),
        ):
            if value < 0:
                raise ValueError(f"{label} cannot be negative, got {value}")
        self.sockets = int(sockets)
        self.cores_per_socket = int(cores_per_socket)
        self.threads_per_core = int(threads_per_core)
        self.smt_migration_us = int(smt_migration_us)
        self.core_migration_us = int(core_migration_us)
        self.socket_migration_us = int(socket_migration_us)
        self.n_cpus = self.sockets * self.cores_per_socket * self.threads_per_core
        per_socket = self.cores_per_socket * self.threads_per_core
        #: cpu -> socket id / global core id, precomputed so the
        #: per-dispatch penalty lookup is two list reads.
        self._socket_of = [cpu // per_socket for cpu in range(self.n_cpus)]
        self._core_of = [
            cpu // self.threads_per_core for cpu in range(self.n_cpus)
        ]
        self._siblings = [
            tuple(
                range(
                    core * self.threads_per_core,
                    (core + 1) * self.threads_per_core,
                )
            )
            for core in range(self.sockets * self.cores_per_socket)
        ]
        self._socket_cpus = [
            tuple(range(s * per_socket, (s + 1) * per_socket))
            for s in range(self.sockets)
        ]

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(
        cls,
        spec: str,
        *,
        smt_migration_us: int = 0,
        core_migration_us: int = 0,
        socket_migration_us: int = 0,
    ) -> "CpuTopology":
        """Parse an ``lscpu``-style shape string.

        ``"2x4x2"`` is 2 sockets x 4 cores x 2 SMT threads; ``"2x4"``
        leaves SMT off (1 thread per core) and a bare ``"8"`` is a
        single-socket 8-core part — the flat machine every existing
        experiment models.
        """
        parts = spec.lower().split("x")
        if not 1 <= len(parts) <= 3:
            raise ValueError(
                f"topology spec {spec!r} must be 'S', 'SxC' or 'SxCxT'"
            )
        try:
            dims = [int(p) for p in parts]
        except ValueError:
            raise ValueError(
                f"topology spec {spec!r} has a non-integer dimension"
            ) from None
        if len(parts) == 1:
            sockets, cores, threads = 1, dims[0], 1
        elif len(parts) == 2:
            sockets, cores, threads = dims[0], dims[1], 1
        else:
            sockets, cores, threads = dims
        return cls(
            sockets,
            cores,
            threads,
            smt_migration_us=smt_migration_us,
            core_migration_us=core_migration_us,
            socket_migration_us=socket_migration_us,
        )

    def spec(self) -> str:
        """The canonical ``SxCxT`` shape string."""
        return f"{self.sockets}x{self.cores_per_socket}x{self.threads_per_core}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CpuTopology({self.spec()}, smt={self.smt_migration_us}us, "
            f"core={self.core_migration_us}us, "
            f"socket={self.socket_migration_us}us)"
        )

    # ------------------------------------------------------------------
    # shape queries (all O(1))
    # ------------------------------------------------------------------
    def _check(self, cpu: int) -> None:
        if not 0 <= cpu < self.n_cpus:
            raise ValueError(
                f"CPU {cpu} outside topology {self.spec()} "
                f"({self.n_cpus} CPUs)"
            )

    def socket_of(self, cpu: int) -> int:
        """Socket id of ``cpu``."""
        self._check(cpu)
        return self._socket_of[cpu]

    def core_of(self, cpu: int) -> int:
        """Global physical-core id of ``cpu`` (unique across sockets)."""
        self._check(cpu)
        return self._core_of[cpu]

    def siblings(self, cpu: int) -> tuple[int, ...]:
        """All hardware threads of ``cpu``'s physical core, itself included."""
        self._check(cpu)
        return self._siblings[self._core_of[cpu]]

    def cpus_of_socket(self, socket: int) -> tuple[int, ...]:
        """CPU indices belonging to ``socket``, ascending."""
        if not 0 <= socket < self.sockets:
            raise ValueError(
                f"socket {socket} outside topology {self.spec()}"
            )
        return self._socket_cpus[socket]

    def cpus_of_core(self, core: int) -> tuple[int, ...]:
        """CPU indices of global core ``core``, ascending."""
        if not 0 <= core < len(self._siblings):
            raise ValueError(f"core {core} outside topology {self.spec()}")
        return self._siblings[core]

    def iter_cores(self) -> Iterator[tuple[int, tuple[int, ...]]]:
        """Yield ``(global core id, its CPU indices)`` in core order."""
        return iter(enumerate(self._siblings))

    # ------------------------------------------------------------------
    # migration cost
    # ------------------------------------------------------------------
    def distance_class(self, src: int, dst: int) -> int:
        """Topological distance of a ``src -> dst`` migration.

        :data:`SAME_CPU` (0) < :data:`SMT_SIBLING` (1) <
        :data:`SAME_SOCKET` (2) < :data:`CROSS_SOCKET` (3) — the
        preference order the cache-warm placement ranks candidates by.
        """
        self._check(src)
        self._check(dst)
        if src == dst:
            return SAME_CPU
        if self._core_of[src] == self._core_of[dst]:
            return SMT_SIBLING
        if self._socket_of[src] == self._socket_of[dst]:
            return SAME_SOCKET
        return CROSS_SOCKET

    def migration_penalty_us(self, src: int, dst: int) -> int:
        """Virtual microseconds charged for dispatching on ``dst`` a
        thread whose last dispatch ran on ``src``.  Zero when they are
        the same CPU."""
        self._check(src)
        self._check(dst)
        if src == dst:
            return 0
        if self._core_of[src] == self._core_of[dst]:
            return self.smt_migration_us
        if self._socket_of[src] == self._socket_of[dst]:
            return self.core_migration_us
        return self.socket_migration_us


__all__ = [
    "CROSS_SOCKET",
    "CpuTopology",
    "SAME_CPU",
    "SAME_SOCKET",
    "SMT_SIBLING",
]
