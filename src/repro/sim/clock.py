"""Virtual time.

All simulation time is kept as an integer number of microseconds since
the start of the simulation.  Integer time makes the simulation exactly
reproducible (no floating point drift when summing many small dispatch
intervals) and matches the paper's discussion of accounting
granularity: the prototype dispatches on a 1 ms timer but Section 4.3
considers microsecond-granularity accounting, which this clock supports
directly.
"""

from __future__ import annotations

#: Microseconds per millisecond, exposed for readability in configs.
US_PER_MS = 1_000

#: Microseconds per second.
US_PER_SEC = 1_000_000


def ms(value: float) -> int:
    """Convert milliseconds to integer microseconds."""
    return int(round(value * US_PER_MS))


def seconds(value: float) -> int:
    """Convert seconds to integer microseconds."""
    return int(round(value * US_PER_SEC))


def to_seconds(us: int) -> float:
    """Convert integer microseconds to floating-point seconds."""
    return us / US_PER_SEC


def to_ms(us: int) -> float:
    """Convert integer microseconds to floating-point milliseconds."""
    return us / US_PER_MS


class SimClock:
    """A monotonically non-decreasing virtual clock.

    The clock can only move forward; attempts to move it backwards
    indicate a bug in the event loop and raise ``ValueError``.
    """

    __slots__ = ("_now",)

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start before zero, got {start}")
        self._now = int(start)

    @property
    def now(self) -> int:
        """Current virtual time in microseconds."""
        return self._now

    @property
    def now_seconds(self) -> float:
        """Current virtual time in seconds (convenience for reporting)."""
        return to_seconds(self._now)

    def advance_to(self, t: int) -> None:
        """Move the clock forward to absolute time ``t`` microseconds."""
        if t < self._now:
            raise ValueError(
                f"clock cannot move backwards: now={self._now}, requested={t}"
            )
        self._now = int(t)

    def advance_by(self, delta: int) -> None:
        """Move the clock forward by ``delta`` microseconds."""
        if delta < 0:
            raise ValueError(f"cannot advance clock by negative delta {delta}")
        self._now += int(delta)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now}us)"
