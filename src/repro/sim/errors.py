"""Exception hierarchy for the simulation substrate."""


class SimulationError(Exception):
    """Base class for all errors raised by the simulation substrate."""


class SimulationFinished(SimulationError):
    """Raised internally when the simulation has nothing left to do.

    The kernel converts this into a normal return from
    :meth:`repro.sim.kernel.Kernel.run_until`; user code only sees it if
    it drives the event queue directly.
    """


class ThreadStateError(SimulationError):
    """A thread was asked to perform an operation invalid in its state.

    Examples: running an exited thread, blocking a thread that is not
    running, or yielding a request from a thread that already exited.
    """


class DeadlockError(SimulationError):
    """All threads are blocked and no future event can unblock them.

    The kernel raises this instead of silently fast-forwarding to the
    end of the simulation so that workload bugs (e.g. a consumer asking
    for a block larger than the producer ever writes) surface loudly.
    """


class ChannelError(SimulationError):
    """Invalid operation on an IPC channel (e.g. oversized put)."""


class SchedulerError(SimulationError):
    """Invalid scheduler configuration or use (e.g. unknown thread)."""
