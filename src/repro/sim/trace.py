"""Tracing and time-series collection.

Every experiment in the paper is reported as a time series (allocation
over time, queue fill level over time, progress rate over time) or as a
scalar derived from one (overhead fraction, response time).  The
:class:`Tracer` collects named ``(time, value)`` series during a
simulation run; the analysis package turns them into the figures.
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from typing import Callable, Iterable, NamedTuple, Optional

from repro.sim.clock import to_seconds
from repro.sim.events import EventQueue, PeriodicEvent


class TracePoint(NamedTuple):
    """A single sample: virtual time (us) and a float value.

    A named tuple because controller tracing appends one per decision
    per tick — creation cost is on the hot path.
    """

    time_us: int
    value: float

    @property
    def time_s(self) -> float:
        """Sample time in seconds."""
        return to_seconds(self.time_us)


class TraceSeries:
    """An append-only, time-ordered series of samples."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._points: list[TracePoint] = []

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self):
        return iter(self._points)

    def __getitem__(self, index: int) -> TracePoint:
        return self._points[index]

    def append(self, time_us: int, value: float) -> None:
        """Append a sample; time must be non-decreasing."""
        points = self._points
        if points and time_us < points[-1].time_us:
            raise ValueError(
                f"series {self.name!r}: sample at {time_us}us is earlier than "
                f"previous sample at {points[-1].time_us}us"
            )
        points.append(TracePoint(int(time_us), float(value)))

    def times(self) -> list[int]:
        """All sample times in microseconds."""
        return [p.time_us for p in self._points]

    def times_s(self) -> list[float]:
        """All sample times in seconds."""
        return [p.time_s for p in self._points]

    def values(self) -> list[float]:
        """All sample values."""
        return [p.value for p in self._points]

    def last(self) -> Optional[TracePoint]:
        """The most recent sample, or ``None`` if empty."""
        return self._points[-1] if self._points else None

    def value_at(self, time_us: int) -> float:
        """Value of the most recent sample at or before ``time_us``.

        Raises ``ValueError`` if no sample exists that early.
        """
        candidate: Optional[TracePoint] = None
        for point in self._points:
            if point.time_us <= time_us:
                candidate = point
            else:
                break
        if candidate is None:
            raise ValueError(
                f"series {self.name!r} has no sample at or before {time_us}us"
            )
        return candidate.value

    def window(self, start_us: int, end_us: int) -> list[TracePoint]:
        """Samples with ``start_us <= time < end_us``."""
        return [p for p in self._points if start_us <= p.time_us < end_us]

    def mean(self) -> float:
        """Arithmetic mean of the values (0.0 for an empty series)."""
        if not self._points:
            return 0.0
        return sum(p.value for p in self._points) / len(self._points)


class Tracer:
    """Collects named :class:`TraceSeries` during a simulation."""

    def __init__(self) -> None:
        self._series: dict[str, TraceSeries] = {}
        self._samplers: list[PeriodicEvent] = []

    def series(self, name: str) -> TraceSeries:
        """Get (creating if needed) the series called ``name``."""
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = TraceSeries(name)
        return series

    def record(self, name: str, time_us: int, value: float) -> None:
        """Append a sample to the series called ``name``."""
        self.series(name).append(time_us, value)

    def names(self) -> list[str]:
        """All series names, in creation order."""
        return list(self._series)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def add_sampler(
        self,
        events: EventQueue,
        period_us: int,
        name: str,
        probe: Callable[[int], float],
        start_us: int = 0,
    ) -> PeriodicEvent:
        """Sample ``probe(now)`` every ``period_us`` into series ``name``.

        Returns the underlying :class:`PeriodicEvent` so callers can
        stop the sampler.
        """

        def _sample(now: int) -> None:
            self.record(name, now, probe(now))

        sampler = PeriodicEvent(
            events, period_us, _sample, start=start_us, label=f"sampler:{name}"
        )
        self._samplers.append(sampler)
        return sampler

    def stop_samplers(self) -> None:
        """Stop all periodic samplers registered through this tracer."""
        for sampler in self._samplers:
            sampler.stop()
        self._samplers.clear()

    def fingerprint(self) -> str:
        """SHA-256 digest of every series' exact samples.

        Series are hashed in sorted name order and each sample by its
        integer time and ``repr`` of its float value, so two runs have
        equal fingerprints iff their traces are byte-identical.  Used
        by the determinism regression tests.
        """
        digest = hashlib.sha256()
        for name in sorted(self._series):
            digest.update(name.encode())
            digest.update(b"\x00")
            for point in self._series[name]:
                digest.update(f"{point.time_us}:{point.value!r};".encode())
        return digest.hexdigest()


__all__ = ["TracePoint", "TraceSeries", "Tracer"]
