"""Tracing and time-series collection.

Every experiment in the paper is reported as a time series (allocation
over time, queue fill level over time, progress rate over time) or as a
scalar derived from one (overhead fraction, response time).  The
:class:`Tracer` collects named ``(time, value)`` series during a
simulation run; the analysis package turns them into the figures.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left, bisect_right
from typing import Callable, Iterator, NamedTuple, Optional

from repro.sim.clock import to_seconds
from repro.sim.events import EventQueue, PeriodicEvent


class TracePoint(NamedTuple):
    """A single sample: virtual time (us) and a float value.

    A named tuple because controller tracing appends one per decision
    per tick — creation cost is on the hot path.
    """

    time_us: int
    value: float

    @property
    def time_s(self) -> float:
        """Sample time in seconds."""
        return to_seconds(self.time_us)


class TraceSeries:
    """An append-only, time-ordered series of samples.

    Samples are stored as two parallel lists (times and values) and
    materialised into :class:`TracePoint` tuples on access: controller
    tracing appends one sample per decision per tick, so the append
    path must be two list appends, not a namedtuple construction.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._times: list[int] = []
        self._values: list[float] = []

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[TracePoint]:
        return map(TracePoint, self._times, self._values)

    def __getitem__(self, index: int) -> TracePoint:
        if isinstance(index, slice):
            return [
                TracePoint(t, v)
                for t, v in zip(self._times[index], self._values[index])
            ]
        return TracePoint(self._times[index], self._values[index])

    def append(self, time_us: int, value: float) -> None:
        """Append a sample; time must be non-decreasing."""
        times = self._times
        if times and time_us < times[-1]:
            raise ValueError(
                f"series {self.name!r}: sample at {time_us}us is earlier than "
                f"previous sample at {times[-1]}us"
            )
        times.append(int(time_us))
        self._values.append(float(value))

    def times(self) -> list[int]:
        """All sample times in microseconds."""
        return list(self._times)

    def times_s(self) -> list[float]:
        """All sample times in seconds."""
        return [to_seconds(t) for t in self._times]

    def values(self) -> list[float]:
        """All sample values."""
        return list(self._values)

    def last(self) -> Optional[TracePoint]:
        """The most recent sample, or ``None`` if empty."""
        if not self._times:
            return None
        return TracePoint(self._times[-1], self._values[-1])

    def value_at(self, time_us: int) -> float:
        """Value of the most recent sample at or before ``time_us``.

        Raises ``ValueError`` if no sample exists that early.
        """
        times = self._times
        index = bisect_right(times, time_us) - 1
        if index < 0:
            raise ValueError(
                f"series {self.name!r} has no sample at or before {time_us}us"
            )
        return self._values[index]

    def window(self, start_us: int, end_us: int) -> list[TracePoint]:
        """Samples with ``start_us <= time < end_us``."""
        times = self._times
        lo = bisect_left(times, start_us)
        hi = bisect_left(times, end_us)
        values = self._values
        return [TracePoint(times[i], values[i]) for i in range(lo, hi)]

    def mean(self) -> float:
        """Arithmetic mean of the values (0.0 for an empty series)."""
        if not self._values:
            return 0.0
        return sum(self._values) / len(self._values)


class Tracer:
    """Collects named :class:`TraceSeries` during a simulation."""

    def __init__(self) -> None:
        self._series: dict[str, TraceSeries] = {}
        self._samplers: list[PeriodicEvent] = []

    def series(self, name: str) -> TraceSeries:
        """Get (creating if needed) the series called ``name``."""
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = TraceSeries(name)
        return series

    def record(self, name: str, time_us: int, value: float) -> None:
        """Append a sample to the series called ``name``."""
        self.series(name).append(time_us, value)

    def names(self) -> list[str]:
        """All series names, in creation order."""
        return list(self._series)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def add_sampler(
        self,
        events: EventQueue,
        period_us: int,
        name: str,
        probe: Callable[[int], float],
        start_us: int = 0,
    ) -> PeriodicEvent:
        """Sample ``probe(now)`` every ``period_us`` into series ``name``.

        Returns the underlying :class:`PeriodicEvent` so callers can
        stop the sampler.
        """

        def _sample(now: int) -> None:
            self.record(name, now, probe(now))

        sampler = PeriodicEvent(
            events, period_us, _sample, start=start_us, label=f"sampler:{name}"
        )
        self._samplers.append(sampler)
        return sampler

    def stop_samplers(self) -> None:
        """Stop all periodic samplers registered through this tracer."""
        for sampler in self._samplers:
            sampler.stop()
        self._samplers.clear()

    def fingerprint(self) -> str:
        """SHA-256 digest of every series' exact samples.

        Series are hashed in sorted name order and each sample by its
        integer time and ``repr`` of its float value, so two runs have
        equal fingerprints iff their traces are byte-identical.  Used
        by the determinism regression tests.
        """
        digest = hashlib.sha256()
        for name in sorted(self._series):
            digest.update(name.encode())
            digest.update(b"\x00")
            for point in self._series[name]:
                digest.update(f"{point.time_us}:{point.value!r};".encode())
        return digest.hexdigest()


__all__ = ["TracePoint", "TraceSeries", "Tracer"]
