"""Event queue for the discrete-event simulation.

Events are ``(time, sequence, callback)`` triples kept in a binary heap.
The sequence number makes ordering deterministic when several events are
scheduled for the same microsecond: they fire in the order they were
scheduled, which keeps every experiment exactly reproducible run to run.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Attributes
    ----------
    time:
        Absolute virtual time (microseconds) at which the event fires.
    seq:
        Tie-breaker assigned by the queue; earlier-scheduled events fire
        first at equal times.
    callback:
        Callable invoked with no arguments when the event fires.
    cancelled:
        Cancelled events stay in the heap (cheap lazy deletion) but are
        skipped when popped.
    label:
        Optional human-readable tag used in traces and error messages.
    """

    time: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)

    def cancel(self) -> None:
        """Mark the event so it is skipped when its time arrives."""
        self.cancelled = True


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def schedule(
        self, time: int, callback: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``callback`` to run at absolute time ``time``.

        Returns the :class:`Event`, which the caller may later
        :meth:`Event.cancel`.
        """
        if time < 0:
            raise ValueError(f"cannot schedule event at negative time {time}")
        event = Event(time=int(time), seq=next(self._counter), callback=callback,
                      label=label)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def next_time(self) -> Optional[int]:
        """Time of the earliest pending (non-cancelled) event, or ``None``."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop_due(self, now: int) -> Optional[Event]:
        """Pop the earliest event with ``time <= now``, or ``None``."""
        self._drop_cancelled()
        if self._heap and self._heap[0].time <= now:
            event = heapq.heappop(self._heap)
            self._live -= 1
            return event
        return None

    def peek(self) -> Optional[Event]:
        """Return (without removing) the earliest pending event."""
        self._drop_cancelled()
        return self._heap[0] if self._heap else None

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()
        self._live = 0

    def pending(self) -> list[Event]:
        """Snapshot of non-cancelled events in firing order.

        Introspection only (tests, tracing tools); popping still goes
        through :meth:`pop_due`.
        """
        return sorted(event for event in self._heap if not event.cancelled)

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._live -= 1


class EventCalendar(EventQueue):
    """The kernel's unified event calendar.

    One lazy min-heap (inherited from :class:`EventQueue`) holds every
    *scheduled* occurrence — one-shot timers, sleep and I/O wake-ups,
    workload arrivals and the controller's periodic tick — while
    *derived* transition times that would be expensive to keep
    materialised (a reservation scheduler's next replenishment, which
    moves on every charge) are merged in lazily from registered
    sources.  :meth:`next_transition` answers the one question the
    run-to-horizon kernel asks: *when can the dispatch decision next
    change for a time-driven reason?* — letting ``run_until`` jump
    event-to-event instead of polling every quantum.
    """

    def __init__(self) -> None:
        super().__init__()
        self._sources: list[Callable[[int], Optional[int]]] = []

    def add_source(self, source: Callable[[int], Optional[int]]) -> None:
        """Register a lazy transition source (``now -> time or None``)."""
        self._sources.append(source)

    def next_transition(self, now: int) -> Optional[int]:
        """Earliest pending event or source-reported transition time."""
        earliest = self.next_time()
        for source in self._sources:
            t = source(now)
            if t is not None and (earliest is None or t < earliest):
                earliest = t
        return earliest


class PeriodicEvent:
    """A self-rescheduling event firing every ``period`` microseconds.

    Used for the controller's sampling loop and for trace samplers.  The
    callback receives the firing time.  The next firing is computed from
    the *nominal* schedule (start + k * period) rather than from the
    actual firing time, so long callbacks do not cause drift.
    """

    def __init__(
        self,
        queue: EventQueue,
        period: int,
        callback: Callable[[int], None],
        start: int = 0,
        label: str = "",
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._queue = queue
        self._period = int(period)
        self._callback = callback
        self._label = label
        self._next_time = int(start)
        self._stopped = False
        self._pending: Optional[Event] = None
        self._arm()

    @property
    def period(self) -> int:
        """Current firing period in microseconds."""
        return self._period

    @period.setter
    def period(self, value: int) -> None:
        if value <= 0:
            raise ValueError(f"period must be positive, got {value}")
        self._period = int(value)

    def stop(self) -> None:
        """Stop firing; any pending occurrence is cancelled."""
        self._stopped = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def _arm(self) -> None:
        if self._stopped:
            return
        self._pending = self._queue.schedule(
            self._next_time, self._fire, label=self._label
        )

    def _fire(self) -> None:
        if self._stopped:
            return
        fire_time = self._next_time
        self._next_time = fire_time + self._period
        self._arm()
        self._callback(fire_time)


__all__ = ["Event", "EventCalendar", "EventQueue", "PeriodicEvent"]
