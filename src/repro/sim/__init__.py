"""Discrete-event simulation substrate.

The paper implements its reservation-based scheduler inside the Linux
2.0.35 kernel and drives it with real applications.  A Python
reproduction cannot perform genuine preemptive CPU scheduling (the GIL
serialises execution and the interpreter cannot revoke the CPU from a
thread), so this package provides the substrate the rest of the library
runs on: a deterministic discrete-event simulation of one or more CPUs,
their timer interrupts, a dispatcher hook, blocking IPC and sleeping
threads.  Multiprocessor simulation uses lockstep dispatch rounds (see
:mod:`repro.sim.kernel`); with one CPU the model is exactly the paper's
uniprocessor testbed.

The important properties preserved from the paper's testbed are:

* time advances in integer microseconds and the dispatcher is invoked
  at a configurable dispatch interval (1 ms by default, matching the
  paper's timer interval);
* threads are charged for the CPU they actually consume, at microsecond
  granularity, so proportion/period accounting behaves like the paper's
  in-kernel accounting;
* threads block on bounded buffers, pipes, sockets, mutexes, sleeps and
  simulated I/O exactly where a real thread would block, which is what
  produces the fill-level signals the feedback controller consumes.

Public entry points
-------------------
:class:`~repro.sim.kernel.Kernel`
    The simulated machine: owns the clock, the event queue, the
    scheduler, all threads and all IPC channels.
:class:`~repro.sim.thread.SimThread`
    A simulated thread whose behaviour is described by a generator
    yielding :mod:`repro.sim.requests` objects.
:mod:`repro.sim.requests`
    The "system call" vocabulary available to thread bodies.
"""

from repro.sim.clock import SimClock
from repro.sim.cpu import CPUModel, CPUState
from repro.sim.errors import (
    DeadlockError,
    SimulationError,
    SimulationFinished,
    ThreadStateError,
)
from repro.sim.events import Event, EventQueue
from repro.sim.kernel import Kernel
from repro.sim.requests import (
    AcquireMutex,
    Compute,
    Exit,
    Get,
    Put,
    ReleaseMutex,
    Sleep,
    WaitIO,
    Yield,
)
from repro.sim.thread import SimThread, ThreadState
from repro.sim.trace import Tracer

__all__ = [
    "AcquireMutex",
    "CPUModel",
    "CPUState",
    "Compute",
    "DeadlockError",
    "Event",
    "EventQueue",
    "Exit",
    "Get",
    "Kernel",
    "Put",
    "ReleaseMutex",
    "SimClock",
    "SimThread",
    "SimulationError",
    "SimulationFinished",
    "Sleep",
    "ThreadState",
    "ThreadStateError",
    "Tracer",
    "WaitIO",
    "Yield",
]
