"""The simulated machine.

:class:`Kernel` owns the virtual clock, the event queue, a pluggable
scheduler, all threads and the IPC channels they communicate over.  It
plays the role of the paper's modified Linux kernel: it dispatches
threads at a fixed dispatch interval (the paper's 1 ms timer), charges
CPU accounting at microsecond granularity, blocks threads on bounded
buffers / pipes / sockets / mutexes / sleeps / simulated I/O, and wakes
them when the blocking condition clears.

The scheduler decides *which* runnable thread runs next and for how
long; the kernel mechanically executes that decision.  The adaptive
controller of :mod:`repro.core` is layered on top: it is driven by a
periodic event and only talks to the scheduler (to set proportion and
period) and to the symbiotic-interface registry (to read fill levels).

Multi-CPU model
---------------
The paper's prototype is single-CPU; ``Kernel(scheduler, n_cpus=N)``
generalises it to a homogeneous SMP.  The simulation stays a
deterministic discrete-event system by executing *dispatch rounds*:

1. At round start (virtual time ``t0``) all due events fire, then the
   scheduler's placement policy maps runnable threads to CPUs and each
   CPU picks at most one thread (:meth:`Scheduler.pick_next_cpu`,
   in CPU-index order — a thread claimed by a lower-numbered CPU is
   invisible to higher ones).
2. Every picked thread runs a slice *in parallel over the same wall
   window* ``[t0, h)``, where ``h`` is capped by the slice lengths, the
   next pending event and the end of the run.  Internally the CPUs'
   slices are simulated one CPU at a time with a per-CPU local clock
   that starts at ``t0``; ``Kernel.now`` reads that local clock while a
   slice executes, so sleeps, I/O completions and IPC commits performed
   mid-slice are stamped with the correct intra-window time.
3. The global clock then advances to the latest local end time.  A CPU
   whose thread blocked early idles until the round ends — exactly the
   timer-quantised re-dispatch latency of the paper's prototype, now
   per CPU — and wake-ups produced mid-round become visible to the
   other CPUs at the next round boundary.

With ``n_cpus=1`` (the default) the kernel runs the original
uniprocessor loop unchanged — same operation order, same arithmetic —
so every seed experiment and figure reproduction is bit-identical.
Accounting totals (``idle_us``, ``stolen_dispatch_us``,
``dispatch_count``) aggregate the per-CPU :class:`CPUState` records and
are expressed in CPU-microseconds, so the conservation identity
``total_thread_cpu + idle + stolen + offline == n_cpus * now`` holds
for every CPU count (``offline`` is zero unless :meth:`Kernel.fail_cpu`
took a CPU down — failed CPUs accrue ``offline_us`` instead of idle
time, see the CPU-hotplug section below).

Run-to-horizon engine
---------------------
Most quanta are boring: the same thread keeps computing, no event is
due, and the scheduler would re-pick it with no side effects.  With
``engine="horizon"`` (the default) the kernel proves that cheaply and
skips the event poll, the pick and (on SMP) the placement round for
such quanta, re-entering the full machinery only at a *transition*:

* the unified :class:`~repro.sim.events.EventCalendar` says an event
  (timer, controller tick, workload arrival, sleep/I/O wake-up) or a
  lazily-merged scheduler wake-up (reservation replenishment) is due;
* the scheduler's :attr:`~repro.sched.base.Scheduler.state_epoch`
  moved (a wake, block, exit, actuation or budget exhaustion);
* the scheduler's declared
  :meth:`~repro.sched.base.Scheduler.preemption_horizon` is reached (a
  pick-time side effect such as a period-window roll becomes due);
* the dispatch ended any way other than slice expiry.

Every quantum still charges the same accounting (dispatch counts,
overhead accumulators, per-quantum ``Scheduler.charge`` calls, dispatch
log entries) at the same virtual times, so dispatch logs, trace
fingerprints, deadline misses and the conservation identity are
bit-identical to ``engine="quantum"`` — the original quantum-sliced
loop, kept as the differential-testing oracle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.sim.clock import US_PER_SEC, SimClock
from repro.sim.cpu import CPUModel, CPUState
from repro.sim.errors import DeadlockError, SimulationError, ThreadStateError
from repro.sim.events import EventCalendar, PeriodicEvent
from repro.sim.requests import (
    AcquireMutex,
    Compute,
    Exit,
    Get,
    Put,
    ReleaseMutex,
    Request,
    Sleep,
    WaitIO,
    Yield,
)
from repro.sim.thread import SimThread, ThreadBody, ThreadEnv, ThreadState
from repro.sim.topology import CpuTopology
from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.ipc.bounded_buffer import Channel
    from repro.ipc.mutex import Mutex
    from repro.sched.base import Scheduler

#: Default dispatch interval: 1 ms, matching the paper's timer interval.
DEFAULT_DISPATCH_INTERVAL_US = 1_000


class _DispatchOutcome:
    """Reasons a dispatch slice ended (internal bookkeeping constants)."""

    PREEMPTED = "preempted"
    BLOCKED = "blocked"
    SLEEPING = "sleeping"
    YIELDED = "yielded"
    EXITED = "exited"


class Kernel:
    """A simulated system with one or more CPUs.

    Parameters
    ----------
    scheduler:
        The dispatcher policy (see :mod:`repro.sched`).  The kernel
        attaches itself to the scheduler so the scheduler can query the
        dispatch interval and CPU count.
    n_cpus:
        Number of identical CPUs.  The default of 1 reproduces the
        paper's uniprocessor prototype exactly; larger values enable
        the dispatch-round SMP model described in the module docstring.
    topology:
        Optional :class:`~repro.sim.topology.CpuTopology` describing
        the socket/core/SMT shape of the machine and its per-domain
        migration penalties.  When given with the default ``n_cpus``,
        the kernel adopts the topology's CPU count; an explicit
        ``n_cpus`` must match it.  Every dispatch of a thread whose
        previous dispatch ran on a different CPU then charges the
        topology's migration penalty as stolen time (visible in the
        dispatch log as a sixth tuple element, so both engines stay
        bit-identical); a ``None`` topology — or one with all-zero
        penalties — charges nothing and leaves the dispatch log in its
        historical 5-tuple form.  Migration *counts* are tracked on
        every multiprocessor kernel regardless.
    cpu:
        CPU cost model; controls the per-dispatch overhead charged as
        stolen time (shared by all CPUs — homogeneous SMP).
    dispatch_interval_us:
        The timer interval bounding how long a thread may run before
        the dispatcher is re-entered.
    tracer:
        Optional shared tracer; one is created if not supplied.
    charge_dispatch_overhead:
        When ``False`` the per-dispatch CPU cost is not charged, which
        makes the controller-dynamics experiments (Figures 6 and 7)
        independent of the overhead model.
    deadlock_detection:
        When ``True`` (default) the kernel raises :class:`DeadlockError`
        if threads remain blocked with no possible future wake-up.
    syscall_cost_us:
        CPU charged to a thread for every non-compute request (put, get,
        sleep, mutex operation…).  Besides being realistic, a non-zero
        cost guarantees that a thread issuing only zero-cost requests
        still makes the clock advance.
    record_dispatches:
        When ``True`` the kernel appends one
        ``(time_us, cpu, thread_name, outcome, consumed_us)`` tuple to
        :attr:`dispatch_log` per dispatch — the full scheduling order,
        used by the determinism regression tests.  A dispatch that
        charged a migration penalty appends the penalty as a sixth
        element, making the cost part of the log's identity.
    engine:
        ``"horizon"`` (default) runs the run-to-horizon engine, which
        batches provably-identical quanta between transitions;
        ``"quantum"`` runs the original quantum-sliced loop.  The two
        are bit-identical in every observable (dispatch logs, traces,
        accounting); ``"quantum"`` is kept as the oracle for the
        differential test suite.
    """

    #: Engines accepted by the ``engine`` parameter.
    ENGINES = ("horizon", "quantum")

    def __init__(
        self,
        scheduler: "Scheduler",
        *,
        n_cpus: int = 1,
        topology: Optional[CpuTopology] = None,
        cpu: Optional[CPUModel] = None,
        dispatch_interval_us: int = DEFAULT_DISPATCH_INTERVAL_US,
        tracer: Optional[Tracer] = None,
        charge_dispatch_overhead: bool = True,
        deadlock_detection: bool = True,
        syscall_cost_us: int = 1,
        record_dispatches: bool = False,
        engine: str = "horizon",
    ) -> None:
        if dispatch_interval_us <= 0:
            raise ValueError(
                f"dispatch interval must be positive, got {dispatch_interval_us}"
            )
        if n_cpus < 1:
            raise ValueError(f"kernel needs at least one CPU, got {n_cpus}")
        if topology is not None:
            if n_cpus == 1:
                n_cpus = topology.n_cpus
            elif topology.n_cpus != n_cpus:
                raise ValueError(
                    f"topology {topology.spec()} has {topology.n_cpus} "
                    f"CPU(s) but the kernel was given n_cpus={n_cpus}"
                )
        if engine not in self.ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {self.ENGINES}"
            )
        self.engine = engine
        self._batch_dispatches = engine == "horizon"
        self.clock = SimClock()
        #: The unified event calendar: one lazy min-heap for timers,
        #: controller ticks, wake-ups and workload arrivals, with the
        #: scheduler's replenishment times merged in lazily (the
        #: scheduler source is registered in ``attach`` below).
        self.events = EventCalendar()
        self.cpu = cpu if cpu is not None else CPUModel()
        self.tracer = tracer if tracer is not None else Tracer()
        self.scheduler = scheduler
        self.n_cpus = int(n_cpus)
        self.dispatch_interval_us = int(dispatch_interval_us)
        self.charge_dispatch_overhead = charge_dispatch_overhead
        self.deadlock_detection = deadlock_detection
        if syscall_cost_us < 0:
            raise ValueError(
                f"syscall cost cannot be negative, got {syscall_cost_us}"
            )
        self.syscall_cost_us = int(syscall_cost_us)

        self.threads: list[SimThread] = []
        #: Mirror of ``threads`` for O(1) duplicate detection.
        self._thread_tids: set[int] = set()
        #: Per-CPU run state; aggregates are exposed as properties.
        self.cpu_states: list[CPUState] = [CPUState(i) for i in range(self.n_cpus)]
        #: Online/offline partitions of ``cpu_states`` (index order),
        #: rebuilt by :meth:`fail_cpu` / :meth:`recover_cpu` so the hot
        #: dispatch paths never test ``online`` per CPU per round.
        self._online_states: list[CPUState] = list(self.cpu_states)
        self._offline_states: list[CPUState] = []
        #: Running totals mirroring the per-CPU fields, maintained at
        #: every mutation site so the aggregate properties are O(1)
        #: instead of O(n_cpus) sums (hot in bench reporting and tests).
        self._idle_us_total = 0
        self._stolen_dispatch_us_total = 0
        self._dispatch_count_total = 0
        self._offline_us_total = 0
        self._migrations_total = 0
        self._migration_us_total = 0
        #: Per-thread last-CPU tracking (and with it migration counting
        #: and penalty charging) only matters on SMP kernels — a
        #: uniprocessor thread can never migrate, so the paper's
        #: original loop skips the bookkeeping entirely.
        self.topology = topology
        self._track_migrations = self.n_cpus > 1
        self._migration_cost: Optional[Callable[[int, int], int]] = (
            topology.migration_penalty_us if topology is not None else None
        )
        #: Callbacks invoked as ``listener(now, online_cpu_count)``
        #: after every CPU failure or recovery (degradation policies).
        self._capacity_listeners: list[Callable[[int, int], None]] = []
        #: Threads forcibly re-pinned off a failed CPU, with the online
        #: CPU they were parked on, so recovery can restore their pins.
        self._displaced_pins: dict[int, list[tuple[SimThread, int]]] = {}
        #: Scheduler epoch at which the last placement round ran (the
        #: horizon engine skips provably-identical recomputations).
        self._placement_epoch: Optional[int] = None
        self.stolen_controller_us = 0
        #: Entries are ``(time, cpu, name, outcome, consumed)``; a
        #: dispatch that charged a migration penalty appends it as a
        #: sixth element (see the ``topology`` parameter).
        self.dispatch_log: Optional[
            list[
                tuple[int, int, str, str, int]
                | tuple[int, int, str, str, int, int]
            ]
        ] = ([] if record_dispatches else None)
        #: Local-time override used while an SMP dispatch round
        #: simulates one CPU's slice (None outside rounds).
        self._now_override: Optional[int] = None
        self._finished = False
        #: Cached per-dispatch overhead; revalidated against the CPU
        #: model's cost parameters and the dispatch interval, so both
        #: reassigning ``kernel.cpu`` and mutating the model in place
        #: invalidate it.
        self._dispatch_cost_sig: Optional[tuple[int, float, float]] = None
        self._dispatch_cost_us = 0.0
        #: Request type -> bound handler; replaces the isinstance chain
        #: on the hot path.  Subtypes are resolved once and memoised.
        self._request_handlers: dict[type, Callable[[SimThread, Request], str]] = {
            Put: self._handle_put,
            Get: self._handle_get,
            Sleep: self._handle_sleep,
            Yield: self._handle_yield,
            Exit: self._handle_exit,
            WaitIO: self._handle_wait_io,
            AcquireMutex: self._handle_acquire,
            ReleaseMutex: self._handle_release,
        }

        scheduler.attach(self)
        # Merge the scheduler's derived wake-up times (reservation
        # replenishments) into the calendar; ``next_transition`` then
        # answers "when can the dispatch decision next change?" from
        # one place for both the idle fast-forward and the batcher.
        self.events.add_source(scheduler.next_wakeup)
        # Skip the per-dispatch on_dispatch call for policies that keep
        # the base class's no-op hook (resolved once at attach time).
        from repro.sched.base import Scheduler as _SchedulerBase

        self._on_dispatch: Optional[Callable[[SimThread, int], None]] = (
            None
            if type(scheduler).on_dispatch is _SchedulerBase.on_dispatch
            else scheduler.on_dispatch
        )

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current virtual time in microseconds.

        While an SMP dispatch round executes one CPU's slice this reads
        that CPU's local clock, so everything a running thread does is
        stamped with the correct intra-window time.
        """
        if self._now_override is not None:
            return self._now_override
        return self.clock.now

    @property
    def idle_us(self) -> int:
        """Total idle time across all CPUs (CPU-microseconds; O(1))."""
        return self._idle_us_total

    @property
    def stolen_dispatch_us(self) -> int:
        """Dispatch overhead across all CPUs (CPU-microseconds; O(1))."""
        return self._stolen_dispatch_us_total

    @property
    def dispatch_count(self) -> int:
        """Total dispatches across all CPUs (O(1))."""
        return self._dispatch_count_total

    @property
    def migrations(self) -> int:
        """Cross-CPU dispatches across all CPUs (O(1)).

        A dispatch counts as a migration when the thread's previous
        dispatch ran on a different CPU.  Always zero on a
        uniprocessor; tracked on every SMP kernel, topology or not.
        """
        return self._migrations_total

    @property
    def migration_us(self) -> int:
        """Total migration penalty charged (CPU-microseconds; O(1)).

        Stolen time — charged to no thread — so it participates in the
        conservation identity through :attr:`stolen_us`.  Non-zero only
        with a topology whose per-domain penalties are non-zero.
        """
        return self._migration_us_total

    @property
    def stolen_us(self) -> int:
        """Total CPU time consumed by kernel overhead.

        Dispatch overhead + controller overhead + migration penalties;
        the ``stolen`` term of the conservation identity
        ``thread_cpu + idle + stolen + offline == n_cpus * now``.
        """
        return (
            self.stolen_dispatch_us
            + self.stolen_controller_us
            + self._migration_us_total
        )

    @property
    def offline_us(self) -> int:
        """Total time CPUs spent failed (CPU-microseconds; O(1)).

        Part of the conservation identity
        ``thread_cpu + idle + stolen + offline == n_cpus * now``;
        zero unless :meth:`fail_cpu` was used.
        """
        return self._offline_us_total

    @property
    def online_cpu_count(self) -> int:
        """Number of CPUs currently online (all of them unless failed)."""
        return len(self._online_states)

    @property
    def offline_cpu_count(self) -> int:
        """Number of CPUs currently failed."""
        return len(self._offline_states)

    def online_cpu_indices(self) -> tuple[int, ...]:
        """Indices of the online CPUs, ascending."""
        return tuple(cpu.index for cpu in self._online_states)

    def cpu_is_online(self, index: int) -> bool:
        """Whether CPU ``index`` is online (False for out-of-range too)."""
        return 0 <= index < self.n_cpus and self.cpu_states[index].online

    def capacity_us(self) -> int:
        """Total CPU-time capacity elapsed so far: ``n_cpus * now``."""
        return self.n_cpus * self.clock.now

    def total_thread_cpu_us(self) -> int:
        """Sum of CPU time charged to all threads."""
        return sum(t.accounting.total_us for t in self.threads)

    def live_threads(self) -> list[SimThread]:
        """Threads that have not exited."""
        return [t for t in self.threads if t.state.is_live]

    # ------------------------------------------------------------------
    # thread management
    # ------------------------------------------------------------------
    def add_thread(self, thread: SimThread) -> SimThread:
        """Register ``thread`` with the kernel and the scheduler."""
        if thread.tid in self._thread_tids:
            raise SimulationError(f"thread {thread.name!r} already added")
        if thread.affinity is not None and thread.affinity >= self.n_cpus:
            raise SimulationError(
                f"thread {thread.name!r} is pinned to CPU {thread.affinity} "
                f"but the kernel has only {self.n_cpus} CPU(s)"
            )
        if thread.affinity is not None and not self.cpu_states[thread.affinity].online:
            raise SimulationError(
                f"thread {thread.name!r} is pinned to CPU {thread.affinity}, "
                "which is offline (failed)"
            )
        env = ThreadEnv(kernel=self, thread=thread)
        thread.bind(env)
        self.threads.append(thread)
        self._thread_tids.add(thread.tid)
        self.scheduler.add_thread(thread)
        self.scheduler.on_ready(thread, self.now)
        return thread

    def spawn(self, name: str, body: Optional[ThreadBody], **kwargs: Any) -> SimThread:
        """Create a :class:`SimThread` and add it in one call."""
        thread = SimThread(name, body, **kwargs)
        return self.add_thread(thread)

    def kill_thread(self, thread: SimThread, *, status: int = -9) -> bool:
        """Forcibly terminate a live thread mid-run.

        The open-system workload engine's exit path for phase-scripted
        kills: the thread is detached from whatever it is waiting on
        (its sleep/I/O wake-up event is cancelled; it is removed from
        channel and mutex waiter queues, re-servicing the queue so a
        smaller waiter behind it may proceed), marked ``EXITED`` and
        removed from the scheduler — which bumps the scheduler's state
        epoch, so an in-flight run-to-horizon batch provably cannot
        span the kill.

        Returns ``True`` if the thread was killed, ``False`` if it had
        already exited (a script killing a job that just completed is
        not an error).  Killing a thread that is currently ``RUNNING``
        (i.e. from inside its own or a sibling's dispatch slice) is
        unsupported — use an :class:`~repro.sim.requests.Exit` request
        for voluntary exit; calendar events always fire between
        slices, so phase scripts never see a running victim.  A thread
        that *owns* a mutex must release it before being killed; the
        kernel cannot see ownership from the thread side, so killing an
        owner leaves the mutex held forever.

        Horizon-batch interaction (audited): a calendar-delivered kill
        can never land *inside* a run-to-horizon batch or an SMP round
        replay — both engines break batching before dispatching again
        whenever ``events.next_time() <= now``, and due events only
        fire from the main loop, where every thread has left its slice
        (READY/BLOCKED/SLEEPING).  The ``remove_thread`` epoch bump
        then guarantees no subsequent batch or cached placement can
        still name the victim, so kill timing is bit-identical across
        ``engine="quantum"`` and ``engine="horizon"`` (pinned by the
        kill-during-batch regression tests).
        """
        if thread.tid not in self._thread_tids:
            raise SimulationError(
                f"thread {thread.name!r} is not part of this kernel"
            )
        if thread.state == ThreadState.EXITED:
            return False
        if thread.state == ThreadState.RUNNING:
            raise ThreadStateError(
                f"cannot kill {thread.name!r} while it is running a slice"
            )
        wakeup = thread.wakeup_event
        if wakeup is not None:
            wakeup.cancel()
            thread.wakeup_event = None
        blocked_on = thread.blocked_on
        thread.blocked_on = None
        thread.state = ThreadState.EXITED
        thread.exit_status = status
        thread.finish_request()
        self.scheduler.remove_thread(thread)
        if blocked_on is not None:
            self._detach_waiter(thread, blocked_on)
        return True

    def _detach_waiter(self, thread: SimThread, blocked_on: object) -> None:
        """Remove a killed thread from its waiter queue and re-service.

        Removing the head of a channel queue can unblock a smaller
        request queued behind it, so both waiter directions are
        re-serviced after the removal (the thread is already EXITED and
        off the queues, so servicing never touches it again).
        ``blocked_on`` may also be a plain I/O tag (WaitIO), whose only
        linkage is the wake-up event the caller already cancelled.
        """
        # Runtime imports: the kernel only names these types here, and
        # importing them at module level would cycle (ipc imports sim).
        from repro.ipc.bounded_buffer import Channel
        from repro.ipc.mutex import Mutex

        if isinstance(blocked_on, Channel):
            # The thread sits in exactly one of the two queues; try both
            # (deque.remove is O(n) on a queue short by construction).
            try:
                blocked_on.put_waiters.remove(thread)
            except ValueError:
                try:
                    blocked_on.get_waiters.remove(thread)
                except ValueError:
                    pass
            self._service_put_waiters(blocked_on)
            self._service_get_waiters(blocked_on)
        elif isinstance(blocked_on, Mutex):
            # Leave the queue (ownership hand-off only happens on
            # release, which never sees the exited thread) and let the
            # scheduler recompute any priority-inheritance boost the
            # dead waiter conferred on the owner.
            try:
                blocked_on.waiters.remove(thread)
            except ValueError:
                pass
            else:
                self.scheduler.on_mutex_unblock(thread, blocked_on, self.now)

    # ------------------------------------------------------------------
    # CPU hotplug (fault injection)
    # ------------------------------------------------------------------
    def add_capacity_listener(
        self, listener: Callable[[int, int], None]
    ) -> None:
        """Call ``listener(now, online_cpu_count)`` after every CPU
        failure or recovery — the hook degradation policies attach to."""
        self._capacity_listeners.append(listener)

    def _rebuild_cpu_partitions(self) -> None:
        self._online_states = [c for c in self.cpu_states if c.online]
        self._offline_states = [c for c in self.cpu_states if not c.online]

    def fail_cpu(self, index: int) -> list[SimThread]:
        """Take CPU ``index`` offline (simulated hotplug failure).

        Threads pinned to the failed CPU are *drained*: re-pinned to
        the lowest-numbered online CPU through
        :meth:`SimThread.pin_to`, whose
        :meth:`~repro.sched.base.Scheduler.note_affinity_change` hook
        bumps the scheduler's state epoch — so cached placements and
        in-flight run-to-horizon batches are invalidated exactly as for
        any live re-pin.  The scheduler is additionally notified via
        :meth:`~repro.sched.base.Scheduler.note_capacity_change` (the
        online-CPU set itself is pick-relevant: placement and capacity
        read it), then every registered capacity listener fires.

        From the failure instant the CPU accrues ``offline_us`` instead
        of idle time and is skipped by dispatch rounds.  The CPU's past
        accounting (dispatches, idle, stolen) is retained.  At least
        one CPU must remain online, and — like
        :meth:`kill_thread` — failing a CPU from inside a dispatch
        slice is unsupported; fault plans deliver failures through the
        event calendar, which only fires between rounds.

        Returns the drained (re-pinned) threads.
        """
        if not 0 <= index < self.n_cpus:
            raise SimulationError(
                f"cannot fail CPU {index}: kernel has {self.n_cpus} CPU(s)"
            )
        if self._now_override is not None:
            raise SimulationError(
                f"cannot fail CPU {index} from inside a dispatch round"
            )
        cpu = self.cpu_states[index]
        if not cpu.online:
            raise SimulationError(f"CPU {index} is already offline")
        if len(self._online_states) == 1:
            raise SimulationError(
                f"cannot fail CPU {index}: it is the last online CPU"
            )
        cpu.online = False
        self._rebuild_cpu_partitions()
        target = self._online_states[0].index
        drained: list[SimThread] = []
        displaced: list[tuple[SimThread, int]] = []
        for thread in self.threads:
            if thread.state.is_live and thread.affinity == index:
                thread.pin_to(target)
                displaced.append((thread, target))
                drained.append(thread)
        self._displaced_pins[index] = displaced
        self.scheduler.note_capacity_change()
        now = self.now
        online = len(self._online_states)
        for listener in self._capacity_listeners:
            listener(now, online)
        return drained

    def recover_cpu(self, index: int) -> list[SimThread]:
        """Bring a failed CPU back online.

        Threads that :meth:`fail_cpu` drained off the CPU are re-pinned
        back to it, provided they are still live and still parked where
        the drain left them (a workload that re-pinned a drained thread
        in the meantime keeps its newer placement).  The scheduler's
        capacity note and the capacity listeners fire as for a failure.

        Returns the threads whose pins were restored.
        """
        if not 0 <= index < self.n_cpus:
            raise SimulationError(
                f"cannot recover CPU {index}: kernel has {self.n_cpus} CPU(s)"
            )
        if self._now_override is not None:
            raise SimulationError(
                f"cannot recover CPU {index} from inside a dispatch round"
            )
        cpu = self.cpu_states[index]
        if cpu.online:
            raise SimulationError(f"CPU {index} is already online")
        cpu.online = True
        self._rebuild_cpu_partitions()
        restored: list[SimThread] = []
        for thread, parked_on in self._displaced_pins.pop(index, []):
            if thread.state.is_live and thread.affinity == parked_on:
                thread.pin_to(index)
                restored.append(thread)
        self.scheduler.note_capacity_change()
        now = self.now
        online = len(self._online_states)
        for listener in self._capacity_listeners:
            listener(now, online)
        return restored

    # ------------------------------------------------------------------
    # periodic helpers / controller overhead hook
    # ------------------------------------------------------------------
    def add_periodic(
        self, period_us: int, callback: Callable[[int], None], start_us: int = 0,
        label: str = "",
    ) -> PeriodicEvent:
        """Run ``callback(now)`` every ``period_us`` microseconds."""
        return PeriodicEvent(self.events, period_us, callback, start=start_us,
                             label=label)

    def steal_cpu(self, us: int, *, reason: str = "controller") -> None:
        """Consume ``us`` of CPU time that is charged to no thread.

        Used by the controller driver to model the controller's own CPU
        consumption (Figure 5) without representing the controller as a
        full thread.  On a multiprocessor the controller runs on CPU 0
        and — because stealing advances the shared clock — stalls the
        other CPUs for the same interval; their share is accounted as
        idle time so the conservation identity keeps holding.
        """
        if us < 0:
            raise ValueError(f"cannot steal negative CPU time {us}")
        if us == 0:
            return
        self._tick(us)
        if reason == "dispatch":
            # The stealing CPU is the lowest-numbered *online* one (CPU
            # 0 unless it has failed).
            self._online_states[0].stolen_dispatch_us += us
            self._stolen_dispatch_us_total += us
        else:
            self.stolen_controller_us += us
        if self.n_cpus > 1 and self._now_override is None:
            online = self._online_states
            for cpu in online[1:]:
                cpu.idle_us += us
            self._idle_us_total += us * (len(online) - 1)
            offline = self._offline_states
            if offline:
                for cpu in offline:
                    cpu.offline_us += us
                self._offline_us_total += us * len(offline)

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    def _tick(self, us: int) -> None:
        """Advance the current time cursor by ``us`` microseconds.

        Outside an SMP dispatch round this is the global clock; inside
        a round it is the executing CPU's local clock.
        """
        if self._now_override is None:
            self.clock.advance_by(us)
        else:
            self._now_override += us

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run_for(self, duration_us: int) -> None:
        """Run the simulation for ``duration_us`` microseconds."""
        self.run_until(self.now + int(duration_us))

    def run_until(self, t_end: int) -> None:
        """Run the simulation until virtual time ``t_end``."""
        if t_end < self.now:
            raise ValueError(
                f"cannot run until {t_end}us, already at {self.now}us"
            )
        if self.n_cpus == 1:
            # Uniprocessor fast path: the paper's original loop,
            # bit-identical to the seed reproduction.  Outside SMP
            # rounds ``self.now`` is exactly ``clock.now``; reading the
            # clock directly skips the property dispatch per iteration.
            cpu0 = self.cpu_states[0]
            clock = self.clock
            scheduler = self.scheduler
            events = self.events
            batching = self._batch_dispatches
            preempted = _DispatchOutcome.PREEMPTED
            while clock.now < t_end:
                self._fire_due_events()
                now = clock.now
                if now >= t_end:
                    break
                thread = scheduler.pick_next(now)
                if thread is None:
                    if not self._advance_idle(t_end):
                        break
                    continue
                if not batching:
                    self._dispatch(cpu0, thread, t_end)
                    continue
                # Run-to-horizon: keep re-dispatching the picked thread
                # while every skipped pick is provably identical — the
                # slice expired normally, no event or scheduler wake-up
                # is due, the scheduler state epoch stands still and
                # the declared preemption horizon is not reached.  Each
                # quantum still charges full per-dispatch accounting,
                # so the timeline is bit-identical to the oracle.  The
                # horizon is only computed once a batch can actually
                # continue (most dispatches end a batch immediately via
                # the epoch or the outcome); evaluating it at the
                # current time is valid — the promise covers picks in
                # [now, H) and the epoch has not moved since the pick.
                epoch = scheduler.state_epoch
                horizon = -1
                while True:
                    outcome = self._dispatch(cpu0, thread, t_end)
                    now = clock.now
                    if (
                        outcome != preempted
                        or now >= t_end
                        or scheduler.state_epoch != epoch
                    ):
                        break
                    if horizon == -1:
                        horizon = scheduler.preemption_horizon(now, thread)
                    if horizon is not None and now >= horizon:
                        break
                    next_event = events.next_time()
                    if next_event is not None and next_event <= now:
                        break
                    # The pick being skipped happens *now*, before the
                    # batched dispatch, so cursor/RNG replays see the
                    # same scheduler state the oracle's pick saw.
                    scheduler.note_batched_picks(thread, 1, now)
        else:
            clock = self.clock
            while clock.now < t_end:
                self._fire_due_events()
                if clock.now >= t_end:
                    break
                if not self._dispatch_round(t_end):
                    if not self._advance_idle(t_end):
                        break
        if self.now < t_end:
            self.clock.advance_to(t_end)

    def _fire_due_events(self) -> None:
        while True:
            event = self.events.pop_due(self.now)
            if event is None:
                return
            if not event.cancelled:
                event.callback()

    def _advance_idle(self, t_end: int) -> bool:
        """Advance the clock to the next calendar transition.

        Returns ``False`` when the simulation cannot make further
        progress before ``t_end`` (clock is advanced to ``t_end``).
        All CPUs are idle for the skipped interval.
        """
        transition = self.events.next_transition(self.now)
        if transition is None:
            blocked = [
                t for t in self.live_threads() if t.state == ThreadState.BLOCKED
            ]
            if blocked and self.deadlock_detection:
                names = ", ".join(t.name for t in blocked)
                raise DeadlockError(
                    f"no runnable threads, no pending events, and threads "
                    f"[{names}] are blocked with no possible wake-up"
                )
            self._charge_idle(t_end - self.now)
            self.clock.advance_to(t_end)
            return False
        target = min(transition, t_end)
        if target <= self.now:
            # A wake-up is due immediately (e.g. a throttled reservation
            # replenishes right now); let the caller re-run pick_next.
            self.scheduler.refresh(self.now)
            return True
        self._charge_idle(target - self.now)
        self.clock.advance_to(target)
        self.scheduler.refresh(self.now)
        return True

    def _charge_idle(self, us: int) -> None:
        online = self._online_states
        for cpu in online:
            cpu.idle_us += us
        self._idle_us_total += us * len(online)
        offline = self._offline_states
        if offline:
            for cpu in offline:
                cpu.offline_us += us
            self._offline_us_total += us * len(offline)

    # ------------------------------------------------------------------
    # SMP dispatch rounds
    # ------------------------------------------------------------------
    def _dispatch_round(self, t_end: int) -> bool:
        """Run one parallel dispatch window; ``False`` if nothing ran.

        Under the run-to-horizon engine a completed round is *replayed*
        — same picks, same placement, full per-CPU dispatch accounting
        — for as long as the next round's placement and picks are
        provably identical: the scheduler state epoch did not move
        during the round, no calendar event or wake-up is due before
        the round starts, and every picked thread's preemption horizon
        (period rolls, replenishments) lies beyond it.  Each replayed
        round re-runs the same window arithmetic, so boundaries, idle
        top-ups and dispatch-log timestamps match the oracle exactly.
        """
        t0 = self.clock.now
        scheduler = self.scheduler
        epoch = scheduler.state_epoch
        if (
            not self._batch_dispatches
            or self._placement_epoch != epoch
        ):
            # Placement is a pure function of state covered by the
            # epoch; while it stands still the cached tid -> CPU map of
            # the previous round is provably identical, so the horizon
            # engine skips the recomputation.
            scheduler.place_threads(t0)
            self._placement_epoch = epoch
        picks: list[tuple[CPUState, SimThread]] = []
        idle_cpus: list[CPUState] = []
        for cpu in self._online_states:
            thread = scheduler.pick_next_cpu(cpu.index, t0)
            if thread is None:
                idle_cpus.append(cpu)
                continue
            # Claim immediately so higher-numbered CPUs cannot pick the
            # same thread within this round.
            thread.state = ThreadState.RUNNING
            picks.append((cpu, thread))
        if not picks:
            return False
        if not self._batch_dispatches:
            self._run_round(picks, idle_cpus, t_end)
            return True
        # The picks themselves may have serviced deferred examinations;
        # batching is judged against the post-pick state.
        replay_base = epoch if scheduler.state_epoch == epoch else None
        epoch = scheduler.state_epoch
        self._run_round(picks, idle_cpus, t_end)
        if replay_base is None or scheduler.state_epoch != epoch:
            # Something moved during (or right before) the round; the
            # next round's placement or picks may differ.
            return True
        clock = self.clock
        events = self.events
        running = ThreadState.RUNNING
        # Horizons are evaluated lazily, only now that a replay is
        # possible at all; the current scheduler state is the valid
        # basis (the epoch has not moved since the picks were made).
        now = clock.now
        horizon: Optional[int] = None
        for cpu, thread in picks:
            h = scheduler.preemption_horizon(now, thread, cpu=cpu.index)
            if h is None:
                continue
            if horizon is None or h < horizon:
                horizon = h
            if horizon <= now:
                return True
        while True:
            if scheduler.state_epoch != epoch:
                break
            now = clock.now
            if now >= t_end:
                break
            if horizon is not None and now >= horizon:
                break
            next_event = events.next_time()
            if next_event is not None and next_event <= now:
                break
            # Re-claim (epoch stability guarantees every picked thread
            # ended its slice READY) and replay the identical round.
            for _, thread in picks:
                thread.state = running
            self._run_round(picks, idle_cpus, t_end)
        return True

    def _run_round(
        self,
        picks: list[tuple[CPUState, SimThread]],
        idle_cpus: list[CPUState],
        t_end: int,
    ) -> None:
        """Execute one claimed dispatch round over a shared window."""
        t0 = self.clock.now
        # All CPUs share one window cap, computed before any slice runs,
        # so the round is symmetric across CPUs: events scheduled by one
        # CPU's slice become visible at the next round boundary.
        next_event = self.events.next_time()
        window_cap = t_end if next_event is None else min(next_event, t_end)
        ends: list[int] = []
        window_end = t0
        for cpu, thread in picks:
            self._now_override = t0
            self._dispatch(cpu, thread, t_end, window_cap=window_cap)
            end = self._now_override
            ends.append(end)
            if end > window_end:
                window_end = end
            self._now_override = None
        if window_end > self.clock.now:
            self.clock.advance_to(window_end)
        # CPUs whose thread finished early idle out the rest of the
        # window (timer-quantised re-dispatch, as on the real hardware);
        # CPUs that picked nothing idle the whole window.
        idle_total = self._idle_us_total
        for (cpu, _), end in zip(picks, ends):
            if end < window_end:
                cpu.idle_us += window_end - end
                idle_total += window_end - end
        if idle_cpus:
            span = window_end - t0
            for cpu in idle_cpus:
                cpu.idle_us += span
            idle_total += span * len(idle_cpus)
        self._idle_us_total = idle_total
        offline = self._offline_states
        if offline:
            span = window_end - t0
            for cpu in offline:
                cpu.offline_us += span
            self._offline_us_total += span * len(offline)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _charge_dispatch_overhead(self, cpu: CPUState) -> int:
        """Charge the per-dispatch cost; returns the microseconds ticked.

        The effective cost is a pure function of the dispatch interval
        and the CPU model's cost parameters, so it is cached and only
        recomputed when that signature changes (covers both swapping
        ``kernel.cpu`` and mutating the model's fields in place).
        """
        if not self.charge_dispatch_overhead:
            return 0
        model = self.cpu
        interval = self.dispatch_interval_us
        cost = model.dispatch_cost_us
        quadratic = model.dispatch_cost_quadratic_us
        signature = self._dispatch_cost_sig
        if (
            signature is None
            or signature[0] != interval
            or signature[1] != cost
            or signature[2] != quadratic
        ):
            self._dispatch_cost_us = model.effective_dispatch_cost_us(
                US_PER_SEC / interval
            )
            self._dispatch_cost_sig = (interval, cost, quadratic)
        cpu.overhead_accumulator += self._dispatch_cost_us
        whole = int(cpu.overhead_accumulator)
        if whole > 0:
            cpu.overhead_accumulator -= whole
            self._tick(whole)
            cpu.stolen_dispatch_us += whole
            self._stolen_dispatch_us_total += whole
            return whole
        return 0

    def _dispatch(
        self,
        cpu: CPUState,
        thread: SimThread,
        t_end: int,
        window_cap: Optional[int] = None,
    ) -> str:
        """Run one dispatch of ``thread`` on ``cpu``; returns the outcome.

        ``now`` mirrors self.now locally: only time charges advance the
        clock inside a slice (request handlers set states and schedule
        events but never tick), so the mirror stays exact.  The mirror
        is written back to the live clock before every request handler
        (handlers timestamp IPC commits and wake-ups with ``self.now``)
        and naturally at every charge.
        """
        override = self._now_override is not None
        clock = self.clock
        now = self._now_override if override else clock._now
        dispatch_start = now
        cpu.dispatches += 1
        self._dispatch_count_total += 1
        now += self._charge_dispatch_overhead(cpu)

        # Migration accounting: charged after the dispatch overhead and
        # before the thread's slice, like the cache refill it models.
        # The penalty is stolen time (charged to no thread); within a
        # horizon batch or a replayed SMP round the thread provably
        # stays on its CPU (placement is epoch-cached and eligible_on
        # pins unpinned threads to their placed CPU), so replays charge
        # zero — exactly as the quantum oracle's per-round re-dispatch.
        migration_us = 0
        if self._track_migrations:
            last = thread.last_cpu
            index = cpu.index
            if last is not None and last != index:
                cpu.migrations += 1
                self._migrations_total += 1
                cost_fn = self._migration_cost
                if cost_fn is not None:
                    migration_us = cost_fn(last, index)
                    if migration_us > 0:
                        self._tick(migration_us)
                        now += migration_us
                        cpu.migration_us += migration_us
                        self._migration_us_total += migration_us
            thread.last_cpu = index

        scheduler = self.scheduler
        accounting = thread.accounting
        thread.state = ThreadState.RUNNING
        accounting.dispatches += 1
        accounting.last_run_started = now
        on_dispatch = self._on_dispatch
        if on_dispatch is not None:
            on_dispatch(thread, now)

        slice_us = scheduler.time_slice(thread, now)
        if slice_us <= 0:
            slice_us = self.dispatch_interval_us
        horizon = now + slice_us
        if t_end < horizon:
            horizon = t_end
        if window_cap is not None:
            # SMP round: the shared window cap already folds in the next
            # pending event (computed once at round start, for symmetry).
            if window_cap < horizon:
                horizon = window_cap
        else:
            next_event = self.events.next_time()
            if next_event is not None and next_event < horizon:
                horizon = next_event

        consumed = 0
        syscall_cost = self.syscall_cost_us
        outcome = _DispatchOutcome.PREEMPTED
        while now < horizon:
            request = thread._current_request
            if request is None:
                request = self._next_request(thread)
                if request is None:
                    outcome = _DispatchOutcome.EXITED
                    break
            if isinstance(request, Compute):
                remaining = thread._remaining_compute_us
                if remaining > 0:
                    step = horizon - now
                    if remaining < step:
                        step = remaining
                    thread._remaining_compute_us = remaining - step
                    now += step
                    consumed += step
                    if override:
                        self._now_override = now
                    else:
                        clock._now = now
                if thread._remaining_compute_us == 0:
                    thread._current_request = None
                continue
            # Non-compute requests carry a small syscall cost; charging
            # it before handling also guarantees forward progress for
            # threads that never yield a Compute request.
            if syscall_cost > 0:
                step = horizon - now
                if syscall_cost < step:
                    step = syscall_cost
                now += step
                consumed += step
                if override:
                    self._now_override = now
                else:
                    clock._now = now
                if step < syscall_cost:
                    # Not enough slice left to pay for the syscall; the
                    # request stays pending for the next dispatch.
                    break
            outcome = self._handle_request(thread, request)
            if outcome != "continue":
                break
            outcome = _DispatchOutcome.PREEMPTED

        accounting.total_us += consumed
        accounting.run_since_last_block_us += consumed
        scheduler.charge(thread, consumed, now)
        if outcome == "preempted":
            # _finish_dispatch's preempted arm, inlined (the common
            # outcome: ran out of slice or an event is due).
            accounting.preemptions += 1
            thread.state = ThreadState.READY
            scheduler.on_preempt(thread, now)
        else:
            self._finish_dispatch(thread, outcome)
        if self.dispatch_log is not None:
            if migration_us:
                # The penalty shifted this (and every later) timestamp,
                # so it must be part of the log's identity: entries for
                # penalised dispatches grow a sixth element.  Penalty-
                # free dispatches keep the historical 5-tuple form, so
                # a zero-penalty run is byte-identical to a kernel that
                # never heard of topology.
                self.dispatch_log.append(
                    (
                        dispatch_start, cpu.index, thread.name, outcome,
                        consumed, migration_us,
                    )
                )
            else:
                self.dispatch_log.append(
                    (dispatch_start, cpu.index, thread.name, outcome, consumed)
                )
        return outcome

    def _finish_dispatch(self, thread: SimThread, outcome: str) -> None:
        acct = thread.accounting
        if outcome == _DispatchOutcome.EXITED:
            return
        if outcome == _DispatchOutcome.BLOCKED:
            acct.note_block()
            self.scheduler.on_block(thread, self.now)
            return
        if outcome == _DispatchOutcome.SLEEPING:
            acct.sleeps += 1
            acct.note_block()
            self.scheduler.on_block(thread, self.now)
            return
        if outcome == _DispatchOutcome.YIELDED:
            acct.voluntary_switches += 1
            thread.state = ThreadState.READY
            self.scheduler.on_yield(thread, self.now)
            return
        # preempted: ran out of slice or an event is due
        acct.preemptions += 1
        thread.state = ThreadState.READY
        self.scheduler.on_preempt(thread, self.now)

    def _next_request(self, thread: SimThread) -> Optional[Request]:
        send_value = thread._pending_send
        thread._pending_send = None
        request = thread.advance(send_value)
        if request is None:
            self._exit_thread(thread, status=0)
            return None
        return request

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    def _handle_request(self, thread: SimThread, request: Request) -> str:
        handler = self._request_handlers.get(type(request))
        if handler is None:
            handler = self._resolve_handler(thread, request)
        return handler(thread, request)

    def _resolve_handler(
        self, thread: SimThread, request: Request
    ) -> Callable[[SimThread, Request], str]:
        """Slow path: map a request *subtype* to its handler and memoise.

        Walks the registered base types in the same order as the
        historical isinstance chain, so a request inheriting from two
        of them resolves identically.
        """
        for base_type, handler in list(self._request_handlers.items()):
            if isinstance(request, base_type):
                self._request_handlers[type(request)] = handler
                return handler
        raise ThreadStateError(
            f"{thread.name}: unsupported request type {type(request).__name__}"
        )

    def _handle_yield(self, thread: SimThread, request: Yield) -> str:
        thread.finish_request()
        return _DispatchOutcome.YIELDED

    def _handle_exit(self, thread: SimThread, request: Exit) -> str:
        self._exit_thread(thread, status=request.status)
        return _DispatchOutcome.EXITED

    def _handle_put(self, thread: SimThread, request: Put) -> str:
        channel = request.channel
        if channel.space_free() >= request.nbytes and not channel.put_waiters:
            channel.commit_put(request.nbytes, now=self.now, thread=thread)
            thread.finish_request()
            self._service_get_waiters(channel)
            return "continue"
        channel.put_waiters.append(thread)
        thread.blocked_on = channel
        thread.state = ThreadState.BLOCKED
        return _DispatchOutcome.BLOCKED

    def _handle_get(self, thread: SimThread, request: Get) -> str:
        channel = request.channel
        if channel.bytes_available() >= request.nbytes and not channel.get_waiters:
            channel.commit_get(request.nbytes, now=self.now, thread=thread)
            thread.finish_request()
            thread._pending_send = request.nbytes
            self._service_put_waiters(channel)
            return "continue"
        channel.get_waiters.append(thread)
        thread.blocked_on = channel
        thread.state = ThreadState.BLOCKED
        return _DispatchOutcome.BLOCKED

    def _service_put_waiters(self, channel: "Channel") -> None:
        while channel.put_waiters:
            waiter = channel.put_waiters[0]
            request = waiter.current_request()
            if not isinstance(request, Put):
                raise ThreadStateError(
                    f"{waiter.name}: waiting on a put but current request is "
                    f"{type(request).__name__}"
                )
            if channel.space_free() < request.nbytes:
                return
            channel.put_waiters.popleft()
            channel.commit_put(request.nbytes, now=self.now, thread=waiter)
            waiter.finish_request()
            self._wake(waiter)
            self._service_get_waiters(channel)

    def _service_get_waiters(self, channel: "Channel") -> None:
        while channel.get_waiters:
            waiter = channel.get_waiters[0]
            request = waiter.current_request()
            if not isinstance(request, Get):
                raise ThreadStateError(
                    f"{waiter.name}: waiting on a get but current request is "
                    f"{type(request).__name__}"
                )
            if channel.bytes_available() < request.nbytes:
                return
            channel.get_waiters.popleft()
            channel.commit_get(request.nbytes, now=self.now, thread=waiter)
            waiter.finish_request()
            waiter._pending_send = request.nbytes
            self._wake(waiter)
            self._service_put_waiters(channel)

    def _handle_sleep(self, thread: SimThread, request: Sleep) -> str:
        if request.us == 0:
            thread.finish_request()
            return _DispatchOutcome.YIELDED
        thread.finish_request()
        thread.state = ThreadState.SLEEPING
        wake_at = self.now + request.us

        def _wake_sleeper() -> None:
            thread.wakeup_event = None
            if thread.state == ThreadState.SLEEPING:
                self._wake(thread)

        thread.wakeup_event = self.events.schedule(
            wake_at, _wake_sleeper, label=f"wake:{thread.name}"
        )
        return _DispatchOutcome.SLEEPING

    def _handle_wait_io(self, thread: SimThread, request: WaitIO) -> str:
        thread.finish_request()
        thread.state = ThreadState.BLOCKED
        thread.blocked_on = request.tag or "io"
        wake_at = self.now + request.latency_us

        def _io_complete() -> None:
            thread.wakeup_event = None
            if thread.state == ThreadState.BLOCKED:
                self._wake(thread)

        thread.wakeup_event = self.events.schedule(
            wake_at, _io_complete, label=f"io:{thread.name}"
        )
        return _DispatchOutcome.BLOCKED

    def _handle_acquire(self, thread: SimThread, request: AcquireMutex) -> str:
        mutex = request.mutex
        if mutex.owner is None:
            mutex.owner = thread
            mutex.acquisitions += 1
            thread.finish_request()
            return "continue"
        mutex.waiters.append(thread)
        thread.blocked_on = mutex
        thread.state = ThreadState.BLOCKED
        self.scheduler.on_mutex_block(thread, mutex, self.now)
        return _DispatchOutcome.BLOCKED

    def _handle_release(self, thread: SimThread, request: ReleaseMutex) -> str:
        mutex = request.mutex
        if mutex.owner is not thread:
            raise ThreadStateError(
                f"{thread.name}: releasing mutex {mutex.name!r} it does not hold"
            )
        thread.finish_request()
        self.scheduler.on_mutex_release(thread, mutex, self.now)
        if mutex.waiters:
            successor = mutex.waiters.popleft()
            mutex.owner = successor
            mutex.acquisitions += 1
            successor.finish_request()
            self._wake(successor)
        else:
            mutex.owner = None
        return "continue"

    # ------------------------------------------------------------------
    # wake / exit
    # ------------------------------------------------------------------
    def _wake(self, thread: SimThread) -> None:
        thread.blocked_on = None
        thread.state = ThreadState.READY
        self.scheduler.on_ready(thread, self.now)

    def _exit_thread(self, thread: SimThread, status: int) -> None:
        thread.state = ThreadState.EXITED
        thread.exit_status = status
        thread.finish_request()
        self.scheduler.remove_thread(thread)


__all__ = ["DEFAULT_DISPATCH_INTERVAL_US", "Kernel"]
