"""Simulated threads.

A :class:`SimThread` couples a behaviour (a generator yielding
:mod:`repro.sim.requests` objects) with the bookkeeping a scheduler and
the feedback controller need: its run state, CPU accounting, scheduling
parameters (proportion/period/importance/priority) and run/block
statistics used by the heuristics for miscellaneous and interactive
threads.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from repro.sim.errors import ThreadStateError
from repro.sim.requests import Compute, Request

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Kernel

#: Type of a thread body: a callable taking the environment and
#: returning a generator of requests.
ThreadBody = Callable[["ThreadEnv"], Generator[Request, Any, None]]


class ThreadState(enum.Enum):
    """Lifecycle states of a simulated thread."""

    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    SLEEPING = "sleeping"
    THROTTLED = "throttled"
    EXITED = "exited"

    @property
    def is_runnable(self) -> bool:
        """Whether the thread may be picked by the dispatcher."""
        return self in (ThreadState.READY, ThreadState.RUNNING)

    @property
    def is_live(self) -> bool:
        """Whether the thread still exists from the scheduler's view."""
        return self is not ThreadState.EXITED


class SchedulingPolicy(enum.Enum):
    """Which low-level scheduling class a thread belongs to.

    Mirrors the paper's prototype, where threads explicitly register
    with the reservation-based scheduler (RBS) and all other threads
    remain under the stock Linux policy.
    """

    RESERVATION = "reservation"
    BEST_EFFORT = "best_effort"


@dataclass
class CpuAccounting:
    """Per-thread CPU usage accounting.

    ``total_us`` is lifetime CPU consumed.  ``dispatches`` counts how
    many times the dispatcher selected this thread.  The run/block
    statistics feed the heuristic the paper uses for threads without a
    progress metric: "measuring the amount of time they typically run
    before blocking".
    """

    total_us: int = 0
    dispatches: int = 0
    preemptions: int = 0
    voluntary_switches: int = 0
    blocks: int = 0
    sleeps: int = 0
    last_run_started: Optional[int] = None
    run_before_block_ema_us: float = 0.0
    run_since_last_block_us: int = 0

    #: Exponential-moving-average weight for run-before-block samples.
    EMA_ALPHA: float = 0.25

    def charge(self, us: int) -> None:
        """Add ``us`` microseconds of consumed CPU."""
        self.total_us += us
        self.run_since_last_block_us += us

    def note_block(self) -> None:
        """Record a voluntary block and fold the run length into the EMA."""
        self.blocks += 1
        sample = float(self.run_since_last_block_us)
        if self.run_before_block_ema_us == 0.0:
            self.run_before_block_ema_us = sample
        else:
            alpha = self.EMA_ALPHA
            self.run_before_block_ema_us = (
                alpha * sample + (1.0 - alpha) * self.run_before_block_ema_us
            )
        self.run_since_last_block_us = 0


@dataclass
class ThreadEnv:
    """The view of the system a thread body receives.

    Provides read-only access to the clock and the owning thread, plus
    a handle to the kernel for non-blocking introspection (e.g. queue
    fill levels).  Blocking operations must go through ``yield``.
    """

    kernel: "Kernel"
    thread: "SimThread"

    @property
    def now(self) -> int:
        """Current virtual time in microseconds."""
        return self.kernel.now


class SimThread:
    """A simulated thread of control.

    Parameters
    ----------
    name:
        Human-readable identifier used in traces and error messages.
    body:
        Callable producing the thread's behaviour generator.  ``None``
        creates an *external* thread whose behaviour is driven by the
        test (useful for unit-testing schedulers in isolation).
    policy:
        Low-level scheduling class (reservation vs best-effort).
    priority:
        Fixed priority used by the priority-scheduler baseline (higher
        is more important).
    nice:
        Unix nice value used by the Linux-goodness baseline.
    tickets:
        Ticket count used by the lottery-scheduler baseline.
    importance:
        Weight used by the controller's weighted-fair-share squishing.
    affinity:
        Optional CPU index this thread is pinned to on a multiprocessor
        kernel.  ``None`` (the default) lets the scheduler's placement
        policy migrate the thread freely; see :meth:`pin_to`.
    """

    _next_tid = 1

    def __init__(
        self,
        name: str,
        body: Optional[ThreadBody] = None,
        *,
        policy: SchedulingPolicy = SchedulingPolicy.RESERVATION,
        priority: int = 0,
        nice: int = 0,
        tickets: int = 100,
        importance: float = 1.0,
        affinity: Optional[int] = None,
    ) -> None:
        self.tid = SimThread._next_tid
        SimThread._next_tid += 1
        self.name = name
        self.policy = policy
        self.priority = priority
        self.nice = nice
        self.tickets = tickets
        self.importance = importance
        self._env: Optional[ThreadEnv] = None
        self.affinity: Optional[int] = None
        if affinity is not None:
            self.pin_to(affinity)

        self.state = ThreadState.NEW
        self.accounting = CpuAccounting()
        self.exit_status: Optional[int] = None
        #: CPU index of this thread's most recent dispatch (``None``
        #: until first dispatched).  Maintained by the kernel on
        #: multiprocessor kernels: migration counters compare it to the
        #: dispatching CPU, and the cache-warm placement policy prefers
        #: it (then its SMT sibling, then its socket).  Not
        #: pick-relevant on its own — placement policies that read it
        #: must be *stable under self-application* (see
        #: ``repro/sched/placement.py``), which keeps the cached
        #: placement map valid while the scheduler epoch stands still.
        self.last_cpu: Optional[int] = None

        #: Arbitrary per-scheduler state (each scheduler keys by its own name).
        self.sched_data: dict[str, Any] = {}

        self._body = body
        self._generator: Optional[Generator[Request, Any, None]] = None
        self._current_request: Optional[Request] = None
        self._remaining_compute_us = 0
        self._pending_send: Any = None
        self.blocked_on: Optional[object] = None
        self.wakeup_event: Optional[object] = None

    # ------------------------------------------------------------------
    # identity / debugging
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimThread(tid={self.tid}, name={self.name!r}, state={self.state.value})"

    def pin_to(self, cpu: Optional[int]) -> None:
        """Pin this thread to CPU ``cpu`` (``None`` removes the pin).

        Placement policies never migrate a pinned thread; on a
        single-CPU kernel a pin to CPU 0 is a no-op.  Once the thread
        is bound to a kernel the pin is validated against its CPU
        count, matching the check :meth:`Kernel.add_thread` applies to
        threads pinned before they are added.
        """
        if cpu is not None:
            if cpu < 0:
                raise ValueError(
                    f"{self.name}: CPU affinity cannot be negative, got {cpu}"
                )
            if self._env is not None and cpu >= self._env.kernel.n_cpus:
                raise ValueError(
                    f"{self.name}: cannot pin to CPU {cpu}, the kernel has "
                    f"only {self._env.kernel.n_cpus} CPU(s)"
                )
            if self._env is not None and not self._env.kernel.cpu_is_online(cpu):
                raise ValueError(
                    f"{self.name}: cannot pin to CPU {cpu}, it is offline "
                    "(failed)"
                )
        changed = cpu != self.affinity
        self.affinity = cpu
        if changed and self._env is not None:
            # A live re-pin changes placement eligibility, which the
            # run-to-horizon engine's cached placements and batches
            # depend on; the scheduler bumps its state epoch so they
            # are invalidated.
            self._env.kernel.scheduler.note_affinity_change(self)

    def __hash__(self) -> int:
        return hash(self.tid)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SimThread) and other.tid == self.tid

    # ------------------------------------------------------------------
    # lifecycle driven by the kernel
    # ------------------------------------------------------------------
    def bind(self, env: ThreadEnv) -> None:
        """Instantiate the behaviour generator against ``env``.

        Called by the kernel when the thread is added to the system.
        External threads (``body=None``) skip this and must have their
        requests injected via :meth:`inject_request`.
        """
        self._env = env
        if self._body is not None:
            self._generator = self._body(env)
        self.state = ThreadState.READY

    def inject_request(self, request: Request) -> None:
        """Force the thread's next request (testing hook for external threads)."""
        if self._current_request is not None and self._remaining_compute_us > 0:
            raise ThreadStateError(
                f"{self.name}: cannot inject a request while one is in progress"
            )
        self._set_current(request)

    @property
    def has_pending_work(self) -> bool:
        """Whether the thread currently has an unfinished request."""
        return self._current_request is not None

    @property
    def remaining_compute_us(self) -> int:
        """Microseconds left in the current compute burst (0 if none)."""
        return self._remaining_compute_us

    def _set_current(self, request: Request) -> None:
        self._current_request = request
        if isinstance(request, Compute):
            self._remaining_compute_us = request.us
        else:
            self._remaining_compute_us = 0

    def advance(self, send_value: Any = None) -> Optional[Request]:
        """Advance the generator to obtain the next request.

        Returns ``None`` when the generator is exhausted (the thread has
        exited).  Raises :class:`ThreadStateError` if called on a thread
        without a behaviour generator.
        """
        if self._generator is None:
            raise ThreadStateError(
                f"{self.name}: external thread has no behaviour generator"
            )
        try:
            request = self._generator.send(send_value)
        except StopIteration:
            self._current_request = None
            self._remaining_compute_us = 0
            return None
        if not isinstance(request, Request):
            raise ThreadStateError(
                f"{self.name}: thread body yielded {request!r}, "
                "expected a repro.sim.requests.Request"
            )
        self._set_current(request)
        return request

    def current_request(self) -> Optional[Request]:
        """The request the thread is currently executing, if any."""
        return self._current_request

    def consume_compute(self, us: int) -> None:
        """Consume ``us`` microseconds from the current compute burst."""
        if us < 0:
            raise ValueError(f"cannot consume negative CPU time {us}")
        if us > self._remaining_compute_us:
            raise ThreadStateError(
                f"{self.name}: consuming {us}us but only "
                f"{self._remaining_compute_us}us remain in the burst"
            )
        self._remaining_compute_us -= us

    def finish_request(self) -> None:
        """Mark the current request complete (kernel bookkeeping)."""
        self._current_request = None
        self._remaining_compute_us = 0


__all__ = [
    "CpuAccounting",
    "SchedulingPolicy",
    "SimThread",
    "ThreadBody",
    "ThreadEnv",
    "ThreadState",
]
