"""The system-call vocabulary of simulated threads.

A thread body is a Python generator that *yields* request objects.  The
kernel interprets each request, charges CPU time, blocks or sleeps the
thread, and resumes the generator when the request completes.  The
request's ``result`` attribute (where applicable) is sent back into the
generator, so a body can write::

    def body(env):
        while True:
            yield Compute(500)                 # burn 500 us of CPU
            yield Put(queue, 4096)             # may block if the queue is full
            fill = queue.fill_level()          # non-blocking introspection
            if fill > 0.9:
                yield Sleep(ms(5))

Only the request types defined here are understood by the kernel;
yielding anything else raises
:class:`repro.sim.errors.ThreadStateError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.ipc.bounded_buffer import Channel
    from repro.ipc.mutex import Mutex


@dataclass
class Request:
    """Base class for all thread requests."""


@dataclass
class Compute(Request):
    """Consume ``us`` microseconds of CPU time.

    The thread remains runnable for the whole burst; the kernel may
    spread the burst over many dispatch intervals if the thread is
    preempted or throttled by its reservation.
    """

    us: int

    def __post_init__(self) -> None:
        if self.us < 0:
            raise ValueError(f"compute burst cannot be negative, got {self.us}")
        self.us = int(self.us)


@dataclass
class Put(Request):
    """Write ``nbytes`` into ``channel``, blocking while it lacks space."""

    channel: "Channel"
    nbytes: int

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise ValueError(f"put size must be positive, got {self.nbytes}")
        self.nbytes = int(self.nbytes)


@dataclass
class Get(Request):
    """Read ``nbytes`` from ``channel``, blocking while it lacks data.

    The number of bytes actually read (always ``nbytes`` on success) is
    sent back into the generator.
    """

    channel: "Channel"
    nbytes: int

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise ValueError(f"get size must be positive, got {self.nbytes}")
        self.nbytes = int(self.nbytes)


@dataclass
class Sleep(Request):
    """Sleep for ``us`` microseconds without consuming CPU."""

    us: int

    def __post_init__(self) -> None:
        if self.us < 0:
            raise ValueError(f"sleep duration cannot be negative, got {self.us}")
        self.us = int(self.us)


@dataclass
class Yield(Request):
    """Voluntarily give up the CPU while remaining runnable."""


@dataclass
class Exit(Request):
    """Terminate the thread.

    Equivalent to the generator returning, provided for explicitness in
    workloads that loop forever but want a conditional exit.
    """

    status: int = 0


@dataclass
class WaitIO(Request):
    """Block for ``latency_us`` of simulated device time (no CPU used).

    Models a synchronous disk or network operation: the thread blocks,
    the device "completes" after the latency, and the thread becomes
    runnable again.  Used by the I/O-intensive workload class from
    Section 3.2 of the paper.
    """

    latency_us: int
    tag: str = ""

    def __post_init__(self) -> None:
        if self.latency_us < 0:
            raise ValueError(
                f"I/O latency cannot be negative, got {self.latency_us}"
            )
        self.latency_us = int(self.latency_us)


@dataclass
class AcquireMutex(Request):
    """Acquire ``mutex``, blocking while another thread holds it."""

    mutex: "Mutex"


@dataclass
class ReleaseMutex(Request):
    """Release ``mutex``; raises if the caller does not hold it."""

    mutex: "Mutex"


__all__ = [
    "AcquireMutex",
    "Compute",
    "Exit",
    "Get",
    "Put",
    "ReleaseMutex",
    "Request",
    "Sleep",
    "WaitIO",
    "Yield",
]
