"""CPU model and per-CPU run state.

The paper's prototype runs on a 400 MHz Pentium II with a 1 ms timer.
The simulator does not model micro-architecture; what matters for the
scheduling experiments is

* the conversion between "cycles" (the unit the pulse workload of
  Section 4.2 reasons in) and CPU time, and
* the fixed cost of every dispatch (the ``schedule()`` +
  ``do_timers()`` path), which is what produces the overhead-vs-
  frequency curve of Figure 8.

A multiprocessor kernel instantiates one :class:`CPUState` per CPU (all
sharing one :class:`CPUModel`, i.e. homogeneous SMP): it carries the
per-CPU dispatch accounting — idle time, per-dispatch stolen overhead
and dispatch counts — that the kernel aggregates for its totals.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.clock import US_PER_SEC


@dataclass
class CPUState:
    """Per-CPU dispatch bookkeeping of a (possibly multi-CPU) kernel.

    Attributes
    ----------
    index:
        CPU number, 0-based.
    idle_us:
        Time this CPU spent online with nothing to run.
    stolen_dispatch_us:
        Dispatch overhead charged on this CPU (to no thread).
    dispatches:
        Number of times this CPU's dispatcher selected a thread.
    migrations:
        Dispatches of a thread whose previous dispatch ran on a
        *different* CPU (counted on the destination CPU).  Tracked on
        every multiprocessor kernel, with or without a topology model.
    migration_us:
        Virtual time charged on this CPU for migration penalties
        (stolen — charged to no thread).  Non-zero only when the kernel
        was built with a :class:`~repro.sim.topology.CpuTopology`
        carrying non-zero per-domain penalties.
    overhead_accumulator:
        Fractional-microsecond remainder of the per-dispatch overhead
        model, kept per CPU so accounting is independent across CPUs.
    online:
        Whether the CPU participates in dispatch rounds.  Taken down /
        brought back by :meth:`Kernel.fail_cpu` /
        :meth:`Kernel.recover_cpu` (simulated hotplug).
    offline_us:
        Time this CPU spent failed.  Charged instead of ``idle_us``
        while offline, so the conservation identity extends to
        ``thread_cpu + idle + stolen + offline == n_cpus * now``.
    """

    index: int
    idle_us: int = 0
    stolen_dispatch_us: int = 0
    dispatches: int = 0
    migrations: int = 0
    migration_us: int = 0
    overhead_accumulator: float = 0.0
    online: bool = True
    offline_us: int = 0

    def busy_fraction(self, elapsed_us: int) -> float:
        """Fraction of ``elapsed_us`` this CPU was not idle."""
        if elapsed_us <= 0:
            return 0.0
        return max(0.0, min(1.0, 1.0 - self.idle_us / elapsed_us))


@dataclass
class CPUModel:
    """Parameters of the simulated CPU.

    Attributes
    ----------
    clock_hz:
        Nominal clock rate used to convert cycles to microseconds.  The
        default matches the paper's 400 MHz Pentium II.
    dispatch_cost_us:
        CPU time charged (to nobody) on every dispatcher invocation.
        The paper measures ~2.7% overhead at a 4 kHz dispatch rate,
        which corresponds to roughly 6.75 us per dispatch; the default
        is calibrated to that figure.
    dispatch_cost_quadratic_us:
        Optional frequency-dependent component of the per-dispatch
        cost: ``effective = dispatch_cost_us + quadratic * f_khz**2``.
        The paper's Figure 8 curve degrades faster than linearly above
        its knee (very small quanta thrash the cache), which a constant
        per-dispatch cost cannot reproduce; the dispatch-overhead
        experiment uses this term, everything else leaves it at zero.
    timer_interrupt_cost_us:
        Cost of servicing a timer interrupt that does not lead to a
        dispatch (the paper's ``do_timers()`` fast path, which runs in
        constant time thanks to the cached next-expiry optimisation).
    """

    clock_hz: float = 400e6
    dispatch_cost_us: float = 6.75
    dispatch_cost_quadratic_us: float = 0.0
    timer_interrupt_cost_us: float = 0.5

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ValueError(f"clock_hz must be positive, got {self.clock_hz}")
        if self.dispatch_cost_us < 0:
            raise ValueError(
                f"dispatch_cost_us cannot be negative, got {self.dispatch_cost_us}"
            )
        if self.dispatch_cost_quadratic_us < 0:
            raise ValueError(
                "dispatch_cost_quadratic_us cannot be negative, got "
                f"{self.dispatch_cost_quadratic_us}"
            )
        if self.timer_interrupt_cost_us < 0:
            raise ValueError(
                "timer_interrupt_cost_us cannot be negative, "
                f"got {self.timer_interrupt_cost_us}"
            )

    def effective_dispatch_cost_us(self, dispatch_hz: float) -> float:
        """Per-dispatch cost at a given dispatcher frequency."""
        if dispatch_hz < 0:
            raise ValueError(f"dispatch_hz cannot be negative, got {dispatch_hz}")
        f_khz = dispatch_hz / 1_000.0
        return self.dispatch_cost_us + self.dispatch_cost_quadratic_us * f_khz * f_khz

    def cycles_to_us(self, cycles: float) -> int:
        """Convert a cycle count to integer microseconds (at least 1 if > 0)."""
        if cycles < 0:
            raise ValueError(f"cycle count cannot be negative, got {cycles}")
        us = cycles / self.clock_hz * US_PER_SEC
        if cycles > 0:
            return max(1, int(round(us)))
        return 0

    def us_to_cycles(self, us: int) -> float:
        """Convert microseconds of CPU time to cycles."""
        if us < 0:
            raise ValueError(f"CPU time cannot be negative, got {us}")
        return us * self.clock_hz / US_PER_SEC

    def overhead_fraction(self, dispatch_hz: float) -> float:
        """Analytic dispatch overhead at a given dispatcher frequency.

        ``fraction = dispatch_hz * effective_cost(dispatch_hz) / 1e6``,
        clamped to [0, 1].  Used for calibration and as the analytic
        reference in the Figure 8 reproduction.
        """
        if dispatch_hz < 0:
            raise ValueError(f"dispatch_hz cannot be negative, got {dispatch_hz}")
        fraction = (
            dispatch_hz * self.effective_dispatch_cost_us(dispatch_hz) / US_PER_SEC
        )
        return min(1.0, max(0.0, fraction))


__all__ = ["CPUModel", "CPUState"]
