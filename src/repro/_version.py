"""Single source of the package version.

Everything that needs the version reads it from here: ``repro.__init__``
re-exports it, ``setup.py`` parses this file without importing the
package, and every JSON artifact the experiment CLI writes is stamped
with it (next to the artifact schema version).
"""

__version__ = "1.1.0"

__all__ = ["__version__"]
