"""``python -m repro`` — the experiment command line (see repro.cli)."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
