"""Progress-pressure sources (Figure 3 inputs).

For shared queues the paper computes the per-metric value as

    F_t,i = fill_level / size - 1/2

so F ranges over [-1/2, +1/2] with 0 at the half-full set point that
"leaves maximal room to handle bursts by both the producer and
consumer".  R_t,i flips the sign for producers.  A thread's summed
instantaneous pressure is Σ_i R_t,i · F_t,i, which the controller then
passes through the PID block G.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ipc.bounded_buffer import Channel
from repro.ipc.registry import Linkage, SymbioticRegistry
from repro.sim.thread import SimThread

#: The target fill level: half full, per the paper.
SETPOINT_FILL = 0.5

#: Pressure applied to miscellaneous threads (no progress metric).  The
#: paper only says it is "a positive constant"; a modest value keeps a
#: lone hog from instantly demanding the whole machine while still
#: growing to use all spare CPU within a few controller periods.
DEFAULT_CONSTANT_PRESSURE = 0.25


@dataclass(frozen=True)
class PressureSample:
    """One thread's progress-pressure observation at a sampling instant.

    Attributes
    ----------
    raw:
        Σ R·F over all the thread's linkages (or the constant for
        metric-less threads); bounded by ±(number of linkages)/2.
    per_channel:
        The individual signed contributions, keyed by channel name, for
        tracing and debugging.
    saturated_full / saturated_empty:
        Whether any of the thread's queues was completely full or
        completely empty at the sample — the condition under which the
        controller may raise a quality exception during overload.
    mean_fill:
        Mean fill level across the thread's queues at the sample (the
        period estimator's input), or ``None`` when the source has no
        queues.  Computed alongside the pressures so the controller
        does not re-read every fill level a second time per tick.
    """

    raw: float
    per_channel: dict[str, float] = field(default_factory=dict)
    saturated_full: bool = False
    saturated_empty: bool = False
    mean_fill: Optional[float] = None


class QueueFillMonitor:
    """Computes the signed F value for a single linkage."""

    def __init__(self, linkage: Linkage, setpoint: float = SETPOINT_FILL) -> None:
        if not 0.0 < setpoint < 1.0:
            raise ValueError(f"setpoint must be inside (0, 1), got {setpoint}")
        self.linkage = linkage
        self.setpoint = setpoint

    @property
    def channel(self) -> Channel:
        """The channel being observed."""
        return self.linkage.channel

    def fill_deviation(self) -> float:
        """F_t,i = fill_level - setpoint, in [-setpoint, 1-setpoint]."""
        return self.channel.fill_level() - self.setpoint

    def signed_pressure(self) -> float:
        """R_t,i * F_t,i — positive means "needs more CPU"."""
        return self.linkage.pressure_sign() * self.fill_deviation()


class ConstantPressureSource:
    """Pseudo-progress for threads with no symbiotic interface.

    "For proportion, the controller approximates the thread's progress
    with a positive constant. In this way there is constant pressure to
    allocate more CPU to a miscellaneous thread, until it is either
    satisfied or the CPU becomes oversubscribed."
    """

    def __init__(self, pressure: float = DEFAULT_CONSTANT_PRESSURE) -> None:
        if pressure <= 0:
            raise ValueError(
                f"miscellaneous pressure must be positive, got {pressure}"
            )
        self.pressure = pressure
        # The sample never varies, and PressureSample is frozen: hand
        # out one shared instance instead of building one per thread
        # per controller tick.
        self._sample = PressureSample(raw=pressure, per_channel={})

    def sample(self) -> PressureSample:
        """Return the constant pressure as a sample."""
        return self._sample


class ProgressSampler:
    """Collects a thread's combined pressure from the registry.

    One sampler per controlled thread; created lazily by the allocator
    when a thread registers.  The sampler re-reads the registry's
    linkage list at every sample so channels registered after the thread
    joined are picked up automatically.
    """

    def __init__(
        self,
        thread: SimThread,
        registry: SymbioticRegistry,
        setpoint: float = SETPOINT_FILL,
    ) -> None:
        self.thread = thread
        self.registry = registry
        self.setpoint = setpoint

    def linkages(self) -> list[Linkage]:
        """Current linkages for the thread."""
        return self.registry.linkages_for(self.thread)

    def sample(self) -> Optional[PressureSample]:
        """Sample the thread's summed pressure, or ``None`` if no metric."""
        linkages = self.linkages()
        if not linkages:
            return None
        total = 0.0
        fill_total = 0.0
        per_channel: dict[str, float] = {}
        saturated_full = False
        saturated_empty = False
        setpoint = self.setpoint
        for linkage in linkages:
            # The per-linkage arithmetic of QueueFillMonitor, without
            # building a monitor object per linkage per tick.
            channel = linkage.channel
            fill = channel.fill_level()
            fill_total += fill
            signed = linkage.role.sign * (fill - setpoint)
            per_channel[channel.name] = signed
            total += signed
            if channel.is_full():
                saturated_full = True
            if channel.is_empty():
                saturated_empty = True
        return PressureSample(
            raw=total,
            per_channel=per_channel,
            saturated_full=saturated_full,
            saturated_empty=saturated_empty,
            mean_fill=fill_total / len(linkages),
        )


__all__ = [
    "ConstantPressureSource",
    "DEFAULT_CONSTANT_PRESSURE",
    "PressureSample",
    "ProgressSampler",
    "QueueFillMonitor",
    "SETPOINT_FILL",
]
