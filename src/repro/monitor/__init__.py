"""Progress monitoring.

The monitors turn raw symbiotic-interface state (queue fill levels,
roles) and kernel accounting (CPU used vs. allocated, run-before-block
times) into the per-thread signals the adaptive controller consumes:

* :class:`~repro.monitor.progress.QueueFillMonitor` — the F value of
  Figure 3 for one (thread, channel, role) linkage;
* :class:`~repro.monitor.progress.ConstantPressureSource` — the
  positive-constant pseudo-progress used for miscellaneous threads;
* :class:`~repro.monitor.progress.ProgressSampler` — gathers a thread's
  combined pressure sample from all of its linkages;
* :class:`~repro.monitor.usage.UsageMonitor` — per-controller-interval
  CPU usage vs. allocation, driving the "too generous" reclaim rule of
  Figure 4 and the run-before-block heuristic for threads with no
  progress metric;
* :class:`~repro.monitor.watchdog.Watchdog` — a second feedback loop
  that quarantines runaway or stalled reservations (demotion to
  best-effort with backoff re-promotion), keeping a misbehaving thread
  from displacing well-behaved reservations.
"""

from repro.monitor.progress import (
    ConstantPressureSource,
    PressureSample,
    ProgressSampler,
    QueueFillMonitor,
)
from repro.monitor.usage import UsageMonitor, UsageSample
from repro.monitor.watchdog import QuarantineRecord, Watchdog

__all__ = [
    "ConstantPressureSource",
    "PressureSample",
    "ProgressSampler",
    "QuarantineRecord",
    "QueueFillMonitor",
    "UsageMonitor",
    "UsageSample",
    "Watchdog",
]
