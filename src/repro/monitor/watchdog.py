"""Reservation watchdog: detect runaway and stalled threads.

A second feedback loop alongside the paper's PID controller.  The PID
loop adjusts *how much* CPU a thread gets; the watchdog decides whether
the thread still deserves a reservation at all.  It samples coarse,
observable signals — deadline misses and CPU/block deltas — on a
periodic calendar tick and quarantines misbehaving reservations:

* **Runaway** — the thread burns its whole budget and still wants more
  (its reservation records a deadline miss every period), while never
  blocking or sleeping.  A healthy pipeline thread parks on its queues;
  a runaway's compute loop never does.
* **Stalled** — the thread holds a reservation but consumed zero CPU
  for several consecutive windows.  Its reserved capacity is pure
  waste until it wakes.

Quarantine demotes the thread to best-effort
(:meth:`~repro.sched.rbs.ReservationScheduler.clear_reservation`), so a
runaway can no longer displace well-behaved reservations — it competes
with the best-effort class only.  Each quarantine schedules a
re-promotion calendar event after a backoff that doubles per offense
(capped), restoring the original reservation if the thread still
exists.  A repeat offender is simply re-caught on the same evidence and
sits out a longer window each time.

Detection thresholds are deliberately conservative (several consecutive
windows) so bursty-but-honest threads never trip them; see the
``runaway_quarantine`` experiment for the calibrated behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.sched.rbs import ReservationScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.allocator import ProportionAllocator
    from repro.core.taxonomy import ThreadSpec
    from repro.sim.kernel import Kernel
    from repro.sim.thread import SimThread

#: Default watchdog sampling period: 20 ms (two controller periods).
DEFAULT_WATCHDOG_PERIOD_US = 20_000

#: Consecutive miss windows before a runaway verdict.
DEFAULT_MISS_WINDOWS = 3

#: Consecutive zero-progress windows before a stall verdict.
DEFAULT_STALL_WINDOWS = 4

#: First quarantine length; doubles per offense.
DEFAULT_QUARANTINE_US = 50_000

#: Ceiling on the doubled quarantine length.
DEFAULT_MAX_QUARANTINE_US = 400_000


@dataclass
class _ThreadWindow:
    """Last tick's counters for one watched reservation."""

    deadline_misses: int = 0
    total_us: int = 0
    parks: int = 0  # blocks + sleeps
    miss_streak: int = 0
    stall_streak: int = 0


@dataclass
class QuarantineRecord:
    """One quarantine episode (exposed for reports and tests)."""

    tid: int
    name: str
    verdict: str  # "runaway" | "stalled"
    quarantined_at_us: int
    release_at_us: int
    offense: int
    proportion_ppt: int
    period_us: int
    released: bool = False
    repromoted: bool = False


class Watchdog:
    """Periodic misbehaviour detector with quarantine and re-promotion.

    Parameters
    ----------
    kernel, scheduler:
        The simulation and its reservation scheduler.
    allocator:
        Optional.  When given, a quarantined thread is also unregistered
        from the feedback controller (and re-registered with its
        original spec on release) so the controller cannot immediately
        re-grant the reservation the watchdog just revoked.
    period_us, miss_windows, stall_windows:
        Sampling period and consecutive-window thresholds.
    quarantine_us, max_quarantine_us:
        Backoff schedule for quarantine lengths.
    """

    def __init__(
        self,
        kernel: "Kernel",
        scheduler: ReservationScheduler,
        *,
        allocator: "Optional[ProportionAllocator]" = None,
        period_us: int = DEFAULT_WATCHDOG_PERIOD_US,
        miss_windows: int = DEFAULT_MISS_WINDOWS,
        stall_windows: int = DEFAULT_STALL_WINDOWS,
        quarantine_us: int = DEFAULT_QUARANTINE_US,
        max_quarantine_us: int = DEFAULT_MAX_QUARANTINE_US,
        start_us: Optional[int] = None,
    ) -> None:
        if period_us <= 0:
            raise ValueError(f"watchdog period must be positive, got {period_us}")
        if miss_windows <= 0 or stall_windows <= 0:
            raise ValueError("detection windows must be positive")
        if quarantine_us <= 0:
            raise ValueError(
                f"quarantine length must be positive, got {quarantine_us}"
            )
        self.kernel = kernel
        self.scheduler = scheduler
        self.allocator = allocator
        self.period_us = period_us
        self.miss_windows = miss_windows
        self.stall_windows = stall_windows
        self.quarantine_us = quarantine_us
        self.max_quarantine_us = max(max_quarantine_us, quarantine_us)
        self._windows: dict[int, _ThreadWindow] = {}
        self._offenses: dict[int, int] = {}
        self._quarantined: dict[int, QuarantineRecord] = {}
        #: Every quarantine ever issued, chronological.
        self.history: list[QuarantineRecord] = []
        first = period_us if start_us is None else start_us
        self._periodic = kernel.add_periodic(
            period_us, self._tick, start_us=first, label="watchdog"
        )

    def stop(self) -> None:
        """Cancel the periodic tick (quarantine releases still fire)."""
        self._periodic.stop()

    # ------------------------------------------------------------------
    # detection
    # ------------------------------------------------------------------
    def _tick(self, now: int) -> None:
        seen: set[int] = set()
        for thread in self.scheduler.threads():
            if not thread.state.is_live or thread.tid in self._quarantined:
                continue
            reservation = self.scheduler.reservation(thread)
            if reservation is None or reservation.proportion_ppt <= 0:
                self._windows.pop(thread.tid, None)
                continue
            seen.add(thread.tid)
            window = self._windows.get(thread.tid)
            misses = reservation.deadline_misses
            total = thread.accounting.total_us
            parks = thread.accounting.blocks + thread.accounting.sleeps
            if window is None:
                # First observation: just baseline the counters.
                self._windows[thread.tid] = _ThreadWindow(misses, total, parks)
                continue
            missed = misses > window.deadline_misses
            parked = parks > window.parks
            ran = total > window.total_us
            if missed and not parked:
                window.miss_streak += 1
            else:
                window.miss_streak = 0
            if not ran:
                window.stall_streak += 1
            else:
                window.stall_streak = 0
            window.deadline_misses = misses
            window.total_us = total
            window.parks = parks
            if window.miss_streak >= self.miss_windows:
                self._quarantine(thread, reservation.proportion_ppt,
                                 reservation.period_us, "runaway", now)
            elif window.stall_streak >= self.stall_windows:
                self._quarantine(thread, reservation.proportion_ppt,
                                 reservation.period_us, "stalled", now)
        # Drop state for threads that exited or lost their reservation.
        for tid in [t for t in self._windows if t not in seen]:
            del self._windows[tid]

    # ------------------------------------------------------------------
    # quarantine / re-promotion
    # ------------------------------------------------------------------
    def _controlled_spec(self, thread: "SimThread") -> "Optional[ThreadSpec]":
        """The allocator spec for ``thread``, if it is under control."""
        if self.allocator is None:
            return None
        # Imported here: repro.monitor must stay importable without
        # repro.core (the allocator imports this package's progress
        # module, so a module-level import would be circular).
        from repro.core.errors import ControllerError

        try:
            return self.allocator.spec_for(thread)
        except ControllerError:
            return None

    def _quarantine(
        self, thread: "SimThread", ppt: int, period_us: int, verdict: str, now: int
    ) -> None:
        offense = self._offenses.get(thread.tid, 0) + 1
        self._offenses[thread.tid] = offense
        length = min(
            self.quarantine_us * (2 ** (offense - 1)), self.max_quarantine_us
        )
        record = QuarantineRecord(
            tid=thread.tid,
            name=thread.name,
            verdict=verdict,
            quarantined_at_us=now,
            release_at_us=now + length,
            offense=offense,
            proportion_ppt=ppt,
            period_us=period_us,
        )
        spec = self._controlled_spec(thread)
        if spec is not None and self.allocator is not None:
            # Unregistering clears the reservation *and* stops the PID
            # loop from re-granting it next tick.
            self.allocator.unregister(thread)
        else:
            self.scheduler.clear_reservation(thread)
        self._windows.pop(thread.tid, None)
        self._quarantined[thread.tid] = record
        self.history.append(record)
        self.kernel.events.schedule(
            record.release_at_us,
            lambda: self._release(thread, record, spec),
            label=f"watchdog:release:{thread.name}",
        )

    def _release(
        self,
        thread: "SimThread",
        record: QuarantineRecord,
        spec: "Optional[ThreadSpec]",
    ) -> None:
        self._quarantined.pop(record.tid, None)
        record.released = True
        if not thread.state.is_live or not self.scheduler.has_thread(thread):
            return
        if self.allocator is not None and spec is not None:
            from repro.core.errors import AdmissionError

            try:
                self.allocator.register(thread, spec)
            except AdmissionError:
                # Capacity shrank while it sat out; stay best-effort.
                return
        else:
            self.scheduler.set_reservation(
                thread,
                record.proportion_ppt,
                record.period_us,
                now=self.kernel.now,
            )
        record.repromoted = True
        # Fresh baseline next tick; a still-runaway thread re-trips
        # after the usual number of windows and serves a longer term.

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def quarantined_tids(self) -> tuple[int, ...]:
        """tids currently serving a quarantine."""
        return tuple(sorted(self._quarantined))

    def quarantine_count(self) -> int:
        """Total quarantine episodes issued so far."""
        return len(self.history)


__all__ = [
    "DEFAULT_MAX_QUARANTINE_US",
    "DEFAULT_MISS_WINDOWS",
    "DEFAULT_QUARANTINE_US",
    "DEFAULT_STALL_WINDOWS",
    "DEFAULT_WATCHDOG_PERIOD_US",
    "QuarantineRecord",
    "Watchdog",
]
