"""CPU usage monitoring.

Two controller mechanisms need to know how much CPU a thread actually
consumed during the last controller interval:

* the **reclaim rule** of Figure 4 — "the controller compares the CPU
  used by a thread with the amount allocated to it.  If the difference
  is larger than a threshold, the controller assumes the pressure is
  overestimating the actual need and the allocation should be reduced";
* the **run-before-block heuristic** for threads with no progress
  metric — the paper suggests estimating an interactive job's
  proportion "by measuring the amount of time they typically run before
  blocking".

:class:`UsageMonitor` keeps a per-thread snapshot of lifetime CPU so it
can report per-interval deltas without the kernel having to maintain
controller-specific counters.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.sim.thread import SimThread


class UsageSample(NamedTuple):
    """CPU usage of one thread over one controller interval.

    A named tuple rather than a dataclass: one sample is built per
    controlled thread per controller tick, making construction cost
    part of the controller's hot path.
    """

    used_us: int
    interval_us: int
    allocated_us: int

    @property
    def used_fraction(self) -> float:
        """CPU used as a fraction of the interval."""
        if self.interval_us <= 0:
            return 0.0
        return self.used_us / self.interval_us

    @property
    def allocated_fraction(self) -> float:
        """CPU allocated as a fraction of the interval."""
        if self.interval_us <= 0:
            return 0.0
        return self.allocated_us / self.interval_us

    @property
    def unused_fraction_of_allocation(self) -> float:
        """How much of the allocation went unused, in [0, 1]."""
        if self.allocated_us <= 0:
            return 0.0
        unused = max(0, self.allocated_us - self.used_us)
        return unused / self.allocated_us


class UsageMonitor:
    """Tracks per-interval CPU usage of controlled threads."""

    def __init__(self) -> None:
        #: tid -> (lifetime CPU at last sample, time of last sample);
        #: one dict so each sample costs a single lookup + store.
        self._last: dict[int, tuple[int, int]] = {}

    def forget(self, thread: SimThread) -> None:
        """Drop state for a thread (on deregistration or exit)."""
        self._last.pop(thread.tid, None)

    def sample(
        self, thread: SimThread, now: int, allocated_ppt: int
    ) -> UsageSample:
        """CPU used by ``thread`` since its previous sample.

        ``allocated_ppt`` is the proportion (parts per thousand) the
        thread held over the interval; the sample converts it to an
        allocated-microseconds figure for direct comparison.
        """
        total = thread.accounting.total_us
        previous_total, previous_time = self._last.get(thread.tid, (total, now))
        used = max(0, total - previous_total)
        interval = max(0, now - previous_time)
        self._last[thread.tid] = (total, now)
        allocated = interval * allocated_ppt // 1000
        return UsageSample(used_us=used, interval_us=interval, allocated_us=allocated)

    def run_before_block_us(self, thread: SimThread) -> float:
        """The thread's smoothed run-before-block time (heuristic input)."""
        return thread.accounting.run_before_block_ema_us


__all__ = ["UsageMonitor", "UsageSample"]
