"""Deterministic, seeded fault injection and graceful degradation.

The robustness subsystem: everything needed to make the simulated
machine misbehave on purpose and to watch the scheduler and controller
degrade gracefully.

* :mod:`repro.faults.plan` — :class:`FaultPlan` / :class:`FaultEvent`,
  the declarative wire-versioned schedule of faults;
* :mod:`repro.faults.injector` — :class:`FaultInjector`, which turns a
  plan into :class:`~repro.sim.events.EventCalendar` entries (CPU
  hotplug, runaway/stall hijacks, sensor dropout/corruption windows);
* :mod:`repro.faults.degradation` — :class:`DegradationManager`, the
  squish-first / shed-best-effort / revoke-lowest-value policy chain
  reacting to lost capacity, with backoff re-admission on recovery.

Everything actuates through calendar events, so fault scenarios stay
bit-identical across the ``quantum`` and ``horizon`` engines.  The
companion :class:`~repro.monitor.watchdog.Watchdog` (in the monitor
package, where the other sensors live) closes the loop by detecting
the injected misbehaviour from observable signals alone.
"""

from repro.faults.degradation import (
    DEFAULT_MAX_BACKOFF_US,
    DEFAULT_MIN_PPT,
    DEFAULT_READMIT_BACKOFF_US,
    DegradationAction,
    DegradationManager,
)
from repro.faults.errors import FaultError, FaultInjectionError, FaultPlanError
from repro.faults.injector import (
    RUNAWAY_BURST_US,
    STALL_PROBE_US,
    FaultInjector,
    FaultySensor,
    InjectionRecord,
)
from repro.faults.plan import (
    CPU_FAIL,
    CPU_RECOVER,
    FAULT_KINDS,
    FAULT_PLAN_SCHEMA_VERSION,
    RUNAWAY_START,
    RUNAWAY_STOP,
    SENSOR_CORRUPT,
    SENSOR_DROPOUT,
    STALL_START,
    STALL_STOP,
    FaultEvent,
    FaultPlan,
)

__all__ = [
    "CPU_FAIL",
    "CPU_RECOVER",
    "DEFAULT_MAX_BACKOFF_US",
    "DEFAULT_MIN_PPT",
    "DEFAULT_READMIT_BACKOFF_US",
    "DegradationAction",
    "DegradationManager",
    "FAULT_KINDS",
    "FAULT_PLAN_SCHEMA_VERSION",
    "FaultError",
    "FaultEvent",
    "FaultInjectionError",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultySensor",
    "InjectionRecord",
    "RUNAWAY_BURST_US",
    "RUNAWAY_START",
    "RUNAWAY_STOP",
    "SENSOR_CORRUPT",
    "SENSOR_DROPOUT",
    "STALL_PROBE_US",
    "STALL_START",
    "STALL_STOP",
]
