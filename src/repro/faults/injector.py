"""Turns a :class:`~repro.faults.plan.FaultPlan` into calendar events.

Every fault actuates through the :class:`~repro.sim.events.EventCalendar`
— the same mechanism the workload engine uses for arrivals and phase
scripts — because calendar events are the one place both execution
engines (``quantum`` and ``horizon``) are guaranteed to observe at
identical virtual times: batches break whenever an event comes due, so
a CPU failing at t=50ms lands between the same two dispatches no matter
which engine runs the simulation.

Three fault families:

* **CPU hotplug** — :data:`~repro.faults.plan.CPU_FAIL` /
  :data:`~repro.faults.plan.CPU_RECOVER` delegate to
  :meth:`Kernel.fail_cpu` / :meth:`Kernel.recover_cpu`.
* **Thread misbehaviour** — runaway (a compute loop that stops
  honouring think time) and stall (a hang) are implemented by swapping
  the victim's behaviour generator for a :class:`_HijackedBody` that
  fabricates requests.  IPC payloads delivered during the fault window
  are stashed and re-delivered when the real body is restored, so a
  *recovered* thread resumes exactly where it left off.
* **Controller sensor faults** — dropout and corruption windows wrap
  the victim's :class:`~repro.monitor.progress.ProgressSampler` in a
  :class:`FaultySensor` via the allocator's sampler accessors.

The injector never acts synchronously: :meth:`FaultInjector.install`
only schedules.  That means a victim is never RUNNING when hijacked
(events fire between dispatches), which is what makes the generator
swap safe.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Generator, Optional, cast

from repro.core.errors import ControllerError
from repro.faults.errors import FaultInjectionError
from repro.faults.plan import (
    CPU_FAIL,
    CPU_RECOVER,
    RUNAWAY_START,
    RUNAWAY_STOP,
    SENSOR_CORRUPT,
    SENSOR_DROPOUT,
    STALL_START,
    STALL_STOP,
    FaultEvent,
    FaultPlan,
)
from repro.monitor.progress import PressureSample, ProgressSampler
from repro.sim.requests import Compute, Request, Sleep

if TYPE_CHECKING:  # pragma: no cover
    from repro.ipc.registry import Linkage
    from repro.sim.kernel import Kernel
    from repro.sim.thread import SimThread

    from repro.core.allocator import ProportionAllocator

#: Compute-burst length a runaway thread issues per advance.  Short
#: enough that preemption/accounting stay fine-grained, long enough not
#: to swamp the calendar.
RUNAWAY_BURST_US = 1_000

#: Sleep length a stalled thread issues per advance (it must keep
#: yielding *something* or the kernel would consider it exited).
STALL_PROBE_US = 5_000


class _FaultBox:
    """Shared state between a hijack and its eventual restore.

    ``pending_send`` stashes an IPC payload the kernel delivered while
    the fault was active (at most one can be outstanding: the real
    generator is parked at a single ``yield``), so the restore can hand
    it to the real body instead of losing it.
    """

    __slots__ = ("has_pending", "original", "pending_send")

    def __init__(self, original: Generator[Request, Any, None]) -> None:
        self.original = original
        self.pending_send: Any = None
        self.has_pending = False


class _HijackedBody:
    """Stand-in generator driving a runaway or stalled thread.

    Quacks like the slice of the generator protocol
    :meth:`SimThread.advance` uses (``send``/``throw``/``close``).  It
    never raises ``StopIteration``: a faulted thread cannot exit, which
    keeps restore-on-live-thread a total operation.
    """

    __slots__ = ("box", "chunk_us", "mode")

    def __init__(self, box: _FaultBox, mode: str, chunk_us: int) -> None:
        self.box = box
        self.mode = mode
        self.chunk_us = chunk_us

    def send(self, value: Any) -> Request:
        if value is not None:
            # An IPC payload arrived mid-fault; park it for the real
            # body, which is still waiting at its yield point.
            self.box.pending_send = value
            self.box.has_pending = True
        if self.mode == "runaway":
            return Compute(self.chunk_us)
        return Sleep(self.chunk_us)

    def throw(self, *exc_info: Any) -> Request:  # pragma: no cover - protocol
        raise exc_info[0]

    def close(self) -> None:  # pragma: no cover - protocol
        pass


class FaultySensor(ProgressSampler):
    """A progress sampler lying on behalf of a sensor-fault window.

    Subclasses :class:`ProgressSampler` (so it slots into the
    allocator's typed sampler field) but delegates to the wrapped
    ``inner`` sampler:

    * ``dropout`` — :meth:`sample` returns ``None``, the same signal a
      metric-less thread produces; the controller falls back to zero
      pressure for the window.
    * ``corrupt`` — seeded uniform noise in ``[-magnitude, +magnitude]``
      is added to the raw pressure (the summed R·F signal the PID
      consumes); per-channel values keep their true readings so traces
      show the corruption.
    """

    def __init__(
        self,
        inner: ProgressSampler,
        mode: str,
        rng: random.Random,
        magnitude: float = 0.0,
    ) -> None:
        super().__init__(inner.thread, inner.registry, setpoint=inner.setpoint)
        if mode not in ("dropout", "corrupt"):
            raise FaultInjectionError(f"unknown sensor fault mode {mode!r}")
        self.inner = inner
        self.mode = mode
        self.magnitude = magnitude
        self._rng = rng

    def linkages(self) -> "list[Linkage]":
        return self.inner.linkages()

    def sample(self) -> Optional[PressureSample]:
        if self.mode == "dropout":
            return None
        sample = self.inner.sample()
        if sample is None:
            return None
        noise = (self._rng.random() * 2.0 - 1.0) * self.magnitude
        return replace(sample, raw=sample.raw + noise)


@dataclass(frozen=True)
class InjectionRecord:
    """One line of the injector's log: what fired and what it did."""

    at_us: int
    kind: str
    detail: str
    hit: bool = True


class FaultInjector:
    """Schedules a plan's faults and actuates them at fire time.

    Parameters
    ----------
    kernel:
        The simulation to hurt.
    plan:
        The declarative fault schedule.
    allocator:
        Required when the plan contains sensor faults (the sampler
        accessors live on the allocator); otherwise optional.
    """

    def __init__(
        self,
        kernel: "Kernel",
        plan: FaultPlan,
        *,
        allocator: "Optional[ProportionAllocator]" = None,
    ) -> None:
        self.kernel = kernel
        self.plan = plan
        self.allocator = allocator
        #: Chronological record of every fault firing (and every miss).
        self.log: list[InjectionRecord] = []
        self._rng = random.Random(plan.seed)
        self._hijacked: dict[int, _FaultBox] = {}
        self._faulty_sensors: dict[int, FaultySensor] = {}
        self._installed = False

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------
    def install(self) -> None:
        """Schedule every plan event (plus auto-derived stop events)."""
        if self._installed:
            raise FaultInjectionError("fault plan is already installed")
        self._installed = True
        for event in self.plan.events:
            if (
                event.kind in (SENSOR_DROPOUT, SENSOR_CORRUPT)
                and self.allocator is None
            ):
                raise FaultInjectionError(
                    f"{event.kind} at t={event.at_us} needs an allocator "
                    "(sensor faults wrap the controller's samplers)"
                )
            self.kernel.events.schedule(
                event.at_us,
                lambda event=event: self._fire(event),
                label=f"fault:{event.kind}",
            )
            stop = self._derived_stop(event)
            if stop is not None:
                self.kernel.events.schedule(
                    stop.at_us,
                    lambda stop=stop: self._fire(stop),
                    label=f"fault:{stop.kind}",
                )

    @staticmethod
    def _derived_stop(event: FaultEvent) -> Optional[FaultEvent]:
        """The implicit stop/recover a windowed start event implies."""
        if event.duration_us is None:
            return None
        end = event.at_us + event.duration_us
        if event.kind == CPU_FAIL:
            return FaultEvent(at_us=end, kind=CPU_RECOVER, cpu=event.cpu)
        if event.kind == RUNAWAY_START:
            return FaultEvent(at_us=end, kind=RUNAWAY_STOP, thread=event.thread)
        if event.kind == STALL_START:
            return FaultEvent(at_us=end, kind=STALL_STOP, thread=event.thread)
        # Sensor windows restore through a dedicated closure bound to
        # the exact sensor they installed; handled in _fire.
        return None

    # ------------------------------------------------------------------
    # fire-time actuation
    # ------------------------------------------------------------------
    def _note(self, kind: str, detail: str, *, hit: bool = True) -> None:
        self.log.append(
            InjectionRecord(at_us=self.kernel.now, kind=kind, detail=detail, hit=hit)
        )

    def _resolve(self, name: Optional[str]) -> "Optional[SimThread]":
        """First live thread with ``name``, in creation order."""
        for thread in self.kernel.threads:
            if thread.name == name and thread.state.is_live:
                return thread
        return None

    def _fire(self, event: FaultEvent) -> None:
        kind = event.kind
        if kind == CPU_FAIL:
            self._fire_cpu_fail(event)
        elif kind == CPU_RECOVER:
            self._fire_cpu_recover(event)
        elif kind in (RUNAWAY_START, STALL_START):
            self._fire_hijack(event)
        elif kind in (RUNAWAY_STOP, STALL_STOP):
            self._fire_restore(event)
        else:
            self._fire_sensor(event)

    def _fire_cpu_fail(self, event: FaultEvent) -> None:
        cpu = event.cpu
        assert cpu is not None
        if not self.kernel.cpu_is_online(cpu):
            self._note(event.kind, f"cpu{cpu} already offline", hit=False)
            return
        drained = self.kernel.fail_cpu(cpu)
        names = ",".join(t.name for t in drained) or "-"
        self._note(event.kind, f"cpu{cpu} failed, drained [{names}]")

    def _fire_cpu_recover(self, event: FaultEvent) -> None:
        cpu = event.cpu
        assert cpu is not None
        if self.kernel.cpu_is_online(cpu):
            self._note(event.kind, f"cpu{cpu} already online", hit=False)
            return
        restored = self.kernel.recover_cpu(cpu)
        names = ",".join(t.name for t in restored) or "-"
        self._note(event.kind, f"cpu{cpu} recovered, re-pinned [{names}]")

    def _fire_hijack(self, event: FaultEvent) -> None:
        thread = self._resolve(event.thread)
        if thread is None:
            self._note(event.kind, f"no live thread named {event.thread!r}", hit=False)
            return
        if thread.tid in self._hijacked:
            self._note(event.kind, f"{thread.name} already hijacked", hit=False)
            return
        generator = thread._generator
        if generator is None:
            self._note(
                event.kind, f"{thread.name} has no behaviour generator", hit=False
            )
            return
        if event.kind == RUNAWAY_START:
            mode, chunk = "runaway", RUNAWAY_BURST_US
        else:
            mode, chunk = "stall", STALL_PROBE_US
        box = _FaultBox(generator)
        thread._generator = cast(
            Generator[Request, Any, None], _HijackedBody(box, mode, chunk)
        )
        self._hijacked[thread.tid] = box
        self._note(event.kind, f"{thread.name} hijacked ({mode})")

    def _fire_restore(self, event: FaultEvent) -> None:
        thread = self._resolve(event.thread)
        if thread is None:
            self._note(event.kind, f"no live thread named {event.thread!r}", hit=False)
            return
        box = self._hijacked.pop(thread.tid, None)
        if box is None:
            self._note(event.kind, f"{thread.name} not hijacked", hit=False)
            return
        thread._generator = box.original
        if box.has_pending:
            # Re-deliver the payload intercepted mid-fault; the kernel
            # hands _pending_send to the next advance, which resumes
            # the real body at the yield that asked for it.
            thread._pending_send = box.pending_send
        self._note(event.kind, f"{thread.name} restored")

    def _fire_sensor(self, event: FaultEvent) -> None:
        allocator = self.allocator
        assert allocator is not None  # enforced at install time
        assert event.duration_us is not None
        thread = self._resolve(event.thread)
        if thread is None:
            self._note(event.kind, f"no live thread named {event.thread!r}", hit=False)
            return
        if thread.tid in self._faulty_sensors:
            self._note(
                event.kind, f"{thread.name} sensor already faulted", hit=False
            )
            return
        try:
            inner = allocator.sampler_for(thread)
        except ControllerError:
            self._note(event.kind, f"{thread.name} is not controlled", hit=False)
            return
        mode = "dropout" if event.kind == SENSOR_DROPOUT else "corrupt"
        faulty = FaultySensor(inner, mode, self._rng, magnitude=event.magnitude)
        allocator.set_sampler(thread, faulty)
        self._faulty_sensors[thread.tid] = faulty
        self._note(event.kind, f"{thread.name} sensor {mode} begins")
        self.kernel.events.schedule(
            self.kernel.now + event.duration_us,
            lambda: self._restore_sensor(thread, faulty, event.kind),
            label=f"fault:{event.kind}:end",
        )

    def _restore_sensor(
        self, thread: "SimThread", faulty: FaultySensor, kind: str
    ) -> None:
        allocator = self.allocator
        assert allocator is not None
        current = self._faulty_sensors.get(thread.tid)
        if current is not faulty:
            self._note(kind, f"{thread.name} sensor already restored", hit=False)
            return
        del self._faulty_sensors[thread.tid]
        if not thread.state.is_live:
            self._note(kind, f"{thread.name} exited during sensor fault", hit=False)
            return
        try:
            if allocator.sampler_for(thread) is faulty:
                allocator.set_sampler(thread, faulty.inner)
        except ControllerError:
            self._note(kind, f"{thread.name} no longer controlled", hit=False)
            return
        self._note(kind, f"{thread.name} sensor restored")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def active_hijacks(self) -> tuple[int, ...]:
        """tids currently running a hijacked body."""
        return tuple(sorted(self._hijacked))

    def hits(self) -> int:
        """Number of log entries that actuated (vs missed)."""
        return sum(1 for record in self.log if record.hit)


__all__ = [
    "FaultInjector",
    "FaultySensor",
    "InjectionRecord",
    "RUNAWAY_BURST_US",
    "STALL_PROBE_US",
]
