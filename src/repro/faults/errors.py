"""Errors raised by the fault-injection subsystem."""

from __future__ import annotations


class FaultError(Exception):
    """Base class for fault-injection errors."""


class FaultPlanError(FaultError):
    """A fault plan (or its wire form) is malformed."""


class FaultInjectionError(FaultError):
    """A fault could not be injected against the running simulation."""


__all__ = ["FaultError", "FaultInjectionError", "FaultPlanError"]
