"""Declarative, calendar-scheduled fault plans.

A :class:`FaultPlan` is the wire-friendly description of everything a
robustness experiment wants to go wrong: which CPUs fail and recover,
which threads turn runaway or stall, and when the controller's progress
sensors drop out or lie.  Plans are pure data — building one performs
no injection; :class:`~repro.faults.injector.FaultInjector` turns a
plan into :class:`~repro.sim.events.EventCalendar` entries, which is
what keeps every fault bit-identical across the ``quantum`` and
``horizon`` engines (calendar events fire at identical virtual times in
both).

The wire forms (:meth:`FaultEvent.to_dict` / :meth:`FaultPlan.to_dict`)
are versioned by :data:`FAULT_PLAN_SCHEMA_VERSION` and round-trip
exactly, so fault scenarios can live in JSON next to the golden-trace
corpus and in experiment result payloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from repro.faults.errors import FaultPlanError

#: Wire-format version of every serialised class in this module.  Bump
#: on any incompatible change to the dict forms below.
FAULT_PLAN_SCHEMA_VERSION = 1

# ---------------------------------------------------------------------------
# fault kinds
# ---------------------------------------------------------------------------
#: Take a CPU offline (simulated hotplug remove).  Requires ``cpu``; an
#: optional ``duration_us`` auto-schedules the matching recovery.
CPU_FAIL = "cpu_fail"
#: Bring a failed CPU back online.  Requires ``cpu``.
CPU_RECOVER = "cpu_recover"
#: Hijack a thread into a compute loop that stops honouring its think
#: time.  Requires ``thread``; optional ``duration_us`` auto-stops it.
RUNAWAY_START = "runaway_start"
#: End a runaway window and restore the thread's real behaviour.
RUNAWAY_STOP = "runaway_stop"
#: Hijack a thread into a sleep loop (a hang: it stops consuming CPU
#: and stops making progress).  Requires ``thread``; optional
#: ``duration_us`` auto-stops it.
STALL_START = "stall_start"
#: End a stall window and restore the thread's real behaviour.
STALL_STOP = "stall_stop"
#: Controller sensor fault: the thread's progress sampler returns no
#: sample for ``duration_us``.  Requires ``thread`` and ``duration_us``.
SENSOR_DROPOUT = "sensor_dropout"
#: Controller sensor fault: seeded noise of amplitude ``magnitude`` is
#: added to the raw pressure signal for ``duration_us``.  Requires
#: ``thread``, ``duration_us`` and a positive ``magnitude``.
SENSOR_CORRUPT = "sensor_corrupt"

#: Every valid :attr:`FaultEvent.kind`.
FAULT_KINDS = frozenset(
    {
        CPU_FAIL,
        CPU_RECOVER,
        RUNAWAY_START,
        RUNAWAY_STOP,
        STALL_START,
        STALL_STOP,
        SENSOR_DROPOUT,
        SENSOR_CORRUPT,
    }
)

#: Kinds that target a CPU (``cpu`` required, ``thread`` forbidden).
CPU_KINDS = frozenset({CPU_FAIL, CPU_RECOVER})
#: Kinds that target a thread by name (``thread`` required).
THREAD_KINDS = FAULT_KINDS - CPU_KINDS
#: Windowed kinds for which ``duration_us`` is mandatory.
WINDOW_KINDS = frozenset({SENSOR_DROPOUT, SENSOR_CORRUPT})
#: Start kinds whose optional ``duration_us`` auto-schedules the stop.
START_KINDS = frozenset({CPU_FAIL, RUNAWAY_START, STALL_START})


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Attributes
    ----------
    at_us:
        Virtual time the fault fires, in microseconds.
    kind:
        One of the module-level kind constants (:data:`FAULT_KINDS`).
    cpu:
        CPU index, for :data:`CPU_FAIL` / :data:`CPU_RECOVER`.
    thread:
        Target thread *name* for thread-directed kinds.  Resolved at
        fire time to the first live thread with that name (threads are
        examined in creation order, so resolution is deterministic);
        a miss is logged, not raised — fault plans outliving their
        victims is a normal chaos outcome.
    duration_us:
        Window length.  Mandatory for sensor faults; optional for the
        start kinds, where it auto-schedules the matching stop/recover.
    magnitude:
        Noise amplitude for :data:`SENSOR_CORRUPT` (added to the raw
        pressure signal, uniformly drawn from ``[-magnitude,
        +magnitude]`` with the plan's seed).  Unused otherwise.
    """

    at_us: int
    kind: str
    cpu: Optional[int] = None
    thread: Optional[str] = None
    duration_us: Optional[int] = None
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if self.at_us < 0:
            raise FaultPlanError(f"fault time cannot be negative, got {self.at_us}")
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(FAULT_KINDS)}"
            )
        if self.kind in CPU_KINDS:
            if self.cpu is None:
                raise FaultPlanError(f"{self.kind} requires a cpu index")
            if self.cpu < 0:
                raise FaultPlanError(
                    f"{self.kind}: cpu index cannot be negative, got {self.cpu}"
                )
            if self.thread is not None:
                raise FaultPlanError(f"{self.kind} targets a cpu, not a thread")
        else:
            if not self.thread:
                raise FaultPlanError(f"{self.kind} requires a target thread name")
            if self.cpu is not None:
                raise FaultPlanError(f"{self.kind} targets a thread, not a cpu")
        if self.kind in WINDOW_KINDS and self.duration_us is None:
            raise FaultPlanError(f"{self.kind} requires duration_us")
        if self.duration_us is not None:
            if self.duration_us <= 0:
                raise FaultPlanError(
                    f"{self.kind}: duration_us must be positive, got "
                    f"{self.duration_us}"
                )
            if self.kind not in WINDOW_KINDS and self.kind not in START_KINDS:
                raise FaultPlanError(
                    f"{self.kind} is an instantaneous fault; duration_us "
                    "does not apply"
                )
        if self.magnitude < 0:
            raise FaultPlanError(
                f"magnitude cannot be negative, got {self.magnitude}"
            )
        if self.kind == SENSOR_CORRUPT and self.magnitude <= 0:
            raise FaultPlanError(f"{self.kind} requires a positive magnitude")

    def to_dict(self) -> dict[str, Any]:
        """Wire form; omits unset optionals to keep plans readable."""
        payload: dict[str, Any] = {"at_us": self.at_us, "kind": self.kind}
        if self.cpu is not None:
            payload["cpu"] = self.cpu
        if self.thread is not None:
            payload["thread"] = self.thread
        if self.duration_us is not None:
            payload["duration_us"] = self.duration_us
        if self.magnitude:
            payload["magnitude"] = self.magnitude
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultEvent":
        """Rebuild an event from :meth:`to_dict` output."""
        try:
            at_us = int(payload["at_us"])
            kind = str(payload["kind"])
        except KeyError as missing:
            raise FaultPlanError(f"fault event is missing {missing}") from None
        duration = payload.get("duration_us")
        return cls(
            at_us=at_us,
            kind=kind,
            cpu=None if payload.get("cpu") is None else int(payload["cpu"]),
            thread=payload.get("thread"),
            duration_us=None if duration is None else int(duration),
            magnitude=float(payload.get("magnitude", 0.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of :class:`FaultEvent` entries.

    Events are normalised to firing order — sorted by ``at_us`` with
    the original position breaking ties — so iteration order equals
    injection order regardless of how the plan was written.  ``seed``
    drives every random draw the injector makes (sensor-corruption
    noise), making whole fault scenarios reproducible from the plan
    alone.
    """

    events: tuple[FaultEvent, ...] = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self) -> None:
        ordered = tuple(
            event
            for _, _, event in sorted(
                (event.at_us, position, event)
                for position, event in enumerate(self.events)
            )
        )
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def window(self, start_us: int, end_us: int) -> tuple[FaultEvent, ...]:
        """Events firing in ``[start_us, end_us)`` (reporting helper)."""
        return tuple(e for e in self.events if start_us <= e.at_us < end_us)

    def to_dict(self) -> dict[str, Any]:
        """Versioned wire form."""
        return {
            "schema_version": FAULT_PLAN_SCHEMA_VERSION,
            "seed": self.seed,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output (version-checked)."""
        version = payload.get("schema_version")
        if version != FAULT_PLAN_SCHEMA_VERSION:
            raise FaultPlanError(
                f"unsupported fault plan schema version {version!r}; this "
                f"build reads version {FAULT_PLAN_SCHEMA_VERSION}"
            )
        raw_events = payload.get("events", [])
        if not isinstance(raw_events, Sequence) or isinstance(raw_events, (str, bytes)):
            raise FaultPlanError("fault plan 'events' must be a list")
        return cls(
            events=tuple(FaultEvent.from_dict(entry) for entry in raw_events),
            seed=int(payload.get("seed", 0)),
        )


__all__ = [
    "CPU_FAIL",
    "CPU_KINDS",
    "CPU_RECOVER",
    "FAULT_KINDS",
    "FAULT_PLAN_SCHEMA_VERSION",
    "FaultEvent",
    "FaultPlan",
    "RUNAWAY_START",
    "RUNAWAY_STOP",
    "SENSOR_CORRUPT",
    "SENSOR_DROPOUT",
    "STALL_START",
    "STALL_STOP",
    "START_KINDS",
    "THREAD_KINDS",
    "WINDOW_KINDS",
]
