"""Graceful degradation under lost CPU capacity.

When :meth:`Kernel.fail_cpu` shrinks the machine, the reservations that
were admitted against the old capacity may no longer fit.  The
:class:`DegradationManager` is the policy layer that reconciles them,
escalating in value order — cheapest remedies first:

1. **Squish first.**  All live reservations are scaled proportionally
   (fair-share, floored at the configured minimum) so their total fits
   the post-failure budget.  Nobody loses their reservation; everybody
   runs slower — the multi-CPU analogue of the paper's overload
   squishing.
2. **Shed best-effort.**  If the floors alone still exceed the budget,
   best-effort threads are killed (newest first — they have the least
   sunk work) to stop them competing for the scarce remainder.
3. **Revoke lowest-value reservations.**  As a last resort, the
   smallest reservations are revoked (the thread is demoted to
   best-effort, not killed) until the floors fit.

On recovery the manager re-admits with backoff: a calendar event fires
after ``readmit_backoff_us`` and restores, in descending value order,
whatever fits the recovered budget — first revoked reservations, then
squished originals.  Anything still not fitting reschedules itself with
a doubled (capped) backoff, so capacity flapping cannot thrash the
admission state.

All actuation happens from capacity listeners and calendar events —
never mid-dispatch — so both engines see identical sequences and the
epoch contract (`set_reservation`/`clear_reservation` bump the
scheduler's state epoch) keeps horizon batches honest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.sched.rbs import PROPORTION_SCALE, ReservationScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Kernel
    from repro.sim.thread import SimThread

#: Default delay before the first re-admission attempt after recovery.
DEFAULT_READMIT_BACKOFF_US = 20_000

#: Ceiling on the doubled re-admission backoff.
DEFAULT_MAX_BACKOFF_US = 160_000

#: Default floor for squished reservations (matches the controller's
#: ``min_proportion_ppt`` default).
DEFAULT_MIN_PPT = 5


@dataclass
class DegradationAction:
    """One remedial step the manager took (for reports and tests)."""

    at_us: int
    action: str  # "squish" | "shed" | "revoke" | "readmit" | "restore"
    thread: str
    before_ppt: int = 0
    after_ppt: int = 0


class DegradationManager:
    """Squish-first / shed / revoke policy bound to a kernel's capacity.

    Registers itself as a capacity listener on construction; CPU
    fail/recover notifications drive everything else.  The manager is
    deliberately independent of the feedback controller: it actuates
    the scheduler directly, the same way the paper's admission control
    sits below the PID loop.
    """

    def __init__(
        self,
        kernel: "Kernel",
        scheduler: ReservationScheduler,
        *,
        min_proportion_ppt: int = DEFAULT_MIN_PPT,
        readmit_backoff_us: int = DEFAULT_READMIT_BACKOFF_US,
        max_backoff_us: int = DEFAULT_MAX_BACKOFF_US,
        on_shed: "Optional[Callable[[SimThread], None]]" = None,
    ) -> None:
        if min_proportion_ppt < 0:
            raise ValueError(
                f"min_proportion_ppt cannot be negative, got {min_proportion_ppt}"
            )
        if readmit_backoff_us <= 0:
            raise ValueError(
                f"readmit_backoff_us must be positive, got {readmit_backoff_us}"
            )
        self.kernel = kernel
        self.scheduler = scheduler
        self.min_proportion_ppt = min_proportion_ppt
        self.readmit_backoff_us = readmit_backoff_us
        self.max_backoff_us = max(max_backoff_us, readmit_backoff_us)
        self._on_shed = on_shed
        #: tid -> original proportion before squishing.
        self._squished: dict[int, int] = {}
        #: tid -> (thread, original ppt, original period) for revocations.
        self._revoked: "dict[int, tuple[SimThread, int, int]]" = {}
        self._backoff_us = readmit_backoff_us
        self._readmit_pending = False
        self._last_online = kernel.online_cpu_count
        #: Everything the manager did, in order.
        self.actions: list[DegradationAction] = []
        kernel.add_capacity_listener(self._on_capacity_change)

    # ------------------------------------------------------------------
    # capacity transitions
    # ------------------------------------------------------------------
    def budget_ppt(self) -> int:
        """Reservation budget at current capacity (full online capacity)."""
        return self.scheduler.capacity_ppt()

    def _on_capacity_change(self, now: int, online_cpus: int) -> None:
        previous = self._last_online
        self._last_online = online_cpus
        if online_cpus < previous:
            self._degrade(now)
        elif online_cpus > previous and (self._squished or self._revoked):
            self._schedule_readmit(now)

    # -- degradation ----------------------------------------------------
    def _live_reservations(self) -> "list[tuple[SimThread, int, int]]":
        """(thread, proportion, period) for every live reservation,
        in registration (tid) order for determinism."""
        entries = []
        for thread in self.scheduler.threads():
            if not thread.state.is_live:
                continue
            reservation = self.scheduler.reservation(thread)
            if reservation is not None and reservation.proportion_ppt > 0:
                entries.append(
                    (thread, reservation.proportion_ppt, reservation.period_us)
                )
        entries.sort(key=lambda entry: entry[0].tid)
        return entries

    def _degrade(self, now: int) -> None:
        budget = self.budget_ppt()
        entries = self._live_reservations()
        total = sum(ppt for _, ppt, _ in entries)
        if total <= budget:
            return

        # 1. Squish: proportional scale, floored.
        floor = self.min_proportion_ppt
        squished_total = 0
        for thread, ppt, period in entries:
            target = max(min(floor, ppt), ppt * budget // total)
            if target != ppt:
                self._squished.setdefault(thread.tid, ppt)
                self.scheduler.set_reservation(thread, target, period, now=now)
                self.actions.append(
                    DegradationAction(now, "squish", thread.name, ppt, target)
                )
            squished_total += target
        if squished_total <= budget:
            return

        # 2. Shed best-effort threads (newest first).  The floors alone
        # oversubscribe the surviving CPUs; best-effort work would only
        # deepen the deficit the reservations are already running at.
        # "Best-effort" includes zero-proportion reservations: under a
        # bare reservation scheduler a RESERVATION-policy thread with no
        # explicit grant parks on a permanent 0-ppt reservation, which
        # is the same slack-only service class.
        def is_best_effort(thread: "SimThread") -> bool:
            reservation = self.scheduler.reservation(thread)
            return reservation is None or reservation.proportion_ppt <= 0

        best_effort = sorted(
            (
                thread
                for thread in self.kernel.live_threads()
                if is_best_effort(thread)
            ),
            key=lambda thread: -thread.tid,
        )
        for thread in best_effort:
            self.actions.append(DegradationAction(now, "shed", thread.name))
            if self._on_shed is not None:
                self._on_shed(thread)
            self.kernel.kill_thread(thread)

        # 3. Revoke lowest-value reservations until the rest fit.
        survivors = self._live_reservations()
        remaining = sum(ppt for _, ppt, _ in survivors)
        for thread, ppt, period in sorted(
            survivors, key=lambda entry: (entry[1], entry[0].tid)
        ):
            if remaining <= budget:
                break
            original_ppt = self._squished.pop(thread.tid, ppt)
            self._revoked[thread.tid] = (thread, original_ppt, period)
            self.scheduler.clear_reservation(thread)
            self.actions.append(
                DegradationAction(now, "revoke", thread.name, ppt, 0)
            )
            remaining -= ppt

    # -- recovery / re-admission ----------------------------------------
    def _schedule_readmit(self, now: int) -> None:
        if self._readmit_pending:
            return
        self._readmit_pending = True
        self.kernel.events.schedule(
            now + self._backoff_us, self._readmit, label="degradation:readmit"
        )

    def _readmit(self) -> None:
        self._readmit_pending = False
        now = self.kernel.now
        budget = self.budget_ppt()
        reserved = self.scheduler.total_reserved_ppt()

        # Revoked reservations first, most valuable first: they lost
        # everything, squished threads still run with a reservation.
        for tid, (thread, ppt, period) in sorted(
            self._revoked.items(), key=lambda item: (-item[1][1], item[0])
        ):
            if not thread.state.is_live or not self.scheduler.has_thread(thread):
                del self._revoked[tid]
                continue
            if reserved + ppt > budget:
                continue
            self.scheduler.set_reservation(thread, ppt, period, now=now)
            reserved += ppt
            del self._revoked[tid]
            self.actions.append(
                DegradationAction(now, "readmit", thread.name, 0, ppt)
            )

        # Then un-squish, most valuable first, as far as the budget goes.
        for tid, original in sorted(
            self._squished.items(), key=lambda item: (-item[1], item[0])
        ):
            thread = next(
                (t for t in self.scheduler.threads() if t.tid == tid), None
            )
            if thread is None or not thread.state.is_live:
                del self._squished[tid]
                continue
            reservation = self.scheduler.reservation(thread)
            if reservation is None:
                # Lost its reservation some other way; nothing to restore.
                del self._squished[tid]
                continue
            headroom = budget - reserved
            target = min(original, reservation.proportion_ppt + headroom)
            if target > reservation.proportion_ppt:
                before = reservation.proportion_ppt
                self.scheduler.set_reservation(
                    thread, target, reservation.period_us, now=now
                )
                reserved += target - before
                self.actions.append(
                    DegradationAction(now, "restore", thread.name, before, target)
                )
            if target >= original:
                del self._squished[tid]

        if self._squished or self._revoked:
            # Not everything fit: back off (doubling, capped) and retry.
            self._backoff_us = min(self._backoff_us * 2, self.max_backoff_us)
            self._schedule_readmit(now)
        else:
            self._backoff_us = self.readmit_backoff_us

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def pending_restorations(self) -> int:
        """Reservations still awaiting full restoration."""
        return len(self._squished) + len(self._revoked)

    def utilisation_ppt(self) -> int:
        """Reserved ppt as a share of one full CPU (diagnostics)."""
        budget = self.budget_ppt()
        if budget <= 0:
            return 0
        return (
            self.scheduler.total_reserved_ppt() * PROPORTION_SCALE // budget
        )


__all__ = [
    "DEFAULT_MAX_BACKOFF_US",
    "DEFAULT_MIN_PPT",
    "DEFAULT_READMIT_BACKOFF_US",
    "DegradationAction",
    "DegradationManager",
]
