"""Scheduler interface.

A scheduler is a pure policy object: the kernel tells it about thread
lifecycle events (ready, block, yield, preempt, exit) and asks it two
questions at every dispatch point: *which runnable thread should run
next* (:meth:`Scheduler.pick_next`) and *for at most how long*
(:meth:`Scheduler.time_slice`).  CPU consumption is reported back via
:meth:`Scheduler.charge` so proportion/period accounting can be kept.

On a multiprocessor kernel the dispatch question is asked once per CPU:
the kernel first calls :meth:`Scheduler.place_threads` to let the
scheduler's :class:`~repro.sched.placement.PlacementPolicy` map runnable
threads to CPUs for the round, then calls
:meth:`Scheduler.pick_next_cpu` for each CPU.  Policies answer the
per-CPU question with exactly the same ordering logic as the
uniprocessor one, restricted to the threads placed on that CPU
(:meth:`Scheduler.dispatch_candidates`).  With ``cpu=None`` (the
single-CPU kernel's call) every code path reduces bit-for-bit to the
original uniprocessor behaviour.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Optional

from repro.sched.placement import LeastLoadedPlacement, PlacementPolicy
from repro.sim.errors import SchedulerError
from repro.sim.thread import SimThread, ThreadState

if TYPE_CHECKING:  # pragma: no cover
    from repro.ipc.mutex import Mutex
    from repro.sim.kernel import Kernel


class Scheduler(ABC):
    """Base class for all dispatch policies."""

    #: Key under which the scheduler stores per-thread data in
    #: ``SimThread.sched_data``; subclasses override.
    SCHED_KEY = "base"

    def __init__(self, *, placement: Optional[PlacementPolicy] = None) -> None:
        self.kernel: Optional["Kernel"] = None
        self._threads: list[SimThread] = []
        #: Thread-to-CPU mapping strategy used on multiprocessor kernels.
        self.placement: PlacementPolicy = (
            placement if placement is not None else LeastLoadedPlacement()
        )
        #: tid -> CPU assignment computed by the latest placement round.
        self._placement_map: dict[int, int] = {}

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, kernel: "Kernel") -> None:
        """Called by the kernel when the scheduler is installed."""
        self.kernel = kernel

    @property
    def dispatch_interval_us(self) -> int:
        """The kernel's dispatch interval (1 ms unless reconfigured)."""
        if self.kernel is None:
            return 1_000
        return self.kernel.dispatch_interval_us

    @property
    def n_cpus(self) -> int:
        """Number of CPUs of the attached kernel (1 when detached)."""
        if self.kernel is None:
            return 1
        return self.kernel.n_cpus

    # ------------------------------------------------------------------
    # thread membership
    # ------------------------------------------------------------------
    def add_thread(self, thread: SimThread) -> None:
        """Register a new thread with the policy."""
        if thread in self._threads:
            raise SchedulerError(f"thread {thread.name!r} already registered")
        self._threads.append(thread)
        self.on_add(thread)

    def remove_thread(self, thread: SimThread) -> None:
        """Remove a thread (normally on exit)."""
        if thread in self._threads:
            self._threads.remove(thread)
        self.on_remove(thread)

    def threads(self) -> list[SimThread]:
        """All threads currently registered with this scheduler."""
        return list(self._threads)

    def runnable_threads(self) -> list[SimThread]:
        """Registered threads whose state allows dispatch."""
        return [t for t in self._threads if t.state.is_runnable]

    # ------------------------------------------------------------------
    # multiprocessor placement
    # ------------------------------------------------------------------
    def placement_weight(self, thread: SimThread) -> float:
        """Load contribution of ``thread`` for balancing placements.

        The base policy weighs every thread equally; the reservation
        scheduler overrides this with the reserved proportion so that
        per-CPU reserved capacity stays balanced.
        """
        return 1.0

    def place_threads(self, now: int) -> dict[int, int]:
        """(Re)assign runnable threads to CPUs for the coming round.

        Called by the multiprocessor kernel at the start of every
        dispatch round.  Returns (and caches) the tid -> CPU mapping.
        """
        runnable = self.runnable_threads()
        self._placement_map = self.placement.assign(
            runnable, self.n_cpus, self.placement_weight
        )
        return self._placement_map

    def eligible_on(self, thread: SimThread, cpu: int) -> bool:
        """Whether ``thread`` may run on ``cpu`` in the current round.

        A hard affinity is always honoured (the kernel and ``pin_to``
        guarantee it names an existing CPU); otherwise the thread must
        be assigned to ``cpu`` by the latest placement round (threads
        that woke after placement simply wait for the next round, which
        bounds their extra latency by one dispatch window).
        """
        if thread.affinity is not None:
            return thread.affinity == cpu
        assigned = self._placement_map.get(thread.tid)
        return assigned is None or assigned == cpu

    def dispatch_candidates(self, cpu: Optional[int] = None) -> list[SimThread]:
        """Runnable threads a pick for ``cpu`` may choose from.

        With ``cpu=None`` (uniprocessor dispatch) this is exactly
        :meth:`runnable_threads`.  With a CPU index it is the READY
        threads placed on that CPU — threads currently RUNNING on
        another CPU of the same round are excluded.
        """
        if cpu is None:
            return self.runnable_threads()
        return [
            t
            for t in self._threads
            if t.state is ThreadState.READY and self.eligible_on(t, cpu)
        ]

    # ------------------------------------------------------------------
    # policy hooks (subclasses override what they need)
    # ------------------------------------------------------------------
    def on_add(self, thread: SimThread) -> None:
        """Hook: a thread was registered."""

    def on_remove(self, thread: SimThread) -> None:
        """Hook: a thread was removed."""

    def on_ready(self, thread: SimThread, now: int) -> None:
        """Hook: a thread became runnable."""

    def on_block(self, thread: SimThread, now: int) -> None:
        """Hook: a thread blocked or went to sleep."""

    def on_yield(self, thread: SimThread, now: int) -> None:
        """Hook: a thread voluntarily gave up the CPU."""

    def on_preempt(self, thread: SimThread, now: int) -> None:
        """Hook: a thread was preempted at the end of its slice."""

    def on_dispatch(self, thread: SimThread, now: int) -> None:
        """Hook: a thread was just selected to run."""

    def on_mutex_block(self, thread: SimThread, mutex: "Mutex", now: int) -> None:
        """Hook: ``thread`` blocked acquiring ``mutex`` (for inheritance)."""

    def on_mutex_release(self, thread: SimThread, mutex: "Mutex", now: int) -> None:
        """Hook: ``thread`` released ``mutex`` (for inheritance)."""

    def charge(self, thread: SimThread, consumed_us: int, now: int) -> None:
        """Hook: ``thread`` consumed ``consumed_us`` of CPU ending at ``now``."""

    def refresh(self, now: int) -> None:
        """Hook: bring time-dependent accounting up to ``now``.

        Called by the kernel after an idle period so reservations can be
        replenished before the next ``pick_next``.
        """

    def next_wakeup(self, now: int) -> Optional[int]:
        """Earliest future time at which a currently ineligible thread
        becomes eligible again (e.g. a throttled reservation
        replenishes), or ``None`` if there is no such time."""
        return None

    # ------------------------------------------------------------------
    # dispatch decisions
    # ------------------------------------------------------------------
    @abstractmethod
    def pick_next(self, now: int, cpu: Optional[int] = None) -> Optional[SimThread]:
        """Select the next thread to run, or ``None`` to idle.

        ``cpu`` restricts the choice to threads placed on that CPU
        (multiprocessor dispatch); ``None`` keeps the original
        uniprocessor semantics.  Implementations obtain their candidate
        set from :meth:`dispatch_candidates` so both cases share one
        ordering policy.
        """

    def pick_next_cpu(self, cpu: int, now: int) -> Optional[SimThread]:
        """CPU-aware pick: the thread CPU ``cpu`` should dispatch at ``now``."""
        return self.pick_next(now, cpu=cpu)

    def time_slice(self, thread: SimThread, now: int) -> int:
        """Maximum time (us) ``thread`` may run before re-dispatch."""
        return self.dispatch_interval_us


__all__ = ["Scheduler"]
