"""Scheduler interface and the shared incremental run-queue layer.

A scheduler is a pure policy object: the kernel tells it about thread
lifecycle events (ready, block, yield, preempt, exit) and asks it two
questions at every dispatch point: *which runnable thread should run
next* (:meth:`Scheduler.pick_next`) and *for at most how long*
(:meth:`Scheduler.time_slice`).  CPU consumption is reported back via
:meth:`Scheduler.charge` so proportion/period accounting can be kept.

On a multiprocessor kernel the dispatch question is asked once per CPU:
the kernel first calls :meth:`Scheduler.place_threads` to let the
scheduler's :class:`~repro.sched.placement.PlacementPolicy` map runnable
threads to CPUs for the round, then calls
:meth:`Scheduler.pick_next_cpu` for each CPU.  Policies answer the
per-CPU question with exactly the same ordering logic as the
uniprocessor one, restricted to the threads placed on that CPU
(:meth:`Scheduler.dispatch_candidates`).  With ``cpu=None`` (the
single-CPU kernel's call) every code path reduces bit-for-bit to the
original uniprocessor behaviour.

The run-queue layer
-------------------
Dispatch happens once per simulated millisecond, so anything O(n) in
the dispatcher caps how large a scenario can be simulated.  The
:class:`RunQueue` and :class:`LazyMinHeap` structures below let
policies go incremental without changing any observable ordering:

* **tid-indexed membership** — :meth:`Scheduler.add_thread` /
  :meth:`Scheduler.remove_thread` are O(1) dict operations instead of
  list scans, while :meth:`Scheduler.threads` still returns threads in
  exact registration order (insertion-ordered dict).
* **ready hints** — the run queue tracks which members are not known
  to be blocked (maintained from the kernel's ready/block/yield/
  preempt notifications).  Candidate lists are built from this small
  set, restored to registration order via each thread's registration
  sequence number, and every read re-checks ``thread.state`` so a
  stale hint can widen the scan but never change a pick.
* **lazily-invalidated heaps** — :class:`LazyMinHeap` keys entries by
  tid and invalidates in O(1); stale entries are discarded when they
  surface at the top.  The reservation scheduler keeps its
  rate-monotonic ready order in one (keyed
  ``(period_us, -proportion_ppt, tid)`` — a total order, because tids
  are unique, so the heap minimum is exactly the head of the sort it
  replaces) and its replenishment schedule in another (keyed
  ``(period_end, tid)``).

Determinism-preserving invalidation scheme
------------------------------------------
The structures are *hints*; correctness never depends on their
freshness, only on the invariant that a thread eligible for dispatch
is reachable through at least one of them.  All mutations funnel
through the owning scheduler's transition points (add/remove,
ready/block, charge, reservation changes), which enqueue the thread
for *pick-time* re-examination rather than reclassifying it eagerly:
period windows are only rolled forward at the same virtual times the
scan-based implementation rolled them (pick, charge, refresh), so
deadline-miss accounting and pick order stay bit-identical to the
O(n)-scan code this replaces.  Subclasses overriding the lifecycle
hooks (:meth:`Scheduler.on_ready`, :meth:`Scheduler.on_block`,
:meth:`Scheduler.on_yield`, :meth:`Scheduler.on_preempt`) must call
``super()`` so the shared hints stay maintained.

The preemption-horizon contract
-------------------------------
The run-to-horizon kernel engine batches consecutive dispatches of the
same thread without re-entering :meth:`Scheduler.pick_next`, which is
only sound while the scheduler can *prove* that every skipped pick
would have returned the same thread and had no observable side
effects.  Two pieces of state encode that proof:

* :attr:`Scheduler.state_epoch` — a counter bumped by every mutation
  that can change the outcome (or the side effects) of a pick: a
  thread waking, blocking, being added or removed, a reservation being
  re-sized, ticket or priority-inheritance changes.  The kernel
  snapshots the epoch after a pick and abandons the batch as soon as
  it moves.  Subclasses that add pick-relevant state of their own must
  bump the epoch when that state changes.
* :meth:`Scheduler.preemption_horizon` — the earliest future virtual
  time at which a *time-driven* change could alter a pick or make a
  pick-time side effect non-trivial (a throttled reservation
  replenishing, a period window rolling at the pick, a pending unmet
  demand turning into a deadline miss).  The kernel only batches
  dispatches that *start* strictly before the horizon; a dispatch
  starting at or after it goes through a real pick, which realises the
  time-driven change at exactly the same virtual time the quantum-
  sliced engine realised it.

Schedulers whose pick itself mutates state on every call (round-robin
cursors, lottery draws) declare a horizon only when the pick outcome
is forced (a single candidate) and replay the skipped mutations in
:meth:`Scheduler.note_batched_picks`, keeping cursor positions and RNG
streams bit-identical to the quantum-sliced engine.  The default
horizon is ``now`` — an unknown policy is never batched.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Iterable, Optional

from repro.sched.placement import LeastLoadedPlacement, PlacementPolicy
from repro.sim.errors import SchedulerError
from repro.sim.thread import SimThread, ThreadState

if TYPE_CHECKING:  # pragma: no cover
    from repro.ipc.mutex import Mutex
    from repro.sim.kernel import Kernel


class LazyMinHeap:
    """A min-heap of per-thread entries with O(1) invalidation.

    Entries are tuples whose *last* element is the owning thread's tid;
    the heap keeps at most one *live* entry per tid (``push`` replaces,
    ``discard`` invalidates).  Dead entries stay in the underlying list
    and are skipped when they reach the top, so every operation is
    O(log n) amortised.
    """

    __slots__ = ("_heap", "_live")

    def __init__(self) -> None:
        self._heap: list[tuple] = []
        self._live: dict[int, tuple] = {}

    def __len__(self) -> int:
        return len(self._live)

    def __contains__(self, tid: int) -> bool:
        return tid in self._live

    #: Compact when the backing list holds this many times more
    #: entries than are live (and is past the size floor below) —
    #: bounds memory under sustained push-replacement, e.g. a
    #: controller re-keying every thread every tick.
    _COMPACT_RATIO = 2
    _COMPACT_FLOOR = 64

    def push(self, tid: int, entry: tuple) -> None:
        """Insert ``entry`` for ``tid``, replacing any live entry."""
        self._live[tid] = entry
        heap = self._heap
        heapq.heappush(heap, entry)
        if (
            len(heap) > self._COMPACT_FLOOR
            and len(heap) > self._COMPACT_RATIO * len(self._live)
        ):
            # Rebuild from the live entries only.  Pop order is a total
            # order over the entry tuples (tids are unique), so the
            # internal arrangement cannot affect any pick sequence.
            self._heap = list(self._live.values())
            heapq.heapify(self._heap)

    def discard(self, tid: int) -> None:
        """Invalidate ``tid``'s live entry (no-op if absent)."""
        self._live.pop(tid, None)

    def peek(self) -> Optional[tuple]:
        """The smallest live entry, or ``None``; drops stale tops."""
        heap = self._heap
        live = self._live
        while heap:
            entry = heap[0]
            if live.get(entry[-1]) is entry:
                return entry
            heapq.heappop(heap)
        return None

    def pop(self) -> Optional[tuple]:
        """Remove and return the smallest live entry (``None`` if empty)."""
        heap = self._heap
        live = self._live
        while heap:
            entry = heapq.heappop(heap)
            if live.get(entry[-1]) is entry:
                del live[entry[-1]]
                return entry
        return None

    def push_back(self, entries: Iterable[tuple]) -> None:
        """Re-insert entries previously obtained from :meth:`pop`."""
        for entry in entries:
            self._live[entry[-1]] = entry
            heapq.heappush(self._heap, entry)

    def live_sorted(self) -> list[tuple]:
        """All live entries in ascending order (a non-mutating walk).

        Entry tuples form a total order (the trailing tid is unique),
        so this is exactly the sequence :meth:`pop` would yield —
        without disturbing the heap.  Used by pick paths that need to
        *scan past* ineligible entries: sorting the small live set
        beats a pop/push-back churn through the backing heap.
        """
        entries = list(self._live.values())
        entries.sort()
        return entries

    def clear(self) -> None:
        self._heap.clear()
        self._live.clear()


class RunQueue:
    """Tid-indexed thread membership with ready hints.

    Threads are kept in registration order (each gets a monotonically
    increasing sequence number); the *ready hint* is the subset not
    known to be blocked.  Hints are advisory: readers re-check
    ``thread.state``, so a stale hint costs a skipped iteration, never
    a wrong candidate set.
    """

    __slots__ = ("_members", "_seq_of", "_next_seq", "_ready")

    def __init__(self) -> None:
        #: tid -> thread, in registration order.
        self._members: dict[int, SimThread] = {}
        #: tid -> registration sequence number.
        self._seq_of: dict[int, int] = {}
        self._next_seq = 0
        #: seq -> thread for members not known to be blocked.
        self._ready: dict[int, SimThread] = {}

    # -- membership ----------------------------------------------------
    def __contains__(self, tid: int) -> bool:
        return tid in self._members

    def __len__(self) -> int:
        return len(self._members)

    def get(self, tid: int) -> Optional[SimThread]:
        return self._members.get(tid)

    def add(self, thread: SimThread) -> None:
        tid = thread.tid
        self._members[tid] = thread
        seq = self._next_seq
        self._next_seq += 1
        self._seq_of[tid] = seq
        # New threads start in the ready hint; a NEW/blocked state is
        # filtered out at read time.
        self._ready[seq] = thread

    def remove(self, tid: int) -> Optional[SimThread]:
        thread = self._members.pop(tid, None)
        seq = self._seq_of.pop(tid, None)
        if seq is not None:
            self._ready.pop(seq, None)
        return thread

    def threads(self) -> list[SimThread]:
        """All members in registration order."""
        return list(self._members.values())

    # -- ready hints ---------------------------------------------------
    def note_ready(self, thread: SimThread) -> None:
        seq = self._seq_of.get(thread.tid)
        if seq is not None:
            self._ready[seq] = thread

    def note_blocked(self, tid: int) -> None:
        seq = self._seq_of.get(tid)
        if seq is not None:
            self._ready.pop(seq, None)

    def ready_in_order(self) -> list[SimThread]:
        """Hinted-ready members, restored to registration order."""
        ready = self._ready
        if len(ready) == len(self._members):
            # Nothing blocked: membership order is already correct.
            return list(self._members.values())
        return [ready[seq] for seq in sorted(ready)]


class Scheduler(ABC):
    """Base class for all dispatch policies."""

    #: Key under which the scheduler stores per-thread data in
    #: ``SimThread.sched_data``; subclasses override.
    SCHED_KEY = "base"

    #: Attributes whose mutation can change the outcome (or side
    #: effects) of a pick and must therefore be covered by a
    #: :attr:`state_epoch` bump.  Read *statically* by the
    #: epoch-contract checker (``python -m repro lint``): keep it a
    #: literal frozenset of attribute-name strings.  Subclasses declare
    #: their own; the effective registry is the union along the MRO.
    PICK_RELEVANT_STATE = frozenset({"_run_queue", "_placement_map"})

    #: Methods allowed to mutate registered state *without* bumping the
    #: epoch, each with the reason the contract still holds.  Also read
    #: statically — keep it a literal dict of string -> string.
    EPOCH_EXEMPT = {
        "on_yield": (
            "idempotent ready-hint refresh for a thread that stays "
            "runnable; hints are advisory and re-checked at read time, "
            "so no pick outcome can change"
        ),
        "on_preempt": (
            "same as on_yield: the preempted thread stays runnable and "
            "only its advisory ready hint is refreshed"
        ),
        "place_threads": (
            "writes the placement cache, a pure function of "
            "epoch-covered inputs (runnable set, weights, CPU count); "
            "recomputing it under an unmoved epoch yields the same map. "
            "Topology-aware policies additionally read thread.last_cpu, "
            "which mutates between epoch bumps — they are required to be "
            "stable under self-application (see repro/sched/placement.py), "
            "so recomputation is still a fixed point"
        ),
    }

    def __init__(self, *, placement: Optional[PlacementPolicy] = None) -> None:
        self.kernel: Optional["Kernel"] = None
        self._run_queue = RunQueue()
        #: Thread-to-CPU mapping strategy used on multiprocessor kernels.
        self.placement: PlacementPolicy = (
            placement if placement is not None else LeastLoadedPlacement()
        )
        #: tid -> CPU assignment computed by the latest placement round.
        self._placement_map: dict[int, int] = {}
        #: Bumped by every mutation that can change a pick (see the
        #: preemption-horizon contract in the module docstring).  The
        #: run-to-horizon kernel snapshots it to validate batching.
        self.state_epoch = 0

    def _bump_epoch(self) -> None:
        """Invalidate any in-flight run-to-horizon batch.

        Equivalent to ``self.state_epoch += 1``; subclasses adding
        pick-relevant state of their own call this (or bump the field
        directly) from every mutating method — the epoch-contract
        checker accepts either spelling.
        """
        self.state_epoch += 1

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, kernel: "Kernel") -> None:
        """Called by the kernel when the scheduler is installed."""
        self.kernel = kernel

    @property
    def dispatch_interval_us(self) -> int:
        """The kernel's dispatch interval (1 ms unless reconfigured)."""
        if self.kernel is None:
            return 1_000
        return self.kernel.dispatch_interval_us

    @property
    def n_cpus(self) -> int:
        """Number of CPUs of the attached kernel (1 when detached)."""
        if self.kernel is None:
            return 1
        return self.kernel.n_cpus

    @property
    def online_cpu_count(self) -> int:
        """Online CPUs of the attached kernel (1 when detached).

        Equals :attr:`n_cpus` unless :meth:`Kernel.fail_cpu` took CPUs
        down.  Capacity-derived quantities (reservation capacity,
        admission and overload thresholds) scale with this, so losing a
        CPU immediately shrinks what the controller may hand out.
        """
        if self.kernel is None:
            return 1
        return self.kernel.online_cpu_count

    # ------------------------------------------------------------------
    # thread membership
    # ------------------------------------------------------------------
    def add_thread(self, thread: SimThread) -> None:
        """Register a new thread with the policy (O(1))."""
        if thread.tid in self._run_queue:
            raise SchedulerError(f"thread {thread.name!r} already registered")
        self.state_epoch += 1
        self._run_queue.add(thread)
        self.on_add(thread)

    def remove_thread(self, thread: SimThread) -> None:
        """Remove a thread (normally on exit; O(1))."""
        self.state_epoch += 1
        self._run_queue.remove(thread.tid)
        self.on_remove(thread)

    def threads(self) -> list[SimThread]:
        """All threads currently registered with this scheduler."""
        return self._run_queue.threads()

    def has_thread(self, thread: SimThread) -> bool:
        """Whether ``thread`` is registered (O(1))."""
        return thread.tid in self._run_queue

    def runnable_threads(self) -> list[SimThread]:
        """Registered threads whose state allows dispatch.

        Registration order, exactly as the full-membership scan this
        replaces; built from the ready hints and re-checked against
        ``thread.state`` (identity checks — the ``is_runnable``
        property costs an enum-tuple membership test per thread per
        placement round).
        """
        ready = ThreadState.READY
        running = ThreadState.RUNNING
        return [
            t
            for t in self._run_queue.ready_in_order()
            if t.state is ready or t.state is running
        ]

    # ------------------------------------------------------------------
    # multiprocessor placement
    # ------------------------------------------------------------------
    def placement_weight(self, thread: SimThread) -> float:
        """Load contribution of ``thread`` for balancing placements.

        The base policy weighs every thread equally; the reservation
        scheduler overrides this with the reserved proportion so that
        per-CPU reserved capacity stays balanced.
        """
        return 1.0

    def placement_weights(self, threads: list[SimThread]) -> list[float]:
        """Bulk :meth:`placement_weight` for one placement round.

        Placement evaluates every runnable thread's weight every
        dispatch round; one bulk call replaces a Python method call per
        thread.  Overrides must agree with :meth:`placement_weight`.
        """
        weight = self.placement_weight
        return [weight(t) for t in threads]

    def place_threads(self, now: int) -> dict[int, int]:
        """(Re)assign runnable threads to CPUs for the coming round.

        Called by the multiprocessor kernel at the start of every
        dispatch round.  Returns (and caches) the tid -> CPU mapping.
        Placement is a pure function of the runnable set, the weights
        and the CPU count, all of which are covered by
        :attr:`state_epoch` — the run-to-horizon kernel uses that to
        skip redundant calls entirely while the epoch stands still.
        """
        runnable = self.runnable_threads()
        kernel = self.kernel
        online: Optional[tuple[int, ...]] = None
        if kernel is not None and kernel.offline_cpu_count:
            online = kernel.online_cpu_indices()
        self._placement_map = self.placement.assign(
            runnable,
            self.n_cpus,
            self.placement_weight,
            weights=self.placement_weights(runnable),
            online=online,
        )
        return self._placement_map

    def eligible_on(self, thread: SimThread, cpu: int) -> bool:
        """Whether ``thread`` may run on ``cpu`` in the current round.

        A hard affinity is always honoured (the kernel and ``pin_to``
        guarantee it names an existing CPU); otherwise the thread must
        be assigned to ``cpu`` by the latest placement round (threads
        that woke after placement simply wait for the next round, which
        bounds their extra latency by one dispatch window).
        """
        if thread.affinity is not None:
            return thread.affinity == cpu
        assigned = self._placement_map.get(thread.tid)
        return assigned is None or assigned == cpu

    def dispatch_candidates(self, cpu: Optional[int] = None) -> list[SimThread]:
        """Runnable threads a pick for ``cpu`` may choose from.

        With ``cpu=None`` (uniprocessor dispatch) this is exactly
        :meth:`runnable_threads`.  With a CPU index it is the READY
        threads placed on that CPU — threads currently RUNNING on
        another CPU of the same round are excluded.
        """
        if cpu is None:
            return self.runnable_threads()
        return [
            t
            for t in self._run_queue.ready_in_order()
            if t.state is ThreadState.READY and self.eligible_on(t, cpu)
        ]

    # ------------------------------------------------------------------
    # policy hooks (subclasses override what they need)
    # ------------------------------------------------------------------
    def on_add(self, thread: SimThread) -> None:
        """Hook: a thread was registered."""

    def on_remove(self, thread: SimThread) -> None:
        """Hook: a thread was removed."""

    def on_ready(self, thread: SimThread, now: int) -> None:
        """Hook: a thread became runnable (overrides must call super)."""
        self.state_epoch += 1
        self._run_queue.note_ready(thread)

    def on_block(self, thread: SimThread, now: int) -> None:
        """Hook: a thread blocked or slept (overrides must call super)."""
        self.state_epoch += 1
        self._run_queue.note_blocked(thread.tid)

    def on_yield(self, thread: SimThread, now: int) -> None:
        """Hook: a thread gave up the CPU (overrides must call super)."""
        self._run_queue.note_ready(thread)

    def on_preempt(self, thread: SimThread, now: int) -> None:
        """Hook: a thread's slice ended (overrides must call super)."""
        self._run_queue.note_ready(thread)

    def on_dispatch(self, thread: SimThread, now: int) -> None:
        """Hook: a thread was just selected to run."""

    def note_affinity_change(self, thread: SimThread) -> None:
        """Hook: ``thread``'s CPU affinity changed (a live re-pin).

        Placement (and with it every per-CPU pick) depends on affinity,
        so the epoch must move: cached placement maps and in-flight
        run-to-horizon batches are invalidated.  Called by
        :meth:`SimThread.pin_to` for threads already bound to a kernel;
        overrides must call super.
        """
        self.state_epoch += 1

    def note_capacity_change(self) -> None:
        """Hook: the kernel's online-CPU set changed (fail/recover).

        Placement assigns threads over the online CPUs and capacity
        thresholds scale with :attr:`online_cpu_count`, so every cached
        placement map and in-flight run-to-horizon batch is invalidated
        by bumping the epoch.  Called by :meth:`Kernel.fail_cpu` and
        :meth:`Kernel.recover_cpu`; overrides must call super.
        """
        self.state_epoch += 1

    def on_mutex_block(self, thread: SimThread, mutex: "Mutex", now: int) -> None:
        """Hook: ``thread`` blocked acquiring ``mutex``.  Bumps the
        state epoch (priority inheritance can reorder picks); overrides
        must call super."""
        self.state_epoch += 1

    def on_mutex_release(self, thread: SimThread, mutex: "Mutex", now: int) -> None:
        """Hook: ``thread`` released ``mutex``.  Bumps the state epoch
        (inheritance boosts end here); overrides must call super."""
        self.state_epoch += 1

    def on_mutex_unblock(self, thread: SimThread, mutex: "Mutex", now: int) -> None:
        """Hook: ``thread`` left ``mutex``'s wait queue *without*
        acquiring it (a forced exit via :meth:`Kernel.kill_thread`).
        Bumps the state epoch — an inheritance boost the dead waiter
        conferred may need recomputing; overrides must call super."""
        self.state_epoch += 1

    def charge(self, thread: SimThread, consumed_us: int, now: int) -> None:
        """Hook: ``thread`` consumed ``consumed_us`` of CPU ending at ``now``."""

    def refresh(self, now: int) -> None:
        """Hook: bring time-dependent accounting up to ``now``.

        Called by the kernel after an idle period so reservations can be
        replenished before the next ``pick_next``.
        """

    def next_wakeup(self, now: int) -> Optional[int]:
        """Earliest future time at which a currently ineligible thread
        becomes eligible again (e.g. a throttled reservation
        replenishes), or ``None`` if there is no such time."""
        return None

    # ------------------------------------------------------------------
    # run-to-horizon support
    # ------------------------------------------------------------------
    def preemption_horizon(
        self, now: int, thread: SimThread, cpu: Optional[int] = None
    ) -> Optional[int]:
        """Horizon up to which dispatches of ``thread`` may be batched.

        Called by the run-to-horizon kernel immediately after
        ``thread`` was picked at ``now``.  The return value ``H``
        promises: while :attr:`state_epoch` does not move, any pick at
        a virtual time ``t`` with ``now <= t < H`` would return
        ``thread`` again and have no observable side effect beyond
        those replayed by :meth:`note_batched_picks`.  ``None`` means
        unbounded (the epoch and the event calendar are the only
        limits); returning ``now`` disables batching entirely, which is
        the only safe default for an unknown policy.
        """
        return now

    def note_batched_picks(self, thread: SimThread, skipped: int, now: int) -> None:
        """Replay the per-pick state mutations of ``skipped`` batched picks.

        The run-to-horizon engine dispatched ``thread`` ``skipped``
        extra times without calling :meth:`pick_next`; policies whose
        pick mutates state on every call (round-robin cursors, lottery
        draws) reproduce those mutations here so later picks are
        bit-identical to the quantum-sliced engine.  The default is a
        no-op.
        """

    # ------------------------------------------------------------------
    # dispatch decisions
    # ------------------------------------------------------------------
    @abstractmethod
    def pick_next(self, now: int, cpu: Optional[int] = None) -> Optional[SimThread]:
        """Select the next thread to run, or ``None`` to idle.

        ``cpu`` restricts the choice to threads placed on that CPU
        (multiprocessor dispatch); ``None`` keeps the original
        uniprocessor semantics.  Implementations obtain their candidate
        set from :meth:`dispatch_candidates` so both cases share one
        ordering policy.
        """

    def pick_next_cpu(self, cpu: int, now: int) -> Optional[SimThread]:
        """CPU-aware pick: the thread CPU ``cpu`` should dispatch at ``now``."""
        return self.pick_next(now, cpu=cpu)

    def time_slice(self, thread: SimThread, now: int) -> int:
        """Maximum time (us) ``thread`` may run before re-dispatch."""
        return self.dispatch_interval_us


__all__ = ["LazyMinHeap", "RunQueue", "Scheduler"]
