"""Scheduler interface.

A scheduler is a pure policy object: the kernel tells it about thread
lifecycle events (ready, block, yield, preempt, exit) and asks it two
questions at every dispatch point: *which runnable thread should run
next* (:meth:`Scheduler.pick_next`) and *for at most how long*
(:meth:`Scheduler.time_slice`).  CPU consumption is reported back via
:meth:`Scheduler.charge` so proportion/period accounting can be kept.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Optional

from repro.sim.errors import SchedulerError
from repro.sim.thread import SimThread, ThreadState

if TYPE_CHECKING:  # pragma: no cover
    from repro.ipc.mutex import Mutex
    from repro.sim.kernel import Kernel


class Scheduler(ABC):
    """Base class for all dispatch policies."""

    #: Key under which the scheduler stores per-thread data in
    #: ``SimThread.sched_data``; subclasses override.
    SCHED_KEY = "base"

    def __init__(self) -> None:
        self.kernel: Optional["Kernel"] = None
        self._threads: list[SimThread] = []

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, kernel: "Kernel") -> None:
        """Called by the kernel when the scheduler is installed."""
        self.kernel = kernel

    @property
    def dispatch_interval_us(self) -> int:
        """The kernel's dispatch interval (1 ms unless reconfigured)."""
        if self.kernel is None:
            return 1_000
        return self.kernel.dispatch_interval_us

    # ------------------------------------------------------------------
    # thread membership
    # ------------------------------------------------------------------
    def add_thread(self, thread: SimThread) -> None:
        """Register a new thread with the policy."""
        if thread in self._threads:
            raise SchedulerError(f"thread {thread.name!r} already registered")
        self._threads.append(thread)
        self.on_add(thread)

    def remove_thread(self, thread: SimThread) -> None:
        """Remove a thread (normally on exit)."""
        if thread in self._threads:
            self._threads.remove(thread)
        self.on_remove(thread)

    def threads(self) -> list[SimThread]:
        """All threads currently registered with this scheduler."""
        return list(self._threads)

    def runnable_threads(self) -> list[SimThread]:
        """Registered threads whose state allows dispatch."""
        return [t for t in self._threads if t.state.is_runnable]

    # ------------------------------------------------------------------
    # policy hooks (subclasses override what they need)
    # ------------------------------------------------------------------
    def on_add(self, thread: SimThread) -> None:
        """Hook: a thread was registered."""

    def on_remove(self, thread: SimThread) -> None:
        """Hook: a thread was removed."""

    def on_ready(self, thread: SimThread, now: int) -> None:
        """Hook: a thread became runnable."""

    def on_block(self, thread: SimThread, now: int) -> None:
        """Hook: a thread blocked or went to sleep."""

    def on_yield(self, thread: SimThread, now: int) -> None:
        """Hook: a thread voluntarily gave up the CPU."""

    def on_preempt(self, thread: SimThread, now: int) -> None:
        """Hook: a thread was preempted at the end of its slice."""

    def on_dispatch(self, thread: SimThread, now: int) -> None:
        """Hook: a thread was just selected to run."""

    def on_mutex_block(self, thread: SimThread, mutex: "Mutex", now: int) -> None:
        """Hook: ``thread`` blocked acquiring ``mutex`` (for inheritance)."""

    def on_mutex_release(self, thread: SimThread, mutex: "Mutex", now: int) -> None:
        """Hook: ``thread`` released ``mutex`` (for inheritance)."""

    def charge(self, thread: SimThread, consumed_us: int, now: int) -> None:
        """Hook: ``thread`` consumed ``consumed_us`` of CPU ending at ``now``."""

    def refresh(self, now: int) -> None:
        """Hook: bring time-dependent accounting up to ``now``.

        Called by the kernel after an idle period so reservations can be
        replenished before the next ``pick_next``.
        """

    def next_wakeup(self, now: int) -> Optional[int]:
        """Earliest future time at which a currently ineligible thread
        becomes eligible again (e.g. a throttled reservation
        replenishes), or ``None`` if there is no such time."""
        return None

    # ------------------------------------------------------------------
    # dispatch decisions
    # ------------------------------------------------------------------
    @abstractmethod
    def pick_next(self, now: int) -> Optional[SimThread]:
        """Select the next thread to run, or ``None`` to idle."""

    def time_slice(self, thread: SimThread, now: int) -> int:
        """Maximum time (us) ``thread`` may run before re-dispatch."""
        return self.dispatch_interval_us


__all__ = ["Scheduler"]
