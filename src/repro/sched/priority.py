"""Fixed-priority scheduler.

Models the "real-time priorities" offered by Linux, Solaris and NT that
the paper criticises in Sections 1 and 2: the highest-priority runnable
thread always runs, so lower-priority threads can be starved
indefinitely and priority inversion (the Mars Pathfinder failure mode)
is possible when a high-priority thread blocks on a mutex held by a
starved low-priority thread.

``priority_inheritance=True`` enables the classic Sha/Rajkumar/Lehoczky
priority-inheritance protocol [18] that the Pathfinder team used as a
fix, so the inversion experiment can demonstrate all three
configurations the paper discusses: broken fixed priorities, fixed
priorities patched with inheritance, and the paper's progress-based
approach that avoids the problem structurally.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.sched.base import Scheduler
from repro.sim.thread import SimThread

if TYPE_CHECKING:  # pragma: no cover
    from repro.ipc.mutex import Mutex


class FixedPriorityScheduler(Scheduler):
    """Strict fixed-priority preemptive scheduling.

    Higher ``SimThread.priority`` values win.  Threads of equal
    priority share the CPU round-robin, one dispatch interval at a
    time.
    """

    SCHED_KEY = "fixed_priority"

    #: The equal-priority round-robin cursor and the inheritance boost
    #: table both steer which thread a pick returns.
    PICK_RELEVANT_STATE = frozenset({"_cursor", "_base_priority"})

    EPOCH_EXEMPT = {
        "pick_next": (
            "the cohort cursor advances on every pick by design; "
            "batching is gated by preemption_horizon (singleton cohort "
            "only) and skipped advances are replayed in "
            "note_batched_picks"
        ),
        "note_batched_picks": (
            "replays exactly the cursor advances the skipped singleton-"
            "cohort picks would have made"
        ),
    }

    def __init__(self, *, priority_inheritance: bool = False) -> None:
        super().__init__()
        self.priority_inheritance = priority_inheritance
        self._cursor = 0
        #: Original priorities of threads currently boosted by inheritance.
        self._base_priority: dict[int, int] = {}

    # ------------------------------------------------------------------
    # priority inheritance hooks
    # ------------------------------------------------------------------
    def on_mutex_block(self, thread: SimThread, mutex: "Mutex", now: int) -> None:
        super().on_mutex_block(thread, mutex, now)
        if not self.priority_inheritance:
            return
        owner = mutex.owner
        if owner is None or owner.priority >= thread.priority:
            return
        if owner.tid not in self._base_priority:
            self._base_priority[owner.tid] = owner.priority
        owner.priority = thread.priority

    def on_mutex_release(self, thread: SimThread, mutex: "Mutex", now: int) -> None:
        super().on_mutex_release(thread, mutex, now)
        if not self.priority_inheritance:
            return
        base = self._base_priority.pop(thread.tid, None)
        if base is not None:
            thread.priority = base

    def on_mutex_unblock(self, thread: SimThread, mutex: "Mutex", now: int) -> None:
        """A waiter was forcibly removed: recompute the owner's boost.

        Without this, killing the high-priority waiter would leave the
        owner running at the dead thread's priority for the rest of its
        critical section.  The boost is recomputed from the waiters
        still queued (the same single-mutex fidelity as the block/
        release handlers above).
        """
        super().on_mutex_unblock(thread, mutex, now)
        if not self.priority_inheritance:
            return
        owner = mutex.owner
        if owner is None:
            return
        base = self._base_priority.get(owner.tid)
        if base is None:
            return
        boosted = max((w.priority for w in mutex.waiters), default=base)
        if boosted <= base:
            self._base_priority.pop(owner.tid, None)
            owner.priority = base
        else:
            owner.priority = boosted

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def pick_next(self, now: int, cpu: Optional[int] = None) -> Optional[SimThread]:
        runnable = self.dispatch_candidates(cpu)
        if not runnable:
            return None
        # Single pass: track the top priority and its cohort together
        # (the cohort keeps candidate order, so round-robin among
        # equal-priority threads is unchanged).
        top = runnable[0].priority
        cohort = [runnable[0]]
        for thread in runnable[1:]:
            priority = thread.priority
            if priority > top:
                top = priority
                cohort = [thread]
            elif priority == top:
                cohort.append(thread)
        self._cursor += 1
        return cohort[self._cursor % len(cohort)]

    def preemption_horizon(
        self, now: int, thread: SimThread, cpu: Optional[int] = None
    ) -> Optional[int]:
        """Batchable only when ``thread`` is the sole top-priority thread.

        A singleton cohort makes the pick forced: equal-priority
        round-robin cannot rotate, and any event that could create a
        competitor (a wake-up, a priority-inheritance boost) bumps the
        state epoch and ends the batch.  Per-CPU picks are never
        batched.
        """
        if cpu is not None:
            return now
        runnable = self.dispatch_candidates(cpu)
        if not runnable:
            return now
        top = max(t.priority for t in runnable)
        cohort = [t for t in runnable if t.priority == top]
        if len(cohort) == 1 and cohort[0] is thread:
            return None
        return now

    def note_batched_picks(self, thread: SimThread, skipped: int, now: int) -> None:
        # The cursor advances once per pick regardless of cohort size;
        # the skipped picks all had the singleton cohort.
        self._cursor += skipped


__all__ = ["FixedPriorityScheduler"]
