"""Stock Linux 2.0 goodness scheduler.

The paper builds its reservation dispatcher on top of Linux 2.0.35's
scheduler, which keeps one run queue and picks the runnable thread with
the highest *goodness*.  For ordinary time-sharing threads goodness is
essentially the thread's remaining ``counter`` (its unused quantum)
plus a nice-derived bias; when every runnable thread has exhausted its
counter, all counters are recharged from the nice value (decayed
history carries over for sleepers, which is what gives interactive
threads a boost).

This module reproduces that behaviour faithfully enough to serve as the
"what you get today" baseline in the starvation and responsiveness
comparisons.  It is *not* used underneath the adaptive controller — the
controller actuates the :class:`repro.sched.rbs.ReservationScheduler` —
but experiments run the same workloads under both to contrast them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sched.base import Scheduler
from repro.sim.thread import SimThread

#: Base quantum granted to a nice-0 thread at each recharge (Linux 2.0's
#: default time slice was around 200 ms; we keep the same order).
BASE_QUANTUM_US = 200_000

#: How much of an unexpired counter survives a recharge (Linux 2.0 adds
#: ``counter / 2`` to the new quantum, rewarding threads that sleep).
CARRYOVER_DIVISOR = 2


@dataclass
class _GoodnessState:
    """Per-thread counter state."""

    counter_us: int
    quantum_us: int


class LinuxGoodnessScheduler(Scheduler):
    """Multi-level-feedback style scheduler with nice values."""

    SCHED_KEY = "goodness"

    #: The recharge counter is the policy's only pick-relevant *own*
    #: attribute; the per-thread counters live in ``sched_data`` (an
    #: attribute of the threads, outside attribute-level analysis) and
    #: are covered dynamically by the preemption-horizon contract:
    #: ``preemption_horizon`` bounds batches by the remaining counter,
    #: so every counter-changing pick is a real pick.
    PICK_RELEVANT_STATE = frozenset({"recharges"})

    EPOCH_EXEMPT = {
        "_recharge_all": (
            "runs only inside a real pick (the recharge is a pick-time "
            "side effect); preemption_horizon returns now once the sole "
            "candidate's counter reaches zero, so no batch spans a "
            "recharge"
        ),
    }

    def __init__(self, base_quantum_us: int = BASE_QUANTUM_US) -> None:
        super().__init__()
        if base_quantum_us <= 0:
            raise ValueError(
                f"base quantum must be positive, got {base_quantum_us}"
            )
        self.base_quantum_us = base_quantum_us
        self.recharges = 0

    # ------------------------------------------------------------------
    # per-thread state
    # ------------------------------------------------------------------
    def _state(self, thread: SimThread) -> _GoodnessState:
        state = thread.sched_data.get(self.SCHED_KEY)
        if state is None:
            quantum = self._quantum_for(thread)
            state = _GoodnessState(counter_us=quantum, quantum_us=quantum)
            thread.sched_data[self.SCHED_KEY] = state
        return state

    def _quantum_for(self, thread: SimThread) -> int:
        # nice ranges -20 (greedy) .. +19 (generous); scale the base
        # quantum linearly, clamped to at least one dispatch interval.
        nice = max(-20, min(19, thread.nice))
        scale = (20 - nice) / 20.0
        return max(self.dispatch_interval_us, int(self.base_quantum_us * scale))

    def goodness(self, thread: SimThread) -> int:
        """The goodness value used to order runnable threads."""
        state = self._state(thread)
        if state.counter_us <= 0:
            return 0
        return state.counter_us + (20 - thread.nice) * 10

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------
    def on_add(self, thread: SimThread) -> None:
        self._state(thread)

    def charge(self, thread: SimThread, consumed_us: int, now: int) -> None:
        state = self._state(thread)
        state.counter_us = max(0, state.counter_us - consumed_us)

    def _recharge_all(self) -> None:
        self.recharges += 1
        for thread in self.threads():
            state = self._state(thread)
            quantum = self._quantum_for(thread)
            state.quantum_us = quantum
            state.counter_us = quantum + state.counter_us // CARRYOVER_DIVISOR

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _best_by_goodness(self, runnable: list[SimThread]) -> tuple[SimThread, int]:
        """One pass: the highest-goodness thread (lowest tid breaks ties)."""
        best = runnable[0]
        best_key = (self.goodness(best), -best.tid)
        for thread in runnable[1:]:
            key = (self.goodness(thread), -thread.tid)
            if key > best_key:
                best = thread
                best_key = key
        return best, best_key[0]

    def pick_next(self, now: int, cpu: Optional[int] = None) -> Optional[SimThread]:
        runnable = self.dispatch_candidates(cpu)
        if not runnable:
            return None
        best, best_goodness = self._best_by_goodness(runnable)
        if best_goodness <= 0:
            # Everybody on the run queue has used its quantum: recharge
            # all counters (including sleepers', which accrue carryover).
            self._recharge_all()
            best, _ = self._best_by_goodness(runnable)
        return best

    def preemption_horizon(
        self, now: int, thread: SimThread, cpu: Optional[int] = None
    ) -> Optional[int]:
        """Batchable while a sole candidate still has quantum left.

        With one runnable thread the pick is forced until its counter
        reaches zero, at which point the next pick performs the global
        recharge — an observable side effect (counters, carryover,
        ``recharges``) that must happen at the same virtual time as in
        the quantum-sliced engine.  Consumption can never outpace the
        wall clock, so ``now + counter_us`` is a safe bound: every pick
        strictly before it still sees a positive counter.  Multi-
        candidate picks compare decaying goodness values and are not
        batched; neither are per-CPU picks.
        """
        if cpu is not None:
            return now
        candidates = self.dispatch_candidates(cpu)
        if len(candidates) != 1 or candidates[0] is not thread:
            return now
        state = self._state(thread)
        if state.counter_us <= 0:
            return now
        if (20 - thread.nice) * 10 <= 0:
            # Extreme nice values can make goodness non-positive even
            # with counter left, which would trigger the recharge path.
            return now
        return now + state.counter_us

    def time_slice(self, thread: SimThread, now: int) -> int:
        state = self._state(thread)
        if state.counter_us <= 0:
            return self.dispatch_interval_us
        return min(self.dispatch_interval_us, max(1, state.counter_us))


__all__ = ["BASE_QUANTUM_US", "LinuxGoodnessScheduler"]
