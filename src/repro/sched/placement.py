"""Thread-to-CPU placement policies for multiprocessor scheduling.

On a multiprocessor the dispatcher answers *two* questions instead of
one: which CPU a runnable thread should run on (placement), and which of
the threads placed on a CPU runs next (the per-CPU pick, still made by
the :class:`~repro.sched.base.Scheduler` policy).  The paper's prototype
is single-CPU, so placement is an extension point: the kernel asks the
scheduler for a fresh assignment of runnable threads to CPUs at the
start of every dispatch round, and the scheduler delegates to one of the
policies here.

Two strategies are provided:

* :class:`LeastLoadedPlacement` (the default) — greedy weighted
  bin-packing: threads are assigned, heaviest first, to the CPU with
  the smallest accumulated weight.  The weight is supplied by the
  scheduler (the reservation scheduler uses the thread's reserved
  proportion, so reservations spread across CPUs and per-CPU reserved
  capacity stays balanced; other schedulers weigh every thread
  equally).
* :class:`PinnedPlacement` — fully static: a thread runs on its
  explicit affinity if set, otherwise on ``tid % n_cpus``.  Useful for
  experiments that need placement taken out of the picture.

Both honour an explicit :attr:`~repro.sim.thread.SimThread.affinity`
(a thread pinned with :meth:`~repro.sim.thread.SimThread.pin_to` is
never migrated) and both are deterministic: ties break towards the
lowest CPU index and threads are considered in a fixed order, so every
simulation remains exactly reproducible run to run.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.thread import SimThread

#: Signature of the weight function a scheduler supplies to placement.
ThreadWeight = Callable[["SimThread"], float]


class PlacementPolicy(ABC):
    """Strategy assigning runnable threads to CPUs for one dispatch round."""

    @abstractmethod
    def assign(
        self,
        threads: Iterable["SimThread"],
        n_cpus: int,
        weight: ThreadWeight,
        weights: "Optional[list[float]]" = None,
        online: "Optional[tuple[int, ...]]" = None,
    ) -> dict[int, int]:
        """Map each thread's tid to the CPU index it may run on.

        ``weight`` supplies the load contribution of a thread (used by
        load-balancing policies; static policies may ignore it).  When
        the caller already evaluated the weights, ``weights`` carries
        them index-aligned with ``threads`` so the policy does not make
        one Python call per thread per round.  The mapping must respect
        each thread's ``affinity`` when set.

        ``online`` restricts candidate CPUs to the given ascending
        index tuple (simulated hotplug: failed CPUs must receive no
        placements).  ``None`` — the overwhelmingly common case — means
        every CPU is online and keeps the unrestricted fast path.  A
        pinned thread whose affinity names an offline CPU falls back to
        an online one deterministically (the kernel drains such pins on
        failure, so this is a defensive clamp, not a steady state).
        """

    @staticmethod
    def _allowed_cpus(thread: "SimThread", n_cpus: int) -> range | tuple[int, ...]:
        if thread.affinity is not None:
            return (min(thread.affinity, n_cpus - 1),)
        return range(n_cpus)


class LeastLoadedPlacement(PlacementPolicy):
    """Greedy weighted balancing: heaviest threads first, lightest CPU wins."""

    def assign(
        self,
        threads: Iterable["SimThread"],
        n_cpus: int,
        weight: ThreadWeight,
        weights: "Optional[list[float]]" = None,
        online: "Optional[tuple[int, ...]]" = None,
    ) -> dict[int, int]:
        loads = [0.0] * n_cpus
        mapping: dict[int, int] = {}
        # Heaviest-first gives the classic LPT balance guarantee; the
        # tid tiebreak keeps the order (and therefore the whole
        # simulation) deterministic.  Weights are evaluated once per
        # thread and the argmin over CPU loads is unrolled by hand —
        # this runs for every dispatch round of an SMP kernel, so the
        # per-call lambda and ``min(key=...)`` overhead is measurable.
        if weights is None:
            decorated = [(-weight(t), t.tid, t) for t in threads]
        else:
            decorated = [
                (-w, t.tid, t) for w, t in zip(weights, threads)
            ]
        decorated.sort()
        if online is None:
            candidates: "range | tuple[int, ...]" = range(n_cpus)
        else:
            candidates = online
        first = candidates[0] if candidates else 0
        online_set = None if online is None else frozenset(online)
        for neg_weight, tid, thread in decorated:
            affinity = thread.affinity
            if affinity is not None:
                cpu = affinity if affinity < n_cpus else n_cpus - 1
                if online_set is not None and cpu not in online_set:
                    # Defensive clamp: a pin naming a failed CPU lands
                    # on the least-loaded online CPU instead.
                    cpu = first
                    best = loads[first]
                    for index in candidates:
                        load = loads[index]
                        if load < best:
                            best = load
                            cpu = index
            elif online is None:
                cpu = 0
                best = loads[0]
                for index in range(1, n_cpus):
                    load = loads[index]
                    if load < best:
                        best = load
                        cpu = index
            else:
                cpu = first
                best = loads[first]
                for index in candidates:
                    load = loads[index]
                    if load < best:
                        best = load
                        cpu = index
            mapping[tid] = cpu
            if neg_weight < 0.0:
                loads[cpu] -= neg_weight
        return mapping


class PinnedPlacement(PlacementPolicy):
    """Static placement: explicit affinity, else ``tid % n_cpus``."""

    def assign(
        self,
        threads: Iterable["SimThread"],
        n_cpus: int,
        weight: ThreadWeight,
        weights: "Optional[list[float]]" = None,
        online: "Optional[tuple[int, ...]]" = None,
    ) -> dict[int, int]:
        mapping: dict[int, int] = {}
        if online is None:
            for thread in threads:
                if thread.affinity is not None:
                    mapping[thread.tid] = min(thread.affinity, n_cpus - 1)
                else:
                    mapping[thread.tid] = thread.tid % n_cpus
            return mapping
        online_set = frozenset(online)
        for thread in threads:
            if thread.affinity is not None:
                cpu = min(thread.affinity, n_cpus - 1)
                if cpu not in online_set:
                    cpu = online[cpu % len(online)]
            else:
                cpu = online[thread.tid % len(online)]
            mapping[thread.tid] = cpu
        return mapping


__all__ = ["LeastLoadedPlacement", "PinnedPlacement", "PlacementPolicy", "ThreadWeight"]
