"""Thread-to-CPU placement policies for multiprocessor scheduling.

On a multiprocessor the dispatcher answers *two* questions instead of
one: which CPU a runnable thread should run on (placement), and which of
the threads placed on a CPU runs next (the per-CPU pick, still made by
the :class:`~repro.sched.base.Scheduler` policy).  The paper's prototype
is single-CPU, so placement is an extension point: the kernel asks the
scheduler for a fresh assignment of runnable threads to CPUs at the
start of every dispatch round, and the scheduler delegates to one of the
policies here.

Flat policies (no topology model):

* :class:`LeastLoadedPlacement` (the default) — greedy weighted
  bin-packing: threads are assigned, heaviest first, to the CPU with
  the smallest accumulated weight.  The weight is supplied by the
  scheduler (the reservation scheduler uses the thread's reserved
  proportion, so reservations spread across CPUs and per-CPU reserved
  capacity stays balanced; other schedulers weigh every thread
  equally).
* :class:`PinnedPlacement` — fully static: a thread runs on its
  explicit affinity if set, otherwise on ``tid % n_cpus``.  Useful for
  experiments that need placement taken out of the picture.

Topology-aware policies (take a
:class:`~repro.sim.topology.CpuTopology`, modelled on ceph-aprg's
``balance-cpu`` core allocator):

* :class:`CacheWarmPlacement` — prefer the CPU a thread last ran on,
  then an SMT sibling of it, then another core of the same socket,
  before considering a remote socket; within a distance tier the
  least-loaded CPU wins.  Minimises the migration penalties a topology
  kernel charges.
* :class:`NumaPackPlacement` — pack *reservation groups* (threads
  sharing a name prefix before the first ``.``, i.e. one workload
  stream's jobs) socket-local: each group goes to the least-loaded
  socket as a unit and balances across that socket's CPUs, so a
  pipeline's working set never straddles the interconnect.
* :class:`PipelineAffinityPlacement` — align channel-connected
  producer/consumer thread pairs onto SMT siblings of one physical
  core (the ceph-aprg trick: the two ends of a queue share L1/L2);
  threads outside any pair fall back to least-loaded balancing.

Contracts every policy here honours (and new policies must):

* **Affinity** — an explicit
  :attr:`~repro.sim.thread.SimThread.affinity` is always obeyed; a
  pinned thread is never migrated.
* **Validation over clamping** — an affinity outside ``[0, n_cpus)``
  raises :class:`~repro.sim.errors.SchedulerError`.  ``pin_to`` and
  ``add_thread`` already guarantee bound threads carry valid pins, so
  an out-of-range value reaching placement is a real bug that must not
  be silently remapped; likewise an empty ``online`` tuple (no CPU
  could receive a placement) raises instead of falling through to an
  arbitrary — offline — CPU 0.
* **Offline-pin fallback** — a pin naming an *offline* CPU falls back
  to the **lowest-numbered online CPU**, the same CPU
  :meth:`~repro.sim.kernel.Kernel.fail_cpu` drains pins to.  One rule
  for every policy: the kernel re-pins eagerly on failure, so
  placement seeing an offline pin is a transient defensive case, and
  agreeing with the drain target keeps the defensive path
  bit-identical to the eager one.
* **Determinism** — ties break towards the lowest CPU index and
  threads are considered in a fixed order, so every simulation remains
  exactly reproducible run to run.
* **Stability under self-application** — re-running ``assign`` after
  the placed threads ran on their assigned CPUs (with no scheduler
  epoch movement in between) must return the identical map.  The
  run-to-horizon engine caches the placement map while the epoch
  stands still but the quantum oracle recomputes it every round; a
  policy that reads round-mutated state (``thread.last_cpu``) stays
  engine-equivalent only if that recomputation is a fixed point.
  Strict distance-first preference (:class:`CacheWarmPlacement`) has
  this property: a thread that ran where it was placed prefers that
  CPU even harder next round.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.sim.errors import SchedulerError
from repro.sim.topology import CpuTopology

if TYPE_CHECKING:  # pragma: no cover
    from repro.ipc.registry import SymbioticRegistry
    from repro.sim.thread import SimThread

#: Signature of the weight function a scheduler supplies to placement.
ThreadWeight = Callable[["SimThread"], float]


class PlacementPolicy(ABC):
    """Strategy assigning runnable threads to CPUs for one dispatch round."""

    @abstractmethod
    def assign(
        self,
        threads: Iterable["SimThread"],
        n_cpus: int,
        weight: ThreadWeight,
        weights: "Optional[list[float]]" = None,
        online: "Optional[tuple[int, ...]]" = None,
    ) -> dict[int, int]:
        """Map each thread's tid to the CPU index it may run on.

        ``weight`` supplies the load contribution of a thread (used by
        load-balancing policies; static policies may ignore it).  When
        the caller already evaluated the weights, ``weights`` carries
        them index-aligned with ``threads`` so the policy does not make
        one Python call per thread per round.  The mapping must respect
        each thread's ``affinity`` when set.

        ``online`` restricts candidate CPUs to the given ascending
        index tuple (simulated hotplug: failed CPUs must receive no
        placements).  ``None`` — the overwhelmingly common case — means
        every CPU is online and keeps the unrestricted fast path.  An
        *empty* tuple raises :class:`SchedulerError`: no CPU could
        legally receive a placement, and silently mapping threads to
        (offline) CPU 0 would corrupt the round.  A pinned thread
        whose affinity names an offline CPU falls back to the
        lowest-numbered online CPU — the kernel's drain target — per
        the module-level contract.
        """

    @staticmethod
    def _candidates(
        n_cpus: int, online: "Optional[tuple[int, ...]]"
    ) -> "range | tuple[int, ...]":
        """The placeable CPU set, validated.

        Raises :class:`SchedulerError` on an empty ``online`` tuple —
        the empty-``online`` fallthrough that used to map every thread
        to offline CPU 0.
        """
        if online is None:
            return range(n_cpus)
        if not online:
            raise SchedulerError(
                "placement needs at least one online CPU; the kernel "
                "guarantees the last CPU cannot fail, so an empty "
                "online set is a caller bug"
            )
        return online

    @staticmethod
    def _checked_affinity(thread: "SimThread", n_cpus: int) -> int:
        """The thread's pin, validated against the CPU count.

        Out-of-range pins raise :class:`SchedulerError` instead of
        being clamped: ``pin_to``/``add_thread`` validate every bound
        thread, so a bad value here means corrupted state that a
        silent ``min(affinity, n_cpus - 1)`` would paper over.
        """
        affinity = thread.affinity
        assert affinity is not None
        if not 0 <= affinity < n_cpus:
            raise SchedulerError(
                f"thread {thread.name!r} is pinned to CPU {affinity} "
                f"but the kernel has only {n_cpus} CPU(s); placement "
                "refuses to remap an invalid pin"
            )
        return affinity


class LeastLoadedPlacement(PlacementPolicy):
    """Greedy weighted balancing: heaviest threads first, lightest CPU wins."""

    def assign(
        self,
        threads: Iterable["SimThread"],
        n_cpus: int,
        weight: ThreadWeight,
        weights: "Optional[list[float]]" = None,
        online: "Optional[tuple[int, ...]]" = None,
    ) -> dict[int, int]:
        loads = [0.0] * n_cpus
        mapping: dict[int, int] = {}
        # Heaviest-first gives the classic LPT balance guarantee; the
        # tid tiebreak keeps the order (and therefore the whole
        # simulation) deterministic.  Weights are evaluated once per
        # thread and the argmin over CPU loads is unrolled by hand —
        # this runs for every dispatch round of an SMP kernel, so the
        # per-call lambda and ``min(key=...)`` overhead is measurable.
        if weights is None:
            decorated = [(-weight(t), t.tid, t) for t in threads]
        else:
            decorated = [
                (-w, t.tid, t) for w, t in zip(weights, threads)
            ]
        decorated.sort()
        candidates = self._candidates(n_cpus, online)
        online_set = None if online is None else frozenset(online)
        for neg_weight, tid, thread in decorated:
            if thread.affinity is not None:
                cpu = self._checked_affinity(thread, n_cpus)
                if online_set is not None and cpu not in online_set:
                    # Offline-pin fallback: the lowest-numbered online
                    # CPU, matching the kernel's drain target.
                    cpu = candidates[0]
            elif online is None:
                cpu = 0
                best = loads[0]
                for index in range(1, n_cpus):
                    load = loads[index]
                    if load < best:
                        best = load
                        cpu = index
            else:
                cpu = candidates[0]
                best = loads[cpu]
                for index in candidates:
                    load = loads[index]
                    if load < best:
                        best = load
                        cpu = index
            mapping[tid] = cpu
            if neg_weight < 0.0:
                loads[cpu] -= neg_weight
        return mapping


class PinnedPlacement(PlacementPolicy):
    """Static placement: explicit affinity, else ``tid % n_cpus``."""

    def assign(
        self,
        threads: Iterable["SimThread"],
        n_cpus: int,
        weight: ThreadWeight,
        weights: "Optional[list[float]]" = None,
        online: "Optional[tuple[int, ...]]" = None,
    ) -> dict[int, int]:
        mapping: dict[int, int] = {}
        if online is None:
            for thread in threads:
                if thread.affinity is not None:
                    mapping[thread.tid] = self._checked_affinity(
                        thread, n_cpus
                    )
                else:
                    mapping[thread.tid] = thread.tid % n_cpus
            return mapping
        candidates = self._candidates(n_cpus, online)
        online_set = frozenset(candidates)
        for thread in threads:
            if thread.affinity is not None:
                cpu = self._checked_affinity(thread, n_cpus)
                if cpu not in online_set:
                    # Unified offline-pin fallback (was
                    # ``online[cpu % len(online)]``, which disagreed
                    # with every other policy and the kernel's drain).
                    cpu = candidates[0]
            else:
                # The static default restricted to online CPUs: still a
                # pure function of the tid, never of round state.
                cpu = candidates[thread.tid % len(candidates)]
            mapping[thread.tid] = cpu
        return mapping


class _TopologyPlacement(PlacementPolicy):
    """Shared plumbing of the topology-aware policies."""

    def __init__(self, topology: CpuTopology) -> None:
        self.topology = topology

    def _check_topology(self, n_cpus: int) -> CpuTopology:
        topology = self.topology
        if topology.n_cpus != n_cpus:
            raise SchedulerError(
                f"placement topology {topology.spec()} models "
                f"{topology.n_cpus} CPU(s) but the kernel has {n_cpus}"
            )
        return topology


class CacheWarmPlacement(_TopologyPlacement):
    """Prefer the last CPU, then an SMT sibling, then the same socket.

    Candidates are ranked by ``(distance tier, load, index)`` where the
    tier is the topological distance from the CPU the thread last ran
    on (:meth:`CpuTopology.distance_class`): 0 = same CPU, 1 = SMT
    sibling, 2 = same socket, 3 = anywhere.  A thread never dispatched
    yet (``last_cpu is None``) ranks every candidate tier-3, which
    degenerates to exactly :class:`LeastLoadedPlacement`'s choice.

    The *strict* tier preference is what makes the policy stable under
    self-application (module-level contract): a thread that ran where
    it was placed has that CPU at tier 0 next round, so recomputing
    the map under an unmoved epoch reproduces it — keeping the horizon
    engine's cached map and the quantum oracle's per-round
    recomputation bit-identical.
    """

    def assign(
        self,
        threads: Iterable["SimThread"],
        n_cpus: int,
        weight: ThreadWeight,
        weights: "Optional[list[float]]" = None,
        online: "Optional[tuple[int, ...]]" = None,
    ) -> dict[int, int]:
        topology = self._check_topology(n_cpus)
        candidates = self._candidates(n_cpus, online)
        online_set = None if online is None else frozenset(online)
        distance = topology.distance_class
        loads = [0.0] * n_cpus
        mapping: dict[int, int] = {}
        if weights is None:
            decorated = [(-weight(t), t.tid, t) for t in threads]
        else:
            decorated = [(-w, t.tid, t) for w, t in zip(weights, threads)]
        decorated.sort()
        for neg_weight, tid, thread in decorated:
            if thread.affinity is not None:
                cpu = self._checked_affinity(thread, n_cpus)
                if online_set is not None and cpu not in online_set:
                    cpu = candidates[0]
            else:
                last = thread.last_cpu
                cpu = candidates[0]
                if last is None:
                    best = loads[cpu]
                    for index in candidates:
                        load = loads[index]
                        if load < best:
                            best = load
                            cpu = index
                else:
                    best_key = (distance(last, cpu), loads[cpu], cpu)
                    for index in candidates:
                        key = (distance(last, index), loads[index], index)
                        if key < best_key:
                            best_key = key
                            cpu = index
            mapping[tid] = cpu
            if neg_weight < 0.0:
                loads[cpu] -= neg_weight
        return mapping


class NumaPackPlacement(_TopologyPlacement):
    """Pack reservation groups socket-local (ceph-aprg balance-cpu style).

    Threads are grouped by the name prefix before the first ``.`` —
    the workload engine names a stream's jobs ``stream.index``, so a
    group is one stream's live jobs (a lone thread forms its own
    group).  Groups are placed heaviest first: each goes, as a unit,
    to the socket with the least accumulated weight (lowest socket id
    on ties) among sockets that still have online CPUs, and its
    members balance least-loaded across that socket's online CPUs.
    Pinned threads stay where they are pinned and their weight counts
    toward their socket, so packing respects explicit affinity.
    """

    def assign(
        self,
        threads: Iterable["SimThread"],
        n_cpus: int,
        weight: ThreadWeight,
        weights: "Optional[list[float]]" = None,
        online: "Optional[tuple[int, ...]]" = None,
    ) -> dict[int, int]:
        topology = self._check_topology(n_cpus)
        candidates = self._candidates(n_cpus, online)
        online_set = None if online is None else frozenset(online)
        socket_of = topology.socket_of
        #: socket id -> its online CPUs (ascending; insertion order of
        #: the dict is ascending socket id because candidates ascend).
        socket_cpus: dict[int, list[int]] = {}
        for index in candidates:
            socket_cpus.setdefault(socket_of(index), []).append(index)
        loads = [0.0] * n_cpus
        socket_loads = {socket: 0.0 for socket in socket_cpus}
        mapping: dict[int, int] = {}
        if weights is None:
            decorated = [(-weight(t), t.tid, t) for t in threads]
        else:
            decorated = [(-w, t.tid, t) for w, t in zip(weights, threads)]
        decorated.sort()
        # Pinned threads first: their CPU is fixed, and charging their
        # weight up front lets group packing route around them.
        groups: dict[str, list[tuple[float, int, "SimThread"]]] = {}
        group_weight: dict[str, float] = {}
        for neg_weight, tid, thread in decorated:
            if thread.affinity is not None:
                cpu = self._checked_affinity(thread, n_cpus)
                if online_set is not None and cpu not in online_set:
                    cpu = candidates[0]
                mapping[tid] = cpu
                if neg_weight < 0.0:
                    loads[cpu] -= neg_weight
                    socket = socket_of(cpu)
                    if socket in socket_loads:
                        socket_loads[socket] -= neg_weight
                continue
            group = thread.name.split(".", 1)[0]
            groups.setdefault(group, []).append((neg_weight, tid, thread))
            group_weight[group] = group_weight.get(group, 0.0) - neg_weight
        # Heaviest group first; the name tiebreak keeps it deterministic.
        for group in sorted(groups, key=lambda g: (-group_weight[g], g)):
            socket = min(
                socket_loads, key=lambda s: (socket_loads[s], s)
            )
            local = socket_cpus[socket]
            for neg_weight, tid, _thread in groups[group]:
                cpu = local[0]
                best = loads[cpu]
                for index in local:
                    load = loads[index]
                    if load < best:
                        best = load
                        cpu = index
                mapping[tid] = cpu
                if neg_weight < 0.0:
                    loads[cpu] -= neg_weight
                    socket_loads[socket] -= neg_weight
        return mapping


class PipelineAffinityPlacement(_TopologyPlacement):
    """Co-locate producer/consumer pairs on SMT siblings of one core.

    ``pairs`` names channel-connected ``(producer, consumer)`` threads
    (by :attr:`SimThread.name`); :func:`pipeline_pairs` derives them
    from a :class:`~repro.ipc.registry.SymbioticRegistry` snapshot.
    Each pair is assigned, in declaration order, to the physical core
    with the least accumulated weight (lowest core id on ties) that
    has at least one online CPU: the producer takes the core's
    least-loaded online hardware thread and the consumer the next —
    the SMT sibling when the core has one, sharing the producer's CPU
    when it does not (still cache-warm for the channel).  Threads
    outside any pair — and pair members that are pinned or not
    currently runnable — fall back to least-loaded balancing.

    Pairs are a construction-time snapshot (names, not live registry
    state) so placement stays a pure function of epoch-covered inputs;
    re-derive and install a new policy instance if the pipeline shape
    changes mid-run.
    """

    def __init__(
        self,
        topology: CpuTopology,
        pairs: Iterable[tuple[str, str]] = (),
    ) -> None:
        super().__init__(topology)
        self.pairs: tuple[tuple[str, str], ...] = tuple(
            (str(producer), str(consumer)) for producer, consumer in pairs
        )

    @classmethod
    def from_registry(
        cls, topology: CpuTopology, registry: "SymbioticRegistry"
    ) -> "PipelineAffinityPlacement":
        """Snapshot the registry's channel endpoints into pairs."""
        return cls(topology, pipeline_pairs(registry))

    def assign(
        self,
        threads: Iterable["SimThread"],
        n_cpus: int,
        weight: ThreadWeight,
        weights: "Optional[list[float]]" = None,
        online: "Optional[tuple[int, ...]]" = None,
    ) -> dict[int, int]:
        topology = self._check_topology(n_cpus)
        candidates = self._candidates(n_cpus, online)
        online_set = frozenset(candidates)
        loads = [0.0] * n_cpus
        mapping: dict[int, int] = {}
        thread_list = list(threads)
        if weights is None:
            weight_of = {t.tid: weight(t) for t in thread_list}
        else:
            weight_of = {
                t.tid: w for w, t in zip(weights, thread_list)
            }
        by_name: dict[str, "SimThread"] = {}
        for thread in thread_list:
            # First registration wins on (pathological) duplicate names,
            # deterministically.
            by_name.setdefault(thread.name, thread)
        # Pinned threads first: fixed CPUs, weights charged up front.
        leftovers: list[tuple[float, int, "SimThread"]] = []
        paired: set[int] = set()
        for producer_name, consumer_name in self.pairs:
            for name in (producer_name, consumer_name):
                thread = by_name.get(name)
                if thread is not None and thread.affinity is None:
                    paired.add(thread.tid)
        for thread in thread_list:
            if thread.affinity is not None:
                cpu = self._checked_affinity(thread, n_cpus)
                if cpu not in online_set:
                    cpu = candidates[0]
                mapping[thread.tid] = cpu
                loads[cpu] += weight_of[thread.tid]
            elif thread.tid not in paired:
                leftovers.append(
                    (-weight_of[thread.tid], thread.tid, thread)
                )
        #: global core id -> its online CPUs.
        core_cpus: dict[int, list[int]] = {}
        for index in candidates:
            core_cpus.setdefault(topology.core_of(index), []).append(index)
        placed: set[int] = set()
        for producer_name, consumer_name in self.pairs:
            members = []
            for name in (producer_name, consumer_name):
                thread = by_name.get(name)
                if (
                    thread is not None
                    and thread.affinity is None
                    and thread.tid not in placed
                ):
                    members.append(thread)
            if not members:
                continue
            core = min(
                core_cpus,
                key=lambda c: (
                    sum(loads[index] for index in core_cpus[c]), c
                ),
            )
            local = core_cpus[core]
            for thread in members:
                cpu = local[0]
                best = loads[cpu]
                for index in local:
                    load = loads[index]
                    if load < best:
                        best = load
                        cpu = index
                mapping[thread.tid] = cpu
                loads[cpu] += weight_of[thread.tid]
                placed.add(thread.tid)
        # Everything else: plain heaviest-first least-loaded balancing.
        leftovers.sort()
        for neg_weight, tid, _thread in leftovers:
            cpu = candidates[0]
            best = loads[cpu]
            for index in candidates:
                load = loads[index]
                if load < best:
                    best = load
                    cpu = index
            mapping[tid] = cpu
            if neg_weight < 0.0:
                loads[cpu] -= neg_weight
        return mapping


def pipeline_pairs(
    registry: "SymbioticRegistry",
) -> tuple[tuple[str, str], ...]:
    """``(producer, consumer)`` name pairs for every registered channel.

    Channels are visited in registration order; on a channel with
    several producers/consumers the i-th producer pairs with the i-th
    consumer (both in registration order), so the result is
    deterministic for a deterministic setup sequence.
    """
    from repro.ipc.roles import Role

    pairs: list[tuple[str, str]] = []
    for channel in registry.channels():
        linkages = registry.linkages_on(channel)
        producers = [
            l.thread.name for l in linkages if l.role is Role.PRODUCER
        ]
        consumers = [
            l.thread.name for l in linkages if l.role is Role.CONSUMER
        ]
        pairs.extend(zip(producers, consumers))
    return tuple(pairs)


__all__ = [
    "CacheWarmPlacement",
    "LeastLoadedPlacement",
    "NumaPackPlacement",
    "PinnedPlacement",
    "PipelineAffinityPlacement",
    "PlacementPolicy",
    "ThreadWeight",
    "pipeline_pairs",
]
