"""Schedulers.

The paper's substrate is a reservation-based proportion/period
dispatcher layered on Linux's goodness mechanism
(:class:`~repro.sched.rbs.ReservationScheduler`).  This package also
provides the baselines the paper argues against or compares with, so
experiments can contrast behaviours (starvation, priority inversion,
fine-grained control):

* :class:`~repro.sched.goodness.LinuxGoodnessScheduler` — stock Linux
  2.0 multi-level-feedback style scheduling with ``nice`` values.
* :class:`~repro.sched.priority.FixedPriorityScheduler` — fixed
  (real-time) priorities, with optional priority inheritance.
* :class:`~repro.sched.lottery.LotteryScheduler` — Waldspurger & Weihl
  proportional-share lottery scheduling (related work, [21]).
* :class:`~repro.sched.round_robin.RoundRobinScheduler` — the simplest
  possible fair baseline.

On multiprocessor kernels every policy additionally consults a
:class:`~repro.sched.placement.PlacementPolicy` (least-loaded balancing
by default, static pinning as an alternative) that maps runnable
threads to CPUs before the per-CPU picks are made.
"""

from repro.sched.base import LazyMinHeap, RunQueue, Scheduler
from repro.sched.goodness import LinuxGoodnessScheduler
from repro.sched.lottery import LotteryScheduler
from repro.sched.placement import (
    CacheWarmPlacement,
    LeastLoadedPlacement,
    NumaPackPlacement,
    PinnedPlacement,
    PipelineAffinityPlacement,
    PlacementPolicy,
    pipeline_pairs,
)
from repro.sched.priority import FixedPriorityScheduler
from repro.sched.rbs import Reservation, ReservationScheduler
from repro.sched.round_robin import RoundRobinScheduler

__all__ = [
    "CacheWarmPlacement",
    "FixedPriorityScheduler",
    "LazyMinHeap",
    "LeastLoadedPlacement",
    "LinuxGoodnessScheduler",
    "LotteryScheduler",
    "NumaPackPlacement",
    "PinnedPlacement",
    "PipelineAffinityPlacement",
    "PlacementPolicy",
    "Reservation",
    "ReservationScheduler",
    "RoundRobinScheduler",
    "RunQueue",
    "Scheduler",
    "pipeline_pairs",
]
