"""The reservation-based proportion/period scheduler (RBS).

This is the substrate described in Section 3.1 of the paper: every
thread registered with the policy carries a *proportion* (parts per
thousand of the CPU) and a *period* (microseconds here, milliseconds in
the paper's interface).  Within each period the thread may consume
``proportion/1000 * period`` microseconds of CPU; once it has, it is
throttled until the next period begins.

Dispatch ordering follows the paper's goodness construction:

* reservation threads always beat best-effort threads ("our policy
  calculates goodness to ensure that threads it controls have higher
  goodness than jobs under other policies"), and
* among reservation threads, shorter periods win ("jobs with shorter
  periods have higher goodness values"), which is exactly
  rate-monotonic scheduling.

Enforcement happens only at dispatch time (the paper's prototype cannot
preempt mid-quantum), so a thread may overrun its allocation by up to
one dispatch interval.  That quantisation error is discussed in
Section 4.3; setting ``enforce_within_slice=True`` enables the
microsecond-accurate enforcement the authors propose there, and the
ablation benchmarks compare the two.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sched.base import Scheduler
from repro.sim.errors import SchedulerError
from repro.sim.thread import SchedulingPolicy, SimThread

#: Proportions are expressed in parts per thousand, as in the paper.
PROPORTION_SCALE = 1_000

#: Default period assigned by the controller when none is known (30 ms).
DEFAULT_PERIOD_US = 30_000


@dataclass
class Reservation:
    """Per-thread reservation state.

    Attributes
    ----------
    proportion_ppt:
        Parts-per-thousand of the CPU the thread may use each period.
    period_us:
        Length of the repeating allocation period.
    period_start:
        Start of the current period (absolute microseconds).
    used_in_period_us:
        CPU consumed since ``period_start``.
    deadline_misses:
        Number of periods in which the scheduler could not deliver the
        full allocation (the thread was runnable, wanted CPU, and did
        not receive its allocation before the period ended).
    periods_elapsed:
        Total periods that have passed since the reservation was made.
    """

    proportion_ppt: int
    period_us: int
    period_start: int = 0
    used_in_period_us: int = 0
    deadline_misses: int = 0
    periods_elapsed: int = 0
    total_allocated_us: int = 0
    wanted_more: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.proportion_ppt <= PROPORTION_SCALE:
            raise SchedulerError(
                f"proportion must be in [0, {PROPORTION_SCALE}] parts per "
                f"thousand, got {self.proportion_ppt}"
            )
        if self.period_us <= 0:
            raise SchedulerError(
                f"period must be positive, got {self.period_us}us"
            )

    @property
    def allocation_us(self) -> int:
        """CPU budget per period in microseconds."""
        return self.period_us * self.proportion_ppt // PROPORTION_SCALE

    @property
    def remaining_us(self) -> int:
        """CPU budget left in the current period."""
        return max(0, self.allocation_us - self.used_in_period_us)

    @property
    def exhausted(self) -> bool:
        """Whether the current period's budget has been used up."""
        return self.used_in_period_us >= self.allocation_us

    def period_end(self) -> int:
        """Absolute time at which the current period ends."""
        return self.period_start + self.period_us

    def advance_to(self, now: int) -> int:
        """Roll the period window forward so it contains ``now``.

        Returns the number of complete periods that elapsed.  On each
        period boundary the usage counter is reset; if the thread wanted
        more CPU than it received in a period where it was runnable, a
        deadline miss is recorded.
        """
        if now < self.period_start:
            return 0
        elapsed = (now - self.period_start) // self.period_us
        if elapsed <= 0:
            return 0
        if self.wanted_more:
            # The thread hit its budget and still wanted CPU this
            # period: its reservation was too small for its demand.
            self.deadline_misses += 1
        self.period_start += elapsed * self.period_us
        self.periods_elapsed += elapsed
        self.used_in_period_us = 0
        self.wanted_more = False
        return elapsed


class ReservationScheduler(Scheduler):
    """Proportion/period dispatcher with rate-monotonic ordering.

    Parameters
    ----------
    enforce_within_slice:
        When ``True``, a thread's slice is additionally capped by its
        remaining allocation, eliminating the one-dispatch-interval
        overrun of the paper's prototype (Section 4.3 improvement).
    best_effort_slice_us:
        Time slice handed to best-effort threads when no reservation
        thread is eligible.
    """

    SCHED_KEY = "rbs"

    def __init__(
        self,
        *,
        enforce_within_slice: bool = False,
        best_effort_slice_us: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.enforce_within_slice = enforce_within_slice
        self._best_effort_slice_us = best_effort_slice_us
        self._best_effort_cursor = 0

    # ------------------------------------------------------------------
    # reservation management (the controller's actuation interface)
    # ------------------------------------------------------------------
    def reservation(self, thread: SimThread) -> Optional[Reservation]:
        """The thread's reservation, or ``None`` if it has no reservation."""
        return thread.sched_data.get(self.SCHED_KEY)

    def set_reservation(
        self,
        thread: SimThread,
        proportion_ppt: int,
        period_us: int = DEFAULT_PERIOD_US,
        *,
        now: Optional[int] = None,
    ) -> Reservation:
        """Create or update ``thread``'s proportion/period reservation.

        Updating an existing reservation preserves the current period
        window and usage, matching the paper's "very low overhead to
        change proportion and period": actuation does not reset
        accounting, it simply changes the budget going forward.
        """
        if thread not in self._threads:
            raise SchedulerError(
                f"thread {thread.name!r} is not registered with this scheduler"
            )
        if now is None:
            now = self.kernel.now if self.kernel is not None else 0
        current = self.reservation(thread)
        if current is None:
            reservation = Reservation(
                proportion_ppt=int(proportion_ppt),
                period_us=int(period_us),
                period_start=now,
            )
            thread.sched_data[self.SCHED_KEY] = reservation
            thread.policy = SchedulingPolicy.RESERVATION
            return reservation
        # Validate the new values by constructing a throwaway instance.
        Reservation(proportion_ppt=int(proportion_ppt), period_us=int(period_us))
        current.proportion_ppt = int(proportion_ppt)
        if int(period_us) != current.period_us:
            current.period_us = int(period_us)
            current.period_start = now
            current.used_in_period_us = 0
        return current

    def clear_reservation(self, thread: SimThread) -> None:
        """Demote ``thread`` to best-effort scheduling."""
        thread.sched_data.pop(self.SCHED_KEY, None)
        thread.policy = SchedulingPolicy.BEST_EFFORT

    def total_reserved_ppt(self) -> int:
        """Sum of all live reservations' proportions (overload detector)."""
        total = 0
        for thread in self._threads:
            reservation = self.reservation(thread)
            if reservation is not None:
                total += reservation.proportion_ppt
        return total

    def capacity_ppt(self) -> int:
        """Total schedulable capacity: one ``PROPORTION_SCALE`` per CPU."""
        return self.n_cpus * PROPORTION_SCALE

    def deadline_misses(self) -> int:
        """Total deadline misses across all reservation threads."""
        total = 0
        for thread in self._threads:
            reservation = self.reservation(thread)
            if reservation is not None:
                total += reservation.deadline_misses
        return total

    # ------------------------------------------------------------------
    # policy hooks
    # ------------------------------------------------------------------
    def on_add(self, thread: SimThread) -> None:
        if thread.policy is SchedulingPolicy.RESERVATION:
            # A thread that registers with the RBS but has not yet been
            # assigned a proportion starts with a zero reservation at the
            # default period; the controller raises it on its next pass.
            if self.reservation(thread) is None:
                now = self.kernel.now if self.kernel is not None else 0
                thread.sched_data[self.SCHED_KEY] = Reservation(
                    proportion_ppt=0,
                    period_us=DEFAULT_PERIOD_US,
                    period_start=now,
                )

    def refresh(self, now: int) -> None:
        for thread in self._threads:
            reservation = self.reservation(thread)
            if reservation is not None:
                reservation.advance_to(now)

    def charge(self, thread: SimThread, consumed_us: int, now: int) -> None:
        reservation = self.reservation(thread)
        if reservation is None:
            return
        reservation.used_in_period_us += consumed_us
        reservation.total_allocated_us += consumed_us
        reservation.advance_to(now)

    # ------------------------------------------------------------------
    # placement (multiprocessor)
    # ------------------------------------------------------------------
    def placement_weight(self, thread: SimThread) -> float:
        """Balance CPUs by reserved proportion, not by thread count."""
        reservation = self.reservation(thread)
        if reservation is None or reservation.proportion_ppt <= 0:
            # Best-effort and zero-proportion threads weigh a token
            # amount so they still spread over otherwise equal CPUs.
            return 1.0
        return float(reservation.proportion_ppt)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _eligible_reservation_threads(
        self, now: int, cpu: Optional[int] = None
    ) -> list[SimThread]:
        eligible = []
        for thread in self.dispatch_candidates(cpu):
            reservation = self.reservation(thread)
            if reservation is None:
                continue
            reservation.advance_to(now)
            if reservation.exhausted:
                reservation.wanted_more = True
                continue
            eligible.append(thread)
        return eligible

    def _runnable_best_effort(self, cpu: Optional[int] = None) -> list[SimThread]:
        return [
            t for t in self.dispatch_candidates(cpu) if self.reservation(t) is None
        ]

    def pick_next(self, now: int, cpu: Optional[int] = None) -> Optional[SimThread]:
        eligible = self._eligible_reservation_threads(now, cpu)
        if eligible:
            # Rate-monotonic: shortest period first; proportion breaks
            # ties in favour of larger allocations, tid keeps it stable.
            eligible.sort(
                key=lambda t: (
                    self.reservation(t).period_us,
                    -self.reservation(t).proportion_ppt,
                    t.tid,
                )
            )
            return eligible[0]
        best_effort = self._runnable_best_effort(cpu)
        if not best_effort:
            return None
        # Round-robin over best-effort threads for basic fairness.
        self._best_effort_cursor += 1
        return best_effort[self._best_effort_cursor % len(best_effort)]

    def time_slice(self, thread: SimThread, now: int) -> int:
        reservation = self.reservation(thread)
        if reservation is None:
            if self._best_effort_slice_us is not None:
                return self._best_effort_slice_us
            return self.dispatch_interval_us
        slice_us = self.dispatch_interval_us
        if self.enforce_within_slice:
            slice_us = min(slice_us, max(1, reservation.remaining_us))
        return slice_us

    def next_wakeup(self, now: int) -> Optional[int]:
        earliest: Optional[int] = None
        for thread in self._threads:
            if not thread.state.is_runnable:
                continue
            reservation = self.reservation(thread)
            if reservation is None or not reservation.exhausted:
                continue
            end = reservation.period_end()
            if earliest is None or end < earliest:
                earliest = end
        return earliest


__all__ = [
    "DEFAULT_PERIOD_US",
    "PROPORTION_SCALE",
    "Reservation",
    "ReservationScheduler",
]
